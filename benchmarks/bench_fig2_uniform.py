"""Benchmark harness regenerating Fig. 2 (bandwidth and energy bars)."""

from repro.experiments import fig2_uniform


def test_fig2_uniform_random(run_once, bench_fidelity, bench_runner, bench_pattern):
    """Regenerate the Fig. 2 rows and check the headline ordering."""
    result = run_once(
        fig2_uniform.run, bench_fidelity, runner=bench_runner, pattern=bench_pattern
    )
    print()
    print(fig2_uniform.format_report(result))
    # Shape check: the wireless system must deliver the lowest average
    # packet energy of the three architectures (the paper's headline claim).
    assert result.wireless_wins_energy()
    # And it must not lose to the substrate baseline on bandwidth.
    from repro.core.config import Architecture

    wireless = result.metrics[Architecture.WIRELESS]
    substrate = result.metrics[Architecture.SUBSTRATE]
    assert wireless.bandwidth_gbps_per_core >= substrate.bandwidth_gbps_per_core
