"""Benchmark harness regenerating Fig. 3 (latency vs injection load)."""

from repro.experiments import fig3_latency


def test_fig3_latency_vs_load(run_once, bench_fidelity, bench_runner, bench_pattern):
    """Regenerate the Fig. 3 latency curves and check their shape."""
    result = run_once(
        fig3_latency.run, bench_fidelity, runner=bench_runner, pattern=bench_pattern
    )
    print()
    print(fig3_latency.format_report(result))
    from repro.core.config import Architecture

    # Every point of every curve is a real latency measurement.
    for architecture, sweep in result.sweeps.items():
        for _, latency in sweep.latency_curve():
            assert latency > 0, architecture
    # The architectures that do not saturate at the lowest loads (wireless
    # and interposer) must show latency rising with offered load; the
    # substrate baseline saturates almost immediately, so its curve is
    # dominated by the packets that still complete and is not monotone.
    for architecture in (Architecture.WIRELESS, Architecture.INTERPOSER):
        curve = result.sweeps[architecture].latency_curve()
        assert curve[-1][1] >= curve[0][1] * 0.8, architecture
