"""Benchmark harness regenerating Fig. 4 (gains vs chip-to-chip traffic)."""

from repro.experiments import fig4_disintegration


def test_fig4_disintegration_gains(run_once, bench_fidelity, bench_runner, bench_pattern):
    """Regenerate the Fig. 4 gain bars and check the headline claims."""
    result = run_once(
        fig4_disintegration.run,
        bench_fidelity,
        runner=bench_runner,
        pattern=bench_pattern,
    )
    print()
    print(fig4_disintegration.format_report(result))
    # The wireless system must save packet energy at every disintegration
    # level (the paper reports 37%-65% savings).
    assert result.energy_gains_all_positive()
