"""Benchmark harness regenerating Fig. 5 (gains vs memory-access proportion)."""

from repro.experiments import fig5_memory_traffic


def test_fig5_memory_traffic_gains(run_once, bench_fidelity, bench_runner):
    """Regenerate the Fig. 5 gain bars and check the headline claims."""
    result = run_once(fig5_memory_traffic.run, bench_fidelity, runner=bench_runner)
    print()
    print(fig5_memory_traffic.format_report(result))
    # Energy savings must persist over the whole memory-access sweep.
    assert result.energy_gains_all_positive()
