"""Benchmark harness regenerating Fig. 6 (application-specific traffic gains)."""

from repro.experiments import fig6_applications


def test_fig6_application_gains(run_once, bench_fidelity, bench_runner):
    """Regenerate the Fig. 6 gain bars and check the headline claim."""
    result = run_once(fig6_applications.run, bench_fidelity, runner=bench_runner)
    print()
    print(fig6_applications.format_report(result))
    # The wireless system must reduce the average packet energy for every
    # application (the paper reports a 45% average reduction).
    assert all(g.energy_gain_pct > 0 for g in result.gains.values())
    assert result.average_energy_gain_pct() > 10.0
