"""Kernel micro-benchmark: active-set versus dense scheduling.

Runs two uniform load points per architecture (the single-chip mesh
baseline plus the paper's three multichip systems) under both kernel
schedulers, verifies they agree bit for bit, and writes a perf snapshot to
``BENCH_kernel.json`` so the kernel's wall-clock trajectory is tracked
across changes.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py [--cycles N] [--load L]
                                                     [--saturation-load L]
                                                     [--output PATH]

The default mid load (0.0002 packets/core/cycle) is about 10 % of the mesh
baseline's saturation load (~0.002 from the fig2/fig3 sweeps) — squarely in
the low/mid-load region that dominates every figure sweep, where the
active-set scheduler's wake sets pay off most.  The near-saturation point
(default 0.0018, 90 % of mesh saturation) keeps the congested regime
honest: there almost every switch is awake every cycle, so it measures the
raw per-flit cost of the array-backed data plane rather than the wake-set
bookkeeping, and a regression that only hurts busy switches cannot hide
behind the quiet mid-load numbers.

A third, wireless-heavy point saturates the token MAC: the 4C4M wireless
system (the interposer comparison configuration of Figs. 2/3) at the
near-saturation load under ``mac="token"``, where whole-packet buffering
and token rotation keep the MAC arbitration and the per-WI pending scans
hot every cycle.  It pins the cost of the handle-based wireless data plane
the way the mid/saturation points pin the wired one.

A fourth point covers the multi-channel fabric loop: the same 4C4M
wireless system under the control-packet MAC with eight channels (the top
of fig8's sweep), where every cycle walks all eight per-channel grant
states and the per-channel energy attribution.  The token point keeps a
single channel busy; this one gates the per-channel bookkeeping that only
multi-channel sweeps exercise.

Finally, the wired points are re-run under ``--engine vector`` (the NumPy
SoA fast path) against the scalar active-set engine, at both the mid-load
and the near-saturation point.  Results are asserted bit-identical; the
recorded ``vector_speedup`` is the honest vector/scalar wall-clock
quotient.  At these event rates (tens of allocation candidates per cycle)
the NumPy batches are too small to amortise kernel-launch overhead, so
the quotient currently sits *below* 1x — the snapshot records that
truthfully and the trend gate holds the ratio, it does not pretend a
speedup that is not there.

Two lane-batching sections quantify the multi-lane co-simulation path
(``repro.noc.lanes``): ``results_vector_batched`` fuses an 8-lane
multi-seed sweep of every wired architecture into one vector cycle loop
at the mid-load point, against the same sweep run solo-scalar and
solo-vector; ``results_large_mesh`` does the same on a 1024-core
single-chip mesh (the topology-size axis of the ROADMAP's batching
claim) with 4 lanes and a shorter horizon.  Every lane is asserted
bit-identical to its solo scalar run.  The honest reading of the
recorded quotients: lane batching beats the *solo vector* sweep by a
healthy margin (the per-cycle dispatch overhead really does amortise
across lanes); whether it also beats the scalar engine is exactly what
the snapshot records.  The trend gate holds both quotients.

A final section (``results_tail_cost``) measures the per-event
allocation tail directly: profiled runs split the allocation phase into
array dispatch vs per-event work, and dividing the per-event seconds by
the total event count (flit hops + ejected flits) yields µs/hop figures
for the scalar loop, the solo vector engine, and the lane-batched path.
This is the quantity the PR-10 array epilogue attacks (it was ~6.5
µs/hop batched vs ~2.6 µs/hop scalar before it); the trend gate holds
the scalar/batched tail ratio and the batched per-event throughput.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from typing import Dict, Optional

from repro.core.config import Architecture, SystemConfig, paper_4c4m
from repro.core.framework import MultichipSimulation
from repro.metrics.report import format_simulator_throughput, format_table
from repro.noc.engine import SimulationConfig
from repro.noc.lanes import run_batched
from repro.parallel.runner import SimulationTask, task_simulator
from repro.traffic.rng import lane_seeds

#: Offered load of the mid-load benchmark point [packets/core/cycle]; ~10 %
#: of the mesh baseline's saturation load (acceptance criterion: <= 30 %).
DEFAULT_LOAD = 0.0002

#: Approximate saturation load of the mesh baseline under uniform traffic
#: with the default 64-flit packets (from the fig2/fig3 load sweeps).
MESH_SATURATION_LOAD = 0.002

#: Offered load of the near-saturation benchmark point (90 % of the mesh
#: baseline's saturation load): the congested regime where wake sets stop
#: helping and the per-flit data-plane cost dominates.
DEFAULT_SATURATION_LOAD = 0.0018

DEFAULT_CYCLES = 2000

DEFAULT_OUTPUT = "BENCH_kernel.json"


def benchmark_configs() -> Dict[str, SystemConfig]:
    """One mid-load uniform point per architecture."""
    return {
        "mesh": SystemConfig(
            architecture=Architecture.SUBSTRATE, num_chips=1, cores_per_chip=64
        ),
        "substrate": paper_4c4m(Architecture.SUBSTRATE),
        "interposer": paper_4c4m(Architecture.INTERPOSER),
        "wireless": paper_4c4m(Architecture.WIRELESS),
    }


def wireless_token_configs() -> Dict[str, SystemConfig]:
    """The wireless-heavy point: token-MAC arbitration at saturation."""
    return {
        "wireless-token": paper_4c4m(Architecture.WIRELESS).with_wireless(mac="token"),
    }


def wireless_control8_configs() -> Dict[str, SystemConfig]:
    """The multi-channel point: control-packet MAC over eight channels."""
    return {
        "wireless-control8": paper_4c4m(Architecture.WIRELESS).with_wireless(
            mac="control_packet", num_channels=8
        ),
    }


def large_mesh_config() -> Dict[str, SystemConfig]:
    """The 1000-core-class point: a 1024-core single-chip mesh.

    The topology-size axis of the lane-batching claim — per-cycle numpy
    dispatch is amortised over 1024 rows per lane, so this is where the
    fused allocator's fixed costs matter least and the per-flit-hop event
    costs matter most.
    """
    return {
        "mesh-1024": SystemConfig(
            architecture=Architecture.SUBSTRATE, num_chips=1, cores_per_chip=1024
        ),
    }


def wired_configs() -> Dict[str, SystemConfig]:
    """The configurations the vector engine actually accelerates.

    Wireless systems transparently fall back to the scalar phases, so
    timing them under ``engine="vector"`` would just measure the scalar
    engine twice.
    """
    return {
        name: config
        for name, config in benchmark_configs().items()
        if name != "wireless"
    }


def run_once(
    config: SystemConfig,
    load: float,
    cycles: int,
    scheduler: str,
    engine: str = "scalar",
):
    """One timed simulation run under the given scheduler and engine.

    Built through :class:`MultichipSimulation` and the traffic registry —
    the same construction path the experiment CLI uses — so the benchmark
    exercises exactly what the figures run, not a parallel bespoke wiring.
    """
    simulation = MultichipSimulation.from_config(
        config,
        SimulationConfig(
            cycles=cycles,
            warmup_cycles=cycles // 10,
            scheduler=scheduler,
            engine=engine,
        ),
    )
    started = time.perf_counter()
    result = simulation.run_pattern(
        "uniform", injection_rate=load, memory_access_fraction=0.2, seed=7
    )
    elapsed = time.perf_counter() - started
    return result, elapsed


def fingerprint(result) -> tuple:
    """The counters that must agree between the two schedulers."""
    return (
        result.packets_delivered,
        result.flits_injected,
        result.flits_ejected_measured,
        result.flit_hops,
        result.wireless_flit_hops,
        tuple(result.latencies_cycles),
        result.energy.total_pj,
    )


def bench_load_point(
    load: float,
    cycles: int,
    repeats: int,
    configs: Optional[Dict[str, SystemConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Benchmark one offered load across a set of configurations.

    ``repeats`` runs each (configuration, scheduler) point several times and
    keeps the fastest wall-clock — best-of-N is the standard defence
    against scheduler noise on shared machines, and it is what the CI
    bench-trend gate uses so a single GC pause cannot fail the build.
    Results are bit-identical across repeats (asserted), so only timing is
    affected.
    """
    entries: Dict[str, Dict[str, float]] = {}
    if configs is None:
        configs = benchmark_configs()
    for name, config in configs.items():
        dense_result, dense_s = run_once(config, load, cycles, "dense")
        active_result, active_s = run_once(config, load, cycles, "active")
        for _ in range(repeats - 1):
            again, seconds = run_once(config, load, cycles, "dense")
            if fingerprint(again) != fingerprint(dense_result):
                raise AssertionError(f"dense runs diverged for {name!r}")
            dense_s = min(dense_s, seconds)
            again, seconds = run_once(config, load, cycles, "active")
            if fingerprint(again) != fingerprint(active_result):
                raise AssertionError(f"active runs diverged for {name!r}")
            active_s = min(active_s, seconds)
        if fingerprint(dense_result) != fingerprint(active_result):
            raise AssertionError(
                f"scheduler parity violated for {name!r}: the active-set "
                "kernel diverged from the dense reference"
            )
        entries[name] = {
            "dense_seconds": round(dense_s, 4),
            "active_seconds": round(active_s, 4),
            "speedup": round(dense_s / active_s, 3),
            "active_cycles_per_second": round(cycles / active_s, 1),
            "active_flits_per_second": round(
                active_result.flit_hops / active_s, 1
            ),
            "packets_delivered": active_result.packets_delivered,
        }
    return entries


def bench_vector_point(
    load: float,
    cycles: int,
    repeats: int,
    configs: Optional[Dict[str, SystemConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Benchmark the vector engine against the scalar active-set engine.

    Same best-of-N discipline as :func:`bench_load_point`.  Engine parity
    is a hard assertion — the two engines must agree bit for bit — while
    the recorded ``vector_speedup`` (scalar/vector wall-clock quotient) is
    an honest measurement, wherever it lands.
    """
    entries: Dict[str, Dict[str, float]] = {}
    if configs is None:
        configs = wired_configs()
    for name, config in configs.items():
        scalar_result, scalar_s = run_once(config, load, cycles, "active")
        vector_result, vector_s = run_once(
            config, load, cycles, "active", engine="vector"
        )
        for _ in range(repeats - 1):
            again, seconds = run_once(config, load, cycles, "active")
            if fingerprint(again) != fingerprint(scalar_result):
                raise AssertionError(f"scalar runs diverged for {name!r}")
            scalar_s = min(scalar_s, seconds)
            again, seconds = run_once(
                config, load, cycles, "active", engine="vector"
            )
            if fingerprint(again) != fingerprint(vector_result):
                raise AssertionError(f"vector runs diverged for {name!r}")
            vector_s = min(vector_s, seconds)
        if fingerprint(scalar_result) != fingerprint(vector_result):
            raise AssertionError(
                f"engine parity violated for {name!r}: the vector engine "
                "diverged from the scalar reference"
            )
        entries[name] = {
            "scalar_seconds": round(scalar_s, 4),
            "vector_seconds": round(vector_s, 4),
            "vector_speedup": round(scalar_s / vector_s, 3),
            "vector_cycles_per_second": round(cycles / vector_s, 1),
            "packets_delivered": vector_result.packets_delivered,
        }
    return entries


def bench_batched_point(
    load: float,
    cycles: int,
    repeats: int,
    lanes: int = 8,
    configs: Optional[Dict[str, SystemConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Benchmark lane-batched co-simulation against solo sweeps.

    Per configuration: an N-lane multi-seed sweep (``lane_seeds`` of the
    bench seed, the same derivation ``--batch-lanes`` uses) is run three
    ways — every task solo through the scalar engine, solo through the
    vector engine, and fused into one lane-batched vector run.  Lane
    parity is a hard assertion (every batched lane must match its solo
    scalar twin bit for bit, and so must the solo vector runs); both
    wall-clock quotients are honest measurements, wherever they land.
    The throughput figure of merit is cross-task: ``lanes * cycles``
    task-cycles divided by the batched wall-clock.
    """
    entries: Dict[str, Dict[str, float]] = {}
    if configs is None:
        configs = wired_configs()
    for name, config in configs.items():
        tasks = [
            SimulationTask(
                kind="synthetic",
                config=config,
                cycles=cycles,
                warmup_cycles=cycles // 10,
                seed=seed,
                load=load,
            )
            for seed in lane_seeds(7, lanes)
        ]

        def solo_sweep(engine: str):
            results, seconds = [], 0.0
            for task in tasks:
                simulator = task_simulator(task, engine=engine)
                started = time.perf_counter()
                results.append(simulator.run())
                seconds += time.perf_counter() - started
            return results, seconds

        def batched_sweep():
            simulators = [task_simulator(task, engine="vector") for task in tasks]
            started = time.perf_counter()
            results = run_batched(simulators)
            return results, time.perf_counter() - started

        def sweep_prints(results):
            return [fingerprint(result) for result in results]

        scalar_results, scalar_s = solo_sweep("scalar")
        vector_results, vector_s = solo_sweep("vector")
        batched_results, batched_s = batched_sweep()
        for _ in range(repeats - 1):
            again, seconds = solo_sweep("scalar")
            if sweep_prints(again) != sweep_prints(scalar_results):
                raise AssertionError(f"scalar sweeps diverged for {name!r}")
            scalar_s = min(scalar_s, seconds)
            again, seconds = solo_sweep("vector")
            if sweep_prints(again) != sweep_prints(vector_results):
                raise AssertionError(f"vector sweeps diverged for {name!r}")
            vector_s = min(vector_s, seconds)
            again, seconds = batched_sweep()
            if sweep_prints(again) != sweep_prints(batched_results):
                raise AssertionError(f"batched sweeps diverged for {name!r}")
            batched_s = min(batched_s, seconds)
        for index, (solo, vec, fused) in enumerate(
            zip(scalar_results, vector_results, batched_results)
        ):
            if fingerprint(vec) != fingerprint(solo):
                raise AssertionError(
                    f"engine parity violated for {name!r} lane {index}: the "
                    "solo vector run diverged from the scalar reference"
                )
            if fingerprint(fused) != fingerprint(solo):
                raise AssertionError(
                    f"lane parity violated for {name!r} lane {index}: the "
                    "batched run diverged from its solo scalar twin"
                )
        entries[name] = {
            "lanes": lanes,
            "scalar_seconds": round(scalar_s, 4),
            "vector_seconds": round(vector_s, 4),
            "batched_seconds": round(batched_s, 4),
            "batched_speedup": round(scalar_s / batched_s, 3),
            "batched_speedup_vs_vector": round(vector_s / batched_s, 3),
            "batched_task_cycles_per_second": round(lanes * cycles / batched_s, 1),
            "packets_delivered": sum(
                result.packets_delivered for result in batched_results
            ),
        }
    return entries


def _profiled_run(config: SystemConfig, load: float, cycles: int, engine: str):
    """One run with phase profiling on (for the tail-cost section)."""
    simulation = MultichipSimulation.from_config(
        config,
        SimulationConfig(
            cycles=cycles,
            warmup_cycles=cycles // 10,
            scheduler="active",
            engine=engine,
            profile_phases=True,
        ),
    )
    return simulation.run_pattern(
        "uniform", injection_rate=load, memory_access_fraction=0.2, seed=7
    )


def bench_tail_point(
    load: float,
    cycles: int,
    repeats: int,
    lanes: int = 8,
    configs: Optional[Dict[str, SystemConfig]] = None,
) -> Dict[str, Dict[str, float]]:
    """Measure the per-flit-hop allocation tail cost of all three paths.

    The "tail" is the per-event portion of the allocation phase: everything
    a send or ejection does beyond the batched candidate dispatch.  For the
    scalar engine that is the whole allocation phase (its dispatch is the
    per-event loop); the vector engines time it directly as the profiled
    ``allocation/events`` row (group loop + bulk epilogue + delivery
    replay).  Dividing by the total event count (flit hops + ejected flits)
    gives honest µs/hop figures — the quantity lane batching cannot
    amortise and the array epilogue attacks directly.

    Scalar and solo-vector figures come from profiled runs of the bench
    seed; the batched figure from the same ``lanes``-seed sweep the
    batching section uses, run with ``profile_allocation=True`` (profiled
    solo runs are ineligible for batching, so the fused loop publishes the
    aggregate split instead).  Engine parity stays a hard assertion on
    every run measured here.
    """
    entries: Dict[str, Dict[str, float]] = {}
    if configs is None:
        configs = wired_configs()
    for name, config in configs.items():
        scalar = _profiled_run(config, load, cycles, "scalar")
        vector = _profiled_run(config, load, cycles, "vector")
        if fingerprint(scalar) != fingerprint(vector):
            raise AssertionError(
                f"engine parity violated for {name!r}: the profiled vector "
                "run diverged from the scalar reference"
            )
        scalar_tail_s = scalar.phase_seconds["allocation"]
        vector_tail_s = vector.phase_seconds["allocation/events"]
        solo_events = scalar.flit_hops + scalar.flits_ejected_total

        tasks = [
            SimulationTask(
                kind="synthetic",
                config=config,
                cycles=cycles,
                warmup_cycles=cycles // 10,
                seed=seed,
                load=load,
            )
            for seed in lane_seeds(7, lanes)
        ]

        def batched_profiled():
            simulators = [task_simulator(task, engine="vector") for task in tasks]
            return run_batched(simulators, profile_allocation=True)

        batched_results = batched_profiled()
        batched_prints = [fingerprint(result) for result in batched_results]
        batched_tail_s = batched_results[0].phase_seconds["allocation/events"]
        for _ in range(repeats - 1):
            again = _profiled_run(config, load, cycles, "scalar")
            if fingerprint(again) != fingerprint(scalar):
                raise AssertionError(f"scalar runs diverged for {name!r}")
            scalar_tail_s = min(scalar_tail_s, again.phase_seconds["allocation"])
            again = _profiled_run(config, load, cycles, "vector")
            if fingerprint(again) != fingerprint(vector):
                raise AssertionError(f"vector runs diverged for {name!r}")
            vector_tail_s = min(
                vector_tail_s, again.phase_seconds["allocation/events"]
            )
            again_batch = batched_profiled()
            if [fingerprint(result) for result in again_batch] != batched_prints:
                raise AssertionError(f"batched sweeps diverged for {name!r}")
            batched_tail_s = min(
                batched_tail_s, again_batch[0].phase_seconds["allocation/events"]
            )
        batched_events = sum(
            result.flit_hops + result.flits_ejected_total
            for result in batched_results
        )
        scalar_tail_us = 1e6 * scalar_tail_s / solo_events
        vector_tail_us = 1e6 * vector_tail_s / solo_events
        batched_tail_us = 1e6 * batched_tail_s / batched_events
        entries[name] = {
            "lanes": lanes,
            "solo_events": solo_events,
            "batched_events": batched_events,
            "scalar_tail_us_per_hop": round(scalar_tail_us, 3),
            "vector_tail_us_per_hop": round(vector_tail_us, 3),
            "batched_tail_us_per_hop": round(batched_tail_us, 3),
            "tail_ratio": round(scalar_tail_us / batched_tail_us, 3),
            "batched_events_per_second": round(batched_events / batched_tail_s, 1),
        }
    return entries


def run_benchmark(
    load: float,
    cycles: int,
    repeats: int = 1,
    saturation_load: float = DEFAULT_SATURATION_LOAD,
) -> Dict[str, object]:
    """Benchmark both load points and assemble the snapshot payload."""
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    entries = bench_load_point(load, cycles, repeats)
    saturation_entries = bench_load_point(saturation_load, cycles, repeats)
    wireless_entries = bench_load_point(
        saturation_load, cycles, repeats, configs=wireless_token_configs()
    )
    control8_entries = bench_load_point(
        saturation_load, cycles, repeats, configs=wireless_control8_configs()
    )
    vector_entries = bench_vector_point(load, cycles, repeats)
    vector_saturation_entries = bench_vector_point(
        saturation_load, cycles, repeats
    )
    batched_entries = bench_batched_point(load, cycles, repeats)
    large_mesh_cycles = max(200, cycles // 5)
    large_mesh_entries = bench_batched_point(
        load, large_mesh_cycles, repeats, lanes=4, configs=large_mesh_config()
    )
    tail_entries = bench_tail_point(load, cycles, repeats)
    return {
        "benchmark": "bench_kernel",
        "description": (
            "one mid-load and one near-saturation uniform point per "
            "architecture plus token-MAC and 8-channel control-packet "
            "wireless saturation points, dense vs active-set scheduler "
            "(identical results, different wall-clock); the wired points "
            "additionally time the NumPy vector engine against the scalar "
            "active-set engine (bit-identical, honest quotient); lane-batched "
            "multi-seed sweeps (wired mid load plus a 1024-core mesh) time "
            "the fused vector cycle loop against the same sweep run solo"
        ),
        "load_packets_per_core_per_cycle": load,
        "load_fraction_of_mesh_saturation": round(load / MESH_SATURATION_LOAD, 3),
        "saturation_load_packets_per_core_per_cycle": saturation_load,
        "saturation_load_fraction_of_mesh_saturation": round(
            saturation_load / MESH_SATURATION_LOAD, 3
        ),
        "cycles": cycles,
        "python": platform.python_version(),
        "results": entries,
        "results_saturation": saturation_entries,
        "results_wireless_token": wireless_entries,
        "results_wireless_control8": control8_entries,
        "results_vector": vector_entries,
        "results_vector_saturation": vector_saturation_entries,
        "results_vector_batched": batched_entries,
        "results_large_mesh": large_mesh_entries,
        "results_tail_cost": tail_entries,
        "large_mesh_cycles": large_mesh_cycles,
        "mesh_speedup": entries["mesh"]["speedup"],
        "batched_mesh_tail_us_per_hop": tail_entries["mesh"][
            "batched_tail_us_per_hop"
        ],
        "vector_mesh_saturation_speedup": vector_saturation_entries["mesh"][
            "vector_speedup"
        ],
        "batched_mesh_speedup_vs_vector": batched_entries["mesh"][
            "batched_speedup_vs_vector"
        ],
    }


def _point_table(cycles: int, entries: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, entry in entries.items():
        rows.append(
            [
                name,
                entry["dense_seconds"],
                entry["active_seconds"],
                f"{entry['speedup']:.2f}x",
                format_simulator_throughput(
                    cycles, entry["active_seconds"]
                ).split(": ")[1],
            ]
        )
    return format_table(
        ["Architecture", "dense (s)", "active (s)", "speedup", "active throughput"],
        rows,
    )


def _vector_point_table(cycles: int, entries: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, entry in entries.items():
        rows.append(
            [
                name,
                entry["scalar_seconds"],
                entry["vector_seconds"],
                f"{entry['vector_speedup']:.2f}x",
                format_simulator_throughput(
                    cycles, entry["vector_seconds"]
                ).split(": ")[1],
            ]
        )
    return format_table(
        ["Architecture", "scalar (s)", "vector (s)", "speedup", "vector throughput"],
        rows,
    )


def _batched_point_table(entries: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, entry in entries.items():
        rows.append(
            [
                name,
                entry["lanes"],
                entry["scalar_seconds"],
                entry["vector_seconds"],
                entry["batched_seconds"],
                f"{entry['batched_speedup']:.2f}x",
                f"{entry['batched_speedup_vs_vector']:.2f}x",
                entry["batched_task_cycles_per_second"],
            ]
        )
    return format_table(
        [
            "Architecture",
            "lanes",
            "scalar (s)",
            "vector (s)",
            "batched (s)",
            "vs scalar",
            "vs vector",
            "task-cycles/s",
        ],
        rows,
    )


def _tail_point_table(entries: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for name, entry in entries.items():
        rows.append(
            [
                name,
                entry["scalar_tail_us_per_hop"],
                entry["vector_tail_us_per_hop"],
                entry["batched_tail_us_per_hop"],
                f"{entry['tail_ratio']:.2f}x",
                entry["batched_events_per_second"],
            ]
        )
    return format_table(
        [
            "Architecture",
            "scalar (µs/hop)",
            "vector (µs/hop)",
            "batched (µs/hop)",
            "scalar/batched",
            "batched events/s",
        ],
        rows,
    )


def format_report(snapshot: Dict[str, object]) -> str:
    """Human-readable tables of the snapshot (both load points)."""
    cycles = snapshot["cycles"]
    parts = [
        f"mid load ({snapshot['load_fraction_of_mesh_saturation']:.0%} of "
        "mesh saturation):",
        _point_table(cycles, snapshot["results"]),
    ]
    saturation = snapshot.get("results_saturation")
    if saturation:
        parts.append(
            f"\nnear saturation "
            f"({snapshot['saturation_load_fraction_of_mesh_saturation']:.0%} "
            "of mesh saturation):"
        )
        parts.append(_point_table(cycles, saturation))
    wireless_token = snapshot.get("results_wireless_token")
    if wireless_token:
        parts.append("\ntoken-MAC wireless saturation (4C4M, mac=token):")
        parts.append(_point_table(cycles, wireless_token))
    control8 = snapshot.get("results_wireless_control8")
    if control8:
        parts.append(
            "\n8-channel control-packet wireless saturation "
            "(4C4M, mac=control_packet, num_channels=8):"
        )
        parts.append(_point_table(cycles, control8))
    vector = snapshot.get("results_vector")
    if vector:
        parts.append("\nvector engine vs scalar active-set, mid load:")
        parts.append(_vector_point_table(cycles, vector))
    vector_saturation = snapshot.get("results_vector_saturation")
    if vector_saturation:
        parts.append("\nvector engine vs scalar active-set, near saturation:")
        parts.append(_vector_point_table(cycles, vector_saturation))
    batched = snapshot.get("results_vector_batched")
    if batched:
        parts.append("\nlane-batched vector vs solo sweeps, mid load:")
        parts.append(_batched_point_table(batched))
    large_mesh = snapshot.get("results_large_mesh")
    if large_mesh:
        parts.append(
            "\nlarge mesh (1024-core single chip, "
            f"{snapshot.get('large_mesh_cycles', '?')} cycles), mid load:"
        )
        parts.append(_batched_point_table(large_mesh))
    tail = snapshot.get("results_tail_cost")
    if tail:
        parts.append(
            "\nper-event allocation tail cost (send/eject bookkeeping), "
            "mid load:"
        )
        parts.append(_tail_point_table(tail))
    return "\n".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cycles", type=int, default=DEFAULT_CYCLES)
    parser.add_argument("--load", type=float, default=DEFAULT_LOAD)
    parser.add_argument(
        "--saturation-load",
        type=float,
        default=DEFAULT_SATURATION_LOAD,
        help=(
            "offered load of the near-saturation point "
            f"(default: {DEFAULT_SATURATION_LOAD})"
        ),
    )
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--repeats",
        type=int,
        default=1,
        help="timing repeats per point; the fastest run wins (default: 1)",
    )
    args = parser.parse_args(argv)

    snapshot = run_benchmark(
        args.load,
        args.cycles,
        repeats=args.repeats,
        saturation_load=args.saturation_load,
    )
    print(format_report(snapshot))
    mesh_speedup = snapshot["mesh_speedup"]
    print(
        f"\nmesh baseline speedup at "
        f"{snapshot['load_fraction_of_mesh_saturation']:.0%} of saturation: "
        f"{mesh_speedup:.2f}x"
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"snapshot written to {args.output}")
    vector_speedup = snapshot["vector_mesh_saturation_speedup"]
    print(
        "vector/scalar quotient at the mesh near-saturation point: "
        f"{vector_speedup:.2f}x"
    )
    # Timing is advisory (noisy machines exist); only a parity violation —
    # which raises inside run_benchmark — makes this benchmark fail.
    if mesh_speedup < 2.0:
        print("WARNING: mesh speedup below the 2x acceptance threshold")
    if vector_speedup < 2.0:
        print(
            "WARNING: vector engine below the 2x acceptance target at this "
            "point — expected at the bench's event rates (tens of "
            "candidates per cycle); see ROADMAP.md for the honest status"
        )
    batched = snapshot["results_vector_batched"]["mesh"]
    print(
        "lane-batched mesh quotients at mid load: "
        f"{batched['batched_speedup']:.2f}x vs scalar, "
        f"{batched['batched_speedup_vs_vector']:.2f}x vs solo vector"
    )
    if batched["batched_speedup_vs_vector"] < 1.0:
        print(
            "WARNING: lane batching failed to beat the solo vector sweep — "
            "the amortisation claim itself regressed"
        )
    if batched["batched_speedup"] < 1.0:
        print(
            "WARNING: lane batching still trails the scalar engine at this "
            "point — see ROADMAP.md for the honest per-event decomposition"
        )
    tail = snapshot["results_tail_cost"]["mesh"]
    print(
        "mesh allocation tail cost: "
        f"{tail['scalar_tail_us_per_hop']:.2f} µs/hop scalar, "
        f"{tail['vector_tail_us_per_hop']:.2f} µs/hop vector, "
        f"{tail['batched_tail_us_per_hop']:.2f} µs/hop batched "
        f"({tail['tail_ratio']:.2f}x scalar/batched)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
