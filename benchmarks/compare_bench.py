"""Compare a fresh kernel-benchmark snapshot against the committed baseline.

The CI ``bench-trend`` job regenerates ``BENCH_kernel.json`` with
``benchmarks/bench_kernel.py`` and runs this script against the committed
snapshot.  Two hard gates, applied per architecture and per result section
(scheduler sections ``results``/``results_saturation``/the wireless points,
the vector-engine sections ``results_vector``/``results_vector_saturation``
whose quotient is vector-vs-scalar instead of active-vs-dense, and the
lane-batching sections ``results_vector_batched``/``results_large_mesh``
whose quotient is batched-sweep-vs-solo-scalar-sweep and whose throughput
is cross-task ``task-cycles/s``; engine and lane bit-parity itself is
asserted inside the benchmark before any entry is written):

* **speedup ratio** — the per-architecture active-vs-dense quotient is a
  same-machine, same-run ratio, so it transfers across hosts (unlike
  absolute wall-clock), and a drop means the active-set scheduler is doing
  relatively more work per simulated cycle.  A fresh speedup more than
  ``--max-regression`` (default 25 %) below the committed one fails.
* **absolute throughput** — the pooled data plane is expected to hold its
  ``active_cycles_per_second``; a fresh value more than
  ``--max-cps-regression`` (default 50 %) below the committed snapshot
  fails.  The wide default absorbs runner-hardware variance while still
  catching the regression class the ratio cannot see: both schedulers
  getting uniformly slower (e.g. the per-flit path growing allocations
  back), which leaves the ratio flat.

Usage::

    python benchmarks/compare_bench.py BENCH_kernel.json fresh.json \
        [--max-regression 0.25] [--max-cps-regression 0.5]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Mapping

DEFAULT_MAX_REGRESSION = 0.25
DEFAULT_MAX_CPS_REGRESSION = 0.5

#: Snapshot keys holding per-architecture result sections: (key, label,
#: speedup entry key, cycles/s entry key).  The scheduler sections record
#: the active/dense quotient; the vector sections record the honest
#: vector/scalar quotient — currently below 1x at the bench's event rates,
#: which is why the gate holds the *ratio against the committed baseline*
#: rather than asserting any absolute speedup.
RESULT_SECTIONS = (
    ("results", "mid load", "speedup", "active_cycles_per_second"),
    ("results_saturation", "near saturation", "speedup", "active_cycles_per_second"),
    (
        "results_wireless_token",
        "token-MAC wireless saturation",
        "speedup",
        "active_cycles_per_second",
    ),
    (
        "results_wireless_control8",
        "8-channel control-packet wireless saturation",
        "speedup",
        "active_cycles_per_second",
    ),
    (
        "results_vector",
        "vector engine mid load",
        "vector_speedup",
        "vector_cycles_per_second",
    ),
    (
        "results_vector_saturation",
        "vector engine near saturation",
        "vector_speedup",
        "vector_cycles_per_second",
    ),
    (
        "results_vector_batched",
        "lane-batched vector mid load",
        "batched_speedup",
        "batched_task_cycles_per_second",
    ),
    (
        "results_large_mesh",
        "large mesh (1024 cores) lane-batched",
        "batched_speedup",
        "batched_task_cycles_per_second",
    ),
    (
        "results_tail_cost",
        "per-event allocation tail cost",
        "tail_ratio",
        "batched_events_per_second",
    ),
)


def load_snapshot(path: str) -> Mapping[str, object]:
    """One snapshot file's full payload."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload.get("results"), dict) or not payload["results"]:
        raise SystemExit(f"{path}: not a bench_kernel snapshot (no results)")
    return payload


def compare_section(
    label: str,
    baseline: Dict[str, Dict[str, float]],
    fresh: Dict[str, Dict[str, float]],
    max_regression: float,
    max_cps_regression: float,
    speedup_key: str = "speedup",
    cps_key: str = "active_cycles_per_second",
) -> int:
    """Print one section's comparison table; return the hard-gate failures."""
    failures = 0
    header = (
        f"{label:<16} {'speedup old':>12} {'speedup new':>12} "
        f"{'ratio':>7}   {'cycles/s old':>12} {'cycles/s new':>12} {'ratio':>7}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(baseline):
        if name not in fresh:
            print(f"{name:<16} MISSING from fresh snapshot -> FAIL")
            failures += 1
            continue
        old = baseline[name]
        new = fresh[name]
        old_speedup = float(old[speedup_key])
        new_speedup = float(new[speedup_key])
        ratio = new_speedup / old_speedup if old_speedup > 0 else float("inf")
        old_cps = float(old.get(cps_key, 0.0))
        new_cps = float(new.get(cps_key, 0.0))
        cps_ratio = new_cps / old_cps if old_cps > 0 else float("inf")
        verdict = ""
        if ratio < 1.0 - max_regression:
            verdict += "  <-- FAIL (speedup regression)"
            failures += 1
        if cps_ratio < 1.0 - max_cps_regression:
            verdict += "  <-- FAIL (cycles/s regression)"
            failures += 1
        print(
            f"{name:<16} {old_speedup:>12.2f} {new_speedup:>12.2f} "
            f"{ratio:>6.2f}x   {old_cps:>12.1f} {new_cps:>12.1f} "
            f"{cps_ratio:>6.2f}x{verdict}"
        )
    return failures


def compare(
    baseline: Mapping[str, object],
    fresh: Mapping[str, object],
    max_regression: float,
    max_cps_regression: float,
) -> int:
    """Compare every result section; return the total hard-gate failures."""
    failures = 0
    for key, label, speedup_key, cps_key in RESULT_SECTIONS:
        base_section = baseline.get(key)
        if not isinstance(base_section, dict) or not base_section:
            continue  # the committed snapshot predates this section
        fresh_section = fresh.get(key)
        if not isinstance(fresh_section, dict):
            print(f"section {key!r} MISSING from fresh snapshot -> FAIL")
            failures += 1
            continue
        failures += compare_section(
            label,
            base_section,
            fresh_section,
            max_regression,
            max_cps_regression,
            speedup_key=speedup_key,
            cps_key=cps_key,
        )
        print()
    print(
        "hard gates per architecture and load point: "
        f">{max_regression:.0%} drop of the active/dense speedup ratio, "
        f">{max_cps_regression:.0%} drop of active cycles/s vs the committed "
        "snapshot."
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_kernel.json")
    parser.add_argument("fresh", help="freshly generated snapshot")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional speedup drop (default: 0.25)",
    )
    parser.add_argument(
        "--max-cps-regression",
        type=float,
        default=DEFAULT_MAX_CPS_REGRESSION,
        help=(
            "tolerated fractional drop of active cycles/s versus the "
            "committed snapshot (default: 0.5; generous because runner "
            "hardware varies)"
        ),
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_regression < 1.0:
        parser.error("--max-regression must be in (0, 1)")
    if not 0.0 < args.max_cps_regression < 1.0:
        parser.error("--max-cps-regression must be in (0, 1)")
    failures = compare(
        load_snapshot(args.baseline),
        load_snapshot(args.fresh),
        args.max_regression,
        args.max_cps_regression,
    )
    if failures:
        print(f"\n{failures} hard-gate failure(s)", file=sys.stderr)
        return 1
    print("\nbench-trend gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
