"""Compare a fresh kernel-benchmark snapshot against the committed baseline.

The CI ``bench-trend`` job regenerates ``BENCH_kernel.json`` with
``benchmarks/bench_kernel.py`` and runs this script against the committed
snapshot.  The **hard gate** is the per-architecture active-vs-dense
*speedup ratio*: it is a same-machine, same-run quotient, so it transfers
across hosts (unlike absolute wall-clock), and a drop means the active-set
scheduler is doing relatively more work per simulated cycle — exactly the
regression the gate exists to catch.  A fresh speedup more than
``--max-regression`` (default 25 %) below the committed one fails the job.

Absolute cycles/s numbers are printed as an **advisory** delta only —
runner hardware varies — mirroring how ``bench_kernel.py`` itself gates on
result parity while treating timing as advisory.

Usage::

    python benchmarks/compare_bench.py BENCH_kernel.json fresh.json \
        [--max-regression 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict

DEFAULT_MAX_REGRESSION = 0.25


def load_snapshot(path: str) -> Dict[str, Dict[str, float]]:
    """The per-architecture result entries of one snapshot file."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    results = payload.get("results")
    if not isinstance(results, dict) or not results:
        raise SystemExit(f"{path}: not a bench_kernel snapshot (no results)")
    return results


def compare(
    baseline: Dict[str, Dict[str, float]],
    fresh: Dict[str, Dict[str, float]],
    max_regression: float,
) -> int:
    """Print the comparison table; return the number of hard-gate failures."""
    failures = 0
    header = (
        f"{'architecture':<12} {'speedup old':>12} {'speedup new':>12} "
        f"{'ratio':>7}   {'cycles/s old':>12} {'cycles/s new':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(baseline):
        if name not in fresh:
            print(f"{name:<12} MISSING from fresh snapshot -> FAIL")
            failures += 1
            continue
        old = baseline[name]
        new = fresh[name]
        old_speedup = float(old["speedup"])
        new_speedup = float(new["speedup"])
        ratio = new_speedup / old_speedup if old_speedup > 0 else float("inf")
        old_cps = float(old.get("active_cycles_per_second", 0.0))
        new_cps = float(new.get("active_cycles_per_second", 0.0))
        verdict = ""
        if ratio < 1.0 - max_regression:
            verdict = "  <-- FAIL (speedup regression)"
            failures += 1
        print(
            f"{name:<12} {old_speedup:>12.2f} {new_speedup:>12.2f} "
            f"{ratio:>6.2f}x   {old_cps:>12.1f} {new_cps:>12.1f}{verdict}"
        )
    print(
        "\ncycles/s columns are advisory (hardware-dependent); the hard gate "
        f"is a >{max_regression:.0%} drop in the active/dense speedup ratio."
    )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_kernel.json")
    parser.add_argument("fresh", help="freshly generated snapshot")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        help="tolerated fractional speedup drop (default: 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.max_regression < 1.0:
        parser.error("--max-regression must be in (0, 1)")
    failures = compare(
        load_snapshot(args.baseline), load_snapshot(args.fresh), args.max_regression
    )
    if failures:
        print(f"\n{failures} architecture(s) regressed beyond the gate", file=sys.stderr)
        return 1
    print("\nbench-trend gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
