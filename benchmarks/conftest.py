"""Shared helpers for the figure-regeneration benchmarks.

Each benchmark runs one experiment exactly once (``pedantic`` with a single
round) — the quantity of interest is the experiment's *output tables*, which
are printed so the run log contains the regenerated figure data, while
pytest-benchmark records the wall-clock cost of regenerating it.

Experiments execute through the parallel orchestration layer
(:mod:`repro.parallel.runner`).  Set ``REPRO_BENCH_JOBS=8`` to fan the
independent simulation tasks out across worker processes; results are
bit-identical at any job count, only the wall-clock changes.  The result
cache is disabled so every benchmark measures real simulation work.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.common import get_fidelity
from repro.parallel.runner import ExperimentRunner
from repro.traffic.registry import pattern_spec

#: Fidelity used by the benchmark harness; override with
#: ``REPRO_BENCH_FIDELITY=default`` (or ``paper``) in the environment.
#: Validated through the experiment layer's own lookup, so the benches
#: accept exactly what the CLI accepts.
BENCH_FIDELITY = get_fidelity(os.environ.get("REPRO_BENCH_FIDELITY", "fast")).name

#: Worker processes used by the benchmark harness; override with
#: ``REPRO_BENCH_JOBS=8`` in the environment.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Synthetic traffic pattern for the load-sweep benches (fig2/fig3/fig4);
#: override with ``REPRO_BENCH_PATTERN=transpose`` etc.  Resolved through
#: the traffic registry — the same construction path as the CLI's
#: ``--pattern`` flag — so an unknown name fails loudly at collection.
BENCH_PATTERN = pattern_spec(os.environ.get("REPRO_BENCH_PATTERN", "uniform")).name


@pytest.fixture
def run_once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(function, *args, **kwargs):
        return benchmark.pedantic(
            function, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run


@pytest.fixture
def bench_fidelity():
    """Fidelity level the benchmarks run at."""
    return BENCH_FIDELITY


@pytest.fixture
def bench_pattern():
    """Registered traffic pattern the load-sweep benches run."""
    return BENCH_PATTERN


@pytest.fixture
def bench_runner():
    """Experiment runner for benchmarks: configurable jobs, cache disabled."""
    return ExperimentRunner(jobs=BENCH_JOBS, cache_dir=None, use_cache=False)
