"""Run PARSEC / SPLASH-2 style application traffic on a wireless multichip system.

Uses the SynFull-substitute application models (each processing chip runs
one thread of the application, the DRAM stacks are shared) to compare the
wireless 4C4M system against the interposer baseline for a few applications,
the way the paper's Fig. 6 does.

Run with::

    python examples/application_workload.py
"""

from __future__ import annotations

from repro import Architecture, MultichipSimulation, SimulationConfig, SystemConfig
from repro.core.comparison import ArchitectureMetrics, compare
from repro.metrics import format_table
from repro.traffic import get_profile

APPLICATIONS = ["blackscholes", "canneal", "fft", "radix"]
RATE_SCALE = 0.25


def main() -> None:
    simulation_config = SimulationConfig(cycles=1500, warmup_cycles=250)
    rows = []
    for application in APPLICATIONS:
        profile = get_profile(application)
        per_arch = {}
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS):
            config = SystemConfig(architecture=architecture)
            simulation = MultichipSimulation.from_config(config, simulation_config)
            result = simulation.run_application(
                application, rate_scale=RATE_SCALE, seed=11
            )
            per_arch[architecture] = ArchitectureMetrics.from_result(
                config.name, result
            )
        gains = compare(
            per_arch[Architecture.WIRELESS], per_arch[Architecture.INTERPOSER]
        )
        rows.append(
            [
                f"{application} ({profile.suite})",
                per_arch[Architecture.INTERPOSER].average_packet_energy_nj,
                per_arch[Architecture.WIRELESS].average_packet_energy_nj,
                f"{gains.energy_gain_pct:+.1f}%",
                f"{gains.latency_gain_pct:+.1f}%",
            ]
        )

    print(
        format_table(
            [
                "Application",
                "Interposer energy (nJ/packet)",
                "Wireless energy (nJ/packet)",
                "Energy gain",
                "Latency gain",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
