"""Compare the three multichip interconnection architectures head to head.

Runs the paper's 4C4M system under uniform random traffic with all three
interconnection options — substrate serial I/O, interposer extended mesh and
the proposed wireless framework — sweeping the offered load, and prints the
saturation metrics plus the wireless-versus-interposer gains (the Fig. 2 /
Fig. 4 style comparison).

Run with::

    python examples/compare_architectures.py
"""

from __future__ import annotations

from repro import (
    Architecture,
    MultichipSimulation,
    SimulationConfig,
    SystemConfig,
    compare,
)
from repro.core.comparison import ArchitectureMetrics
from repro.metrics import format_table

LOADS = [0.0005, 0.001, 0.0015, 0.002, 0.003]


def main() -> None:
    simulation_config = SimulationConfig(cycles=2000, warmup_cycles=300)
    metrics = {}
    for architecture in (
        Architecture.SUBSTRATE,
        Architecture.INTERPOSER,
        Architecture.WIRELESS,
    ):
        config = SystemConfig(architecture=architecture)
        simulation = MultichipSimulation.from_config(config, simulation_config)
        sweep = simulation.sweep_uniform(
            loads=LOADS, memory_access_fraction=0.2, seed=1
        )
        metrics[architecture] = ArchitectureMetrics.from_sweep(config.name, sweep)

    rows = [
        [
            m.name,
            m.bandwidth_gbps_per_core,
            m.average_packet_energy_nj,
            m.average_packet_latency_cycles,
        ]
        for m in metrics.values()
    ]
    print(
        format_table(
            [
                "Configuration",
                "Peak bandwidth/core (Gbps)",
                "Avg packet energy (nJ)",
                "Avg latency (cycles)",
            ],
            rows,
        )
    )

    gains = compare(metrics[Architecture.WIRELESS], metrics[Architecture.INTERPOSER])
    print()
    print("Wireless vs interposer:")
    print(f"  bandwidth gain : {gains.bandwidth_gain_pct:+.1f}%")
    print(f"  energy gain    : {gains.energy_gain_pct:+.1f}%")
    print(f"  latency gain   : {gains.latency_gain_pct:+.1f}%")


if __name__ == "__main__":
    main()
