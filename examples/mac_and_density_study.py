"""Design-space study: MAC protocol and WI deployment density.

Explores two design choices discussed in Section III of the paper on a
smaller system so it runs quickly:

* the proposed control-packet MAC (partial-packet transmission, sleepy
  receivers) versus the baseline token-passing MAC (whole-packet
  transmission, always-on receivers), and
* the wireless deployment density (cores served by one WI).

Run with::

    python examples/mac_and_density_study.py
"""

from __future__ import annotations

from repro import Architecture, MultichipSimulation, SimulationConfig, SystemConfig
from repro.metrics import format_table

SIMULATION = SimulationConfig(cycles=1500, warmup_cycles=250)
LOAD = 0.002


def run_variant(mac: str, cores_per_wi: int):
    config = SystemConfig(
        architecture=Architecture.WIRELESS,
        num_chips=2,
        cores_per_chip=16,
        num_memory_stacks=2,
        cores_per_wi=cores_per_wi,
        total_processing_area_mm2=200.0,
    ).with_wireless(mac=mac)
    simulation = MultichipSimulation.from_config(config, SIMULATION)
    result = simulation.run_uniform(
        injection_rate=LOAD, memory_access_fraction=0.2, seed=5
    )
    return result


def main() -> None:
    rows = []
    for mac in ("control_packet", "token"):
        for cores_per_wi in (16, 8):
            result = run_variant(mac, cores_per_wi)
            rows.append(
                [
                    mac,
                    f"1 WI / {cores_per_wi} cores",
                    result.bandwidth_gbps_per_core(),
                    result.average_packet_latency_cycles(),
                    result.system_packet_energy_nj(),
                    f"{result.transceiver_sleep_fraction * 100:.0f}%",
                ]
            )
    print(
        format_table(
            [
                "MAC",
                "WI density",
                "Accepted bandwidth (Gbps/core)",
                "Avg latency (cycles)",
                "Avg packet energy (nJ)",
                "Receiver sleep time",
            ],
            rows,
        )
    )


if __name__ == "__main__":
    main()
