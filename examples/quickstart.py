"""Quickstart: build a wireless multichip system and measure it.

Builds the paper's default 4C4M system (four 16-core chips plus four
in-package DRAM stacks) with the proposed wireless interconnection
framework, runs uniform random traffic at a moderate load, and prints the
headline metrics (bandwidth per core, average packet latency and energy)
together with the WI deployment summary.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Architecture,
    MultichipSimulation,
    SimulationConfig,
    SystemConfig,
    build_system,
)


def main() -> None:
    config = SystemConfig(architecture=Architecture.WIRELESS)
    system = build_system(config)

    print(f"System          : {system.name}")
    print(f"Cores           : {system.num_cores}")
    print(f"Switches        : {system.topology.num_switches}")
    print(f"Wireless WIs    : {system.num_wireless_interfaces}")
    print(f"WI area overhead: {system.wireless_area_overhead_mm2():.1f} mm^2")
    print(f"Link inventory  : {system.link_inventory()}")
    print()

    simulation = MultichipSimulation(
        system, SimulationConfig(cycles=2000, warmup_cycles=300)
    )
    result = simulation.run_uniform(
        injection_rate=0.001, memory_access_fraction=0.2, seed=1
    )

    print("Uniform random traffic @ 0.001 packets/core/cycle, 20% memory access")
    print(f"  accepted bandwidth : {result.bandwidth_gbps_per_core():.2f} Gb/s per core")
    print(f"  avg packet latency : {result.average_packet_latency_cycles():.1f} cycles")
    print(f"  avg packet energy  : {result.system_packet_energy_nj():.2f} nJ")
    print(f"  packets delivered  : {result.packets_delivered}")
    print(f"  wireless flit hops : {result.wireless_flit_hops}")
    print(f"  transceiver sleep  : {result.transceiver_sleep_fraction * 100:.1f}% of cycles")


if __name__ == "__main__":
    main()
