"""CI smoke for the sweep service (see .github/workflows/ci.yml).

Both parts run against a real ``python -m repro.service`` subprocess on
a private Unix socket:

``--part cache``
    Submit the built-in fig2 scenario at fast fidelity twice through the
    daemon's scenario-compile path.  The second submission must execute
    zero new tasks — every result served from the daemon's shared result
    cache — and a CLI run through ``--service`` against the same daemon
    must likewise report ``0 task(s) simulated``.

``--part resume``
    Submit one long wireless task, SIGKILL the daemon once a checkpoint
    of that task lands on disk, then restart the daemon and resubmit:
    the resumed run must reproduce the uninterrupted run's result
    payload bit for bit (the golden fingerprint is computed in-process
    with ``execute_task``) and consume the checkpoint on success.

Exits non-zero with a ``[smoke] FAIL`` line on the first broken
invariant, so the CI job log points at the exact contract that failed.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.core.config import Architecture  # noqa: E402
from repro.parallel.checkpoints import CheckpointStore  # noqa: E402
from repro.parallel.runner import execute_task, uniform_task  # noqa: E402
from repro.service.client import ServiceClient, ServiceError, submit_sync  # noqa: E402
from repro.service.wire import decode_line, encode_line  # noqa: E402
from repro.testing import small_system_config  # noqa: E402


@dataclass(frozen=True)
class _Fidelity:
    cycles: int
    warmup_cycles: int
    seed: int


def say(message: str) -> None:
    print(f"[smoke] {message}", flush=True)


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"[smoke] FAIL: {message}", flush=True)
        raise SystemExit(1)


def _env() -> Dict[str, str]:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = os.pathsep.join(p for p in (str(SRC), existing) if p)
    return env


def _start_daemon(socket_path: Path, *extra: str) -> subprocess.Popen:
    command = [sys.executable, "-m", "repro.service", "--socket", str(socket_path)]
    return subprocess.Popen([*command, *extra], env=_env())


def _wait_ready(socket_path: Path, timeout: float = 60.0) -> ServiceClient:
    """Poll ``ping`` until the daemon answers (the socket file existing
    is not enough: a previous daemon may have left a stale one)."""
    client = ServiceClient(str(socket_path))
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if asyncio.run(client.ping()):
                return client
        except (ConnectionRefusedError, FileNotFoundError, OSError, ServiceError):
            time.sleep(0.1)
    raise SystemExit(f"[smoke] FAIL: daemon on {socket_path} not ready in {timeout}s")


async def _submit_builtin(socket_path: Path, name: str, fidelity: str) -> Dict[str, Any]:
    """Raw-protocol submit of a built-in scenario; returns the terminal event."""
    reader, writer = await asyncio.open_unix_connection(str(socket_path))
    try:
        writer.write(encode_line({"op": "submit", "builtin": name, "fidelity": fidelity}))
        await writer.drain()
        while True:
            line = await reader.readline()
            if not line:
                raise SystemExit("[smoke] FAIL: daemon closed the stream early")
            event = decode_line(line)
            if event is None:
                continue
            check(bool(event.get("ok")), f"daemon error: {event.get('error')}")
            if event.get("event") in ("done", "failed"):
                return event
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


def part_cache(workdir: Path) -> None:
    workdir.mkdir(parents=True, exist_ok=True)
    socket_path = workdir / "svc.sock"
    process = _start_daemon(
        socket_path, "--jobs", "2", "--cache-dir", str(workdir / "cache")
    )
    try:
        client = _wait_ready(socket_path)
        first = asyncio.run(_submit_builtin(socket_path, "fig2", "fast"))
        say(f"first fig2 submission: executed={first['executed']} cached={first['cached']}")
        check(first["executed"] > 0, "cold submission executed nothing")
        check(first["cached"] == 0, "cold submission hit a cache that should be empty")

        second = asyncio.run(_submit_builtin(socket_path, "fig2", "fast"))
        say(f"second fig2 submission: executed={second['executed']} cached={second['cached']}")
        check(
            second["executed"] == 0,
            f"duplicate submission executed {second['executed']} task(s); want 0",
        )
        check(
            second["cached"] == first["executed"],
            "duplicate submission was not served entirely from the cache",
        )

        cli = subprocess.run(
            [
                sys.executable, "-m", "repro.experiments", "fig2",
                "--fidelity", "fast", "--service", str(socket_path),
            ],
            capture_output=True,
            text=True,
            env=_env(),
            check=True,
        )
        check(
            "0 task(s) simulated" in cli.stdout,
            "CLI --service run was not served entirely from the daemon cache",
        )
        say("CLI --service run reported 0 task(s) simulated")

        asyncio.run(client.shutdown())
        check(process.wait(timeout=30) == 0, "daemon exited non-zero")
        check(not socket_path.exists(), "daemon left its socket file behind")
        say("PASS cache: duplicate submissions execute zero new tasks")
    finally:
        if process.poll() is None:
            process.kill()


def part_resume(workdir: Path) -> None:
    workdir.mkdir(parents=True, exist_ok=True)
    task = uniform_task(
        small_system_config(Architecture.WIRELESS),
        _Fidelity(cycles=12000, warmup_cycles=500, seed=7),
        load=0.002,
    )
    say("computing the golden fingerprint (uninterrupted in-process run)")
    golden = execute_task(task)
    store = CheckpointStore(workdir / "ckpt")
    key = task.cache_key()

    socket_path = workdir / "svc.sock"
    daemon_args = (
        "--cache-dir", str(workdir / "cache"),
        "--checkpoint-every", "400",
        "--checkpoint-dir", str(workdir / "ckpt"),
    )
    process = _start_daemon(socket_path, *daemon_args)
    try:
        client = _wait_ready(socket_path)
        with ThreadPoolExecutor(max_workers=1) as pool:
            doomed = pool.submit(lambda: asyncio.run(client.submit([task])))
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline and not store.path_for(key).exists():
                time.sleep(0.05)
            check(store.path_for(key).exists(), "no checkpoint appeared before the deadline")
            say("checkpoint on disk; SIGKILLing the daemon mid-task")
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=30)
            try:
                doomed.result(timeout=60)
            except ServiceError:
                pass
            else:
                check(False, "client call survived the daemon SIGKILL")
        check(store.path_for(key).exists(), "the SIGKILL consumed the checkpoint")

        say("restarting the daemon; the resubmitted task must resume")
        process = _start_daemon(socket_path, *daemon_args)
        _wait_ready(socket_path)
        results = submit_sync([task], str(socket_path), timeout=600)
        check(
            results[task].as_dict() == golden,
            "resumed result diverged from the golden fingerprint",
        )
        check(not store.path_for(key).exists(), "checkpoint not consumed on success")
        asyncio.run(ServiceClient(str(socket_path)).shutdown())
        check(process.wait(timeout=30) == 0, "daemon exited non-zero")
        say("PASS resume: kill mid-task resumed bit-identically from the checkpoint")
    finally:
        if process.poll() is None:
            process.kill()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--part", choices=("cache", "resume", "all"), default="all")
    args = parser.parse_args(argv)
    # A short tmpdir keeps the socket path well under the AF_UNIX limit.
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as workdir:
        if args.part in ("cache", "all"):
            part_cache(Path(workdir) / "cache-part")
        if args.part in ("resume", "all"):
            part_resume(Path(workdir) / "resume-part")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
