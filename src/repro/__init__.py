"""Reproduction of "Energy-Efficient Wireless Interconnection Framework for
Multichip Systems with In-package Memory Stacks" (Shamim et al., SOCC 2017).

The package provides a cycle-accurate wormhole/VC NoC simulator, the three
multichip interconnection architectures compared in the paper (substrate
serial I/O, interposer extended mesh, and the proposed mm-wave wireless
framework), the wireless physical layer and MAC protocols, energy models,
traffic generators (uniform random and SynFull-substitute application
models) and experiment harnesses that regenerate every figure of the
evaluation.

Quick start::

    from repro import Architecture, MultichipSimulation, SystemConfig

    config = SystemConfig(architecture=Architecture.WIRELESS)
    simulation = MultichipSimulation.from_config(config)
    result = simulation.run_uniform(injection_rate=0.02)
    print(result.summary())
"""

from .core import (
    Architecture,
    ArchitectureMetrics,
    BuiltSystem,
    GainReport,
    MultichipSimulation,
    SystemConfig,
    build_comparison_set,
    build_system,
    compare,
    paper_1c4m,
    paper_4c4m,
    paper_8c4m,
    percentage_gain,
    simulate_config,
)
from .noc import (
    NetworkConfig,
    SimulationConfig,
    SimulationResult,
    Simulator,
    WirelessConfig,
)
from .traffic import (
    APPLICATION_PROFILES,
    SynfullApplicationTraffic,
    TrafficModel,
    TrafficRequest,
    UniformRandomTraffic,
)

__version__ = "1.0.0"

__all__ = [
    "APPLICATION_PROFILES",
    "Architecture",
    "ArchitectureMetrics",
    "BuiltSystem",
    "GainReport",
    "MultichipSimulation",
    "NetworkConfig",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SynfullApplicationTraffic",
    "SystemConfig",
    "TrafficModel",
    "TrafficRequest",
    "UniformRandomTraffic",
    "WirelessConfig",
    "__version__",
    "build_comparison_set",
    "build_system",
    "compare",
    "paper_1c4m",
    "paper_4c4m",
    "paper_8c4m",
    "percentage_gain",
    "simulate_config",
]
