"""The supported programmatic entry surface of the reproduction.

Four verbs cover every way of running simulations; everything else in the
package is implementation detail that may move between releases (as
``repro.experiments.runner`` already did):

* :func:`run` — execute one :class:`~repro.parallel.runner.SimulationTask`
  synchronously and return its :class:`~repro.metrics.saturation.LoadPointSummary`.
* :func:`sweep` — execute many tasks through the parallel runner (worker
  fan-out, content-hash result cache, optional checkpoint/resume).
* :func:`compile_scenario` — turn a scenario document (path, mapping,
  built-in name or parsed :class:`~repro.scenario.ScenarioSpec`) into its
  ordered task list without running anything.
* :func:`submit` — hand a sweep to a running :mod:`repro.service` daemon
  over its local socket and collect the results as they stream back.

Plus two constructors shared by the CLI, the fuzzer and the tests:
:func:`make_runner` (a configured
:class:`~repro.parallel.runner.ExperimentRunner`) and
:func:`build_simulator` (one task's fully wired, not-yet-run
:class:`~repro.noc.engine.Simulator`, for instrumentation).

Imports inside the functions are deliberate: the facade sits at the top of
the package and must stay importable without dragging in the scenario
layer, the service or NumPy, and without creating import cycles with the
modules it fronts.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics.saturation import LoadPointSummary
    from .noc.engine import Simulator
    from .parallel.runner import ExperimentRunner, SimulationTask
    from .scenario import ScenarioSpec

__all__ = [
    "build_simulator",
    "compile_scenario",
    "make_runner",
    "resolve_scenario",
    "run",
    "submit",
    "sweep",
]

#: A scenario in any accepted form: a parsed spec, a raw document mapping,
#: a built-in scenario name (``"fig2"`` … ``"fig8"``) or a YAML/JSON path.
ScenarioSource = Union["ScenarioSpec", Mapping, str, "os.PathLike[str]"]


def make_runner(
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    show_progress: bool = False,
    profile: bool = False,
    engine: str = "scalar",
    checkpoint_every_cycles: int = 0,
    checkpoint_dir: Optional[str] = None,
    batch_lanes: int = 1,
) -> "ExperimentRunner":
    """A configured :class:`~repro.parallel.runner.ExperimentRunner`.

    The single construction path shared by :func:`sweep`, the experiments
    CLI and the sweep service, so runner defaults cannot drift between
    entry points.  Caching engages only when ``cache_dir`` is given (pass
    :data:`repro.parallel.runner.DEFAULT_CACHE_DIR` for the CLI's
    default); ``cache_dir=None`` — like ``use_cache=False`` — runs
    uncached, matching a bare ``ExperimentRunner()``.
    """
    from .parallel.runner import ExperimentRunner

    return ExperimentRunner(
        jobs=jobs,
        cache_dir=cache_dir,
        use_cache=use_cache,
        show_progress=show_progress,
        profile=profile,
        engine=engine,
        checkpoint_every_cycles=checkpoint_every_cycles,
        checkpoint_dir=checkpoint_dir,
        batch_lanes=batch_lanes,
    )


def build_simulator(
    task: "SimulationTask", profile: bool = False, engine: str = "scalar"
) -> "Simulator":
    """Build (but do not run) the fully wired simulator of one task.

    Exposed for instrumentation (``Simulator.instrument``,
    ``Simulator.checkpoint_sink``): the scenario fuzzer and the wireless
    plane tests attach probes here and still run bit-identically to the
    production path, because :func:`run` uses the same constructor.
    """
    from .parallel.runner import task_simulator

    return task_simulator(task, profile=profile, engine=engine)


def run(
    task: "SimulationTask",
    engine: str = "scalar",
    profile: bool = False,
    checkpoint_every: int = 0,
    checkpoint_dir: str = "",
) -> "LoadPointSummary":
    """Execute one task synchronously and summarise the run.

    With both checkpoint knobs set the run persists resumable kernel
    checkpoints every N cycles and resumes from a leftover checkpoint of
    an interrupted earlier attempt — bit-identically to an uninterrupted
    run (see ``tests/test_checkpoint.py``).
    """
    from .metrics.saturation import LoadPointSummary
    from .parallel.runner import execute_task

    payload = execute_task(
        task,
        profile=profile,
        engine=engine,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
    )
    return LoadPointSummary.from_dict(payload)


def sweep(
    tasks: Sequence["SimulationTask"],
    runner: Optional["ExperimentRunner"] = None,
    **runner_kwargs,
) -> Dict["SimulationTask", "LoadPointSummary"]:
    """Execute many tasks through the parallel runner.

    Results are keyed by task and bit-identical at any job count; cached
    results are served without re-simulation.  Pass a pre-configured
    ``runner`` to share its cache counters across calls, or keyword
    arguments accepted by :func:`make_runner` to build a one-shot runner.
    """
    if runner is not None and runner_kwargs:
        raise TypeError("pass either a runner or runner keyword arguments, not both")
    active = runner if runner is not None else make_runner(**runner_kwargs)
    return active.run(tasks)


def resolve_scenario(
    source: ScenarioSource, fidelity: Optional[str] = None
) -> "ScenarioSpec":
    """Normalise any accepted scenario form into a validated spec.

    ``source`` may be a parsed :class:`~repro.scenario.ScenarioSpec`, a raw
    document mapping, a built-in scenario name (``"fig2"`` … ``"fig8"``)
    or a YAML/JSON file path.  ``fidelity`` overrides the document's own
    level (it *selects* the level of a built-in, which has no document).
    """
    from dataclasses import replace

    from .scenario import (
        BUILTIN_SCENARIOS,
        ScenarioSpec,
        builtin_scenario,
        load_scenario,
        parse_scenario,
    )

    if isinstance(source, ScenarioSpec):
        spec = source
    elif isinstance(source, Mapping):
        spec = parse_scenario(source)
    else:
        name = os.fspath(source)
        if name in BUILTIN_SCENARIOS:
            return builtin_scenario(name, fidelity or "default")
        spec = load_scenario(name)
    if fidelity is not None:
        spec = replace(spec, fidelity_level=fidelity)
    return spec


def compile_scenario(
    source: ScenarioSource, fidelity: Optional[str] = None
) -> List["SimulationTask"]:
    """Compile a scenario into its ordered simulation-task list.

    Accepts every form :func:`resolve_scenario` does and runs nothing:
    the returned tasks feed :func:`sweep` or :func:`submit` and share the
    result cache with the figure CLIs bit for bit.
    """
    from .scenario import compile_scenario as compile_spec

    return compile_spec(resolve_scenario(source, fidelity))


def submit(
    tasks: Sequence["SimulationTask"],
    socket_path: str,
    priority: str = "bulk",
    timeout: Optional[float] = None,
) -> Dict["SimulationTask", "LoadPointSummary"]:
    """Run tasks on the sweep-service daemon listening at ``socket_path``.

    Blocks until the job completes and returns results keyed by task,
    exactly like :func:`sweep` — the service dedupes against its result
    cache, coalesces tasks shared with in-flight jobs, and (with
    ``priority="interactive"``) preempts queued bulk work.  Start a daemon
    with ``python -m repro.service --socket PATH``.
    """
    from .service.client import submit_sync

    return submit_sync(tasks, socket_path, priority=priority, timeout=timeout)
