"""The paper's primary contribution: the wireless multichip framework API.

``SystemConfig`` describes an ``XCYM (Architecture)`` system, ``build_system``
constructs its topology and routing, and ``MultichipSimulation`` runs the
cycle-accurate evaluation — uniform-random sweeps for the saturation
metrics, and application traffic for the steady-state comparison.
"""

from .architectures import (
    BuiltSystem,
    UnknownArchitectureError,
    architecture_builder,
    available_architectures,
    build_comparison_set,
    build_system,
    register_architecture,
)
from .comparison import (
    ArchitectureMetrics,
    GainReport,
    compare,
    percentage_gain,
)
from .config import (
    Architecture,
    SystemConfig,
    paper_1c4m,
    paper_4c4m,
    paper_8c4m,
)
from .framework import MultichipSimulation, simulate_config

__all__ = [
    "Architecture",
    "ArchitectureMetrics",
    "BuiltSystem",
    "GainReport",
    "MultichipSimulation",
    "SystemConfig",
    "UnknownArchitectureError",
    "architecture_builder",
    "available_architectures",
    "build_comparison_set",
    "build_system",
    "compare",
    "register_architecture",
    "paper_1c4m",
    "paper_4c4m",
    "paper_8c4m",
    "percentage_gain",
    "simulate_config",
]
