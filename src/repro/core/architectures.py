"""Architecture factories: build the multichip systems of the paper.

``build_system`` turns a :class:`~repro.core.config.SystemConfig` into a
fully connected topology (chips + memory stacks + the architecture's
inter-die links), a router over that topology, and the bookkeeping needed by
experiments (WI count, area overhead, off-chip link inventory).

The inter-die interconnect of each architecture is applied by a registered
*overlay builder*; new architectures plug in with one decorator —

::

    @register_architecture("my-fabric")
    def _apply_my_fabric(multichip, config):
        ...mutate multichip.graph...

— and are then constructible by name via :func:`architecture_builder`
(``build_system`` resolves the builder from the configured architecture's
value the same way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..routing import BaseRouter, ShortestPathRouter
from ..topology import (
    InterposerOverlayConfig,
    MultichipSystem,
    SubstrateOverlayConfig,
    TopologyGraph,
    WirelessOverlayConfig,
    apply_interposer_overlay,
    apply_substrate_overlay,
    apply_wireless_overlay,
    build_multichip_base,
    channel_assignment,
    wireless_area_overhead_mm2,
)
from .config import Architecture, SystemConfig


@dataclass
class BuiltSystem:
    """A constructed multichip system ready to simulate."""

    config: SystemConfig
    multichip: MultichipSystem
    router: BaseRouter

    @property
    def topology(self) -> TopologyGraph:
        """The topology graph of the system."""
        return self.multichip.graph

    @property
    def name(self) -> str:
        """Paper-style configuration name."""
        return self.config.name

    @property
    def num_cores(self) -> int:
        """Total number of core endpoints."""
        return len(self.topology.cores)

    @property
    def num_wireless_interfaces(self) -> int:
        """Number of deployed WIs (0 for the wired architectures)."""
        return len(self.topology.wireless_switches)

    @property
    def num_wireless_channels(self) -> int:
        """Configured orthogonal wireless channels (0 without WIs)."""
        if not self.topology.wireless_switches:
            return 0
        return self.config.network.wireless.num_channels

    def wireless_channel_assignment(self) -> Dict[int, List[int]]:
        """Planned channel → WI grouping of this system (empty if wired).

        Matches the wireless fabric's round-robin channel plan, so reports
        built from the topology describe exactly the per-channel MAC
        domains the simulator will arbitrate.
        """
        if not self.topology.wireless_switches:
            return {}
        return channel_assignment(
            self.topology, self.config.network.wireless.num_channels
        )

    def wireless_area_overhead_mm2(self) -> float:
        """Total transceiver area overhead of the system [mm^2]."""
        return wireless_area_overhead_mm2(self.topology)

    def link_inventory(self) -> Dict[str, int]:
        """Number of links of each kind (useful in reports and tests)."""
        inventory: Dict[str, int] = {}
        for link in self.topology.links:
            inventory[link.kind.value] = inventory.get(link.kind.value, 0) + 1
        return inventory

    def offchip_link_count(self) -> int:
        """Number of links crossing a die boundary."""
        return len(self.topology.inter_region_links())


# ----------------------------------------------------------------------
# Architecture registry.
# ----------------------------------------------------------------------

#: Overlay-builder signature: mutate ``multichip`` in place so its graph
#: carries the architecture's inter-die interconnect.
OverlayBuilder = Callable[[MultichipSystem, SystemConfig], None]

_ARCHITECTURES: Dict[str, OverlayBuilder] = {}


class UnknownArchitectureError(KeyError):
    """Raised when an architecture name is not registered."""


def register_architecture(name: str) -> Callable[[OverlayBuilder], OverlayBuilder]:
    """Decorator that registers an overlay builder under a name."""

    def decorator(builder: OverlayBuilder) -> OverlayBuilder:
        if name in _ARCHITECTURES:
            raise ValueError(f"architecture {name!r} is already registered")
        _ARCHITECTURES[name] = builder
        return builder

    return decorator


def architecture_builder(name: str) -> OverlayBuilder:
    """Look up the overlay builder registered under ``name``."""
    try:
        return _ARCHITECTURES[name]
    except KeyError:
        known = ", ".join(sorted(_ARCHITECTURES))
        raise UnknownArchitectureError(
            f"unknown architecture {name!r}; known architectures: {known}"
        ) from None


def available_architectures() -> List[str]:
    """All registered architecture names, sorted."""
    return sorted(_ARCHITECTURES)


@register_architecture(Architecture.SUBSTRATE.value)
def _apply_substrate(multichip: MultichipSystem, config: SystemConfig) -> None:
    apply_substrate_overlay(
        multichip,
        SubstrateOverlayConfig(
            serial_links_per_boundary=config.substrate_serial_links,
            wide_io_links_per_stack=config.wide_io_links_per_stack,
        ),
    )


@register_architecture(Architecture.INTERPOSER.value)
def _apply_interposer(multichip: MultichipSystem, config: SystemConfig) -> None:
    apply_interposer_overlay(
        multichip,
        InterposerOverlayConfig(
            links_per_boundary=config.interposer_links_per_boundary,
            wide_io_links_per_stack=config.wide_io_links_per_stack,
        ),
    )


@register_architecture(Architecture.WIRELESS.value)
def _apply_wireless(multichip: MultichipSystem, config: SystemConfig) -> None:
    apply_wireless_overlay(
        multichip,
        WirelessOverlayConfig(
            cores_per_wi=config.cores_per_wi,
            num_channels=config.network.wireless.num_channels,
        ),
    )


def build_system(
    config: SystemConfig,
    router_factory=None,
) -> BuiltSystem:
    """Construct the topology and router for one system configuration.

    ``router_factory`` may be supplied to route with something other than the
    default :class:`~repro.routing.ShortestPathRouter` (e.g. the literal
    spanning-tree router for ablations); it receives the topology graph and
    must return a :class:`~repro.routing.BaseRouter`.
    """
    multichip = build_multichip_base(
        num_chips=config.num_chips,
        cores_per_chip=config.cores_per_chip,
        num_memory_stacks=config.num_memory_stacks,
        vaults_per_stack=config.vaults_per_stack,
        total_processing_area_mm2=config.total_processing_area_mm2,
    )

    builder = architecture_builder(config.architecture.value)
    builder(multichip, config)

    multichip.graph.validate()
    if router_factory is None:
        router = ShortestPathRouter(multichip.graph)
    else:
        router = router_factory(multichip.graph)
    return BuiltSystem(config=config, multichip=multichip, router=router)


def build_comparison_set(
    base_config: SystemConfig,
    architectures: Optional[List[Architecture]] = None,
) -> Dict[Architecture, BuiltSystem]:
    """Build the same system under several interconnection architectures."""
    selected = architectures or list(Architecture)
    return {
        architecture: build_system(base_config.with_architecture(architecture))
        for architecture in selected
    }
