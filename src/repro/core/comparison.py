"""Relative-gain computations between architectures.

Figures 4, 5 and 6 of the paper report percentage *gains* of the wireless
multichip system over the interposer baseline: an increase in bandwidth, and
reductions in average packet energy and latency.  This module defines those
gains once so every experiment and test computes them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..metrics.saturation import LoadPointSummary, LoadSweepResult, SweepSummary
from ..noc.stats import SimulationResult


@dataclass(frozen=True)
class ArchitectureMetrics:
    """Headline metrics of one architecture under one workload."""

    name: str
    bandwidth_gbps_per_core: float
    average_packet_energy_nj: float
    average_packet_latency_cycles: float

    @classmethod
    def from_result(cls, name: str, result: SimulationResult) -> "ArchitectureMetrics":
        """Metrics of a single simulation run.

        Energy uses the totals-based :meth:`SimulationResult.system_packet_energy_nj`
        so saturated runs are not biased towards the shorter-path packets
        that manage to complete.
        """
        return cls(
            name=name,
            bandwidth_gbps_per_core=result.bandwidth_gbps_per_core(),
            average_packet_energy_nj=result.system_packet_energy_nj(),
            average_packet_latency_cycles=result.average_packet_latency_cycles(),
        )

    @classmethod
    def from_sweep(
        cls, name: str, sweep: LoadSweepResult, acceptance: float = 0.9
    ) -> "ArchitectureMetrics":
        """Metrics at the sustainable-saturation point of a load sweep.

        Bandwidth is the peak *sustainable* rate (the offered traffic mix is
        still delivered), and energy/latency are measured at that operating
        point, mirroring the paper's "at saturation with maximum load".
        Delegates to :meth:`from_sweep_summary`, so serial sweeps and
        reassembled cached/parallel sweeps share one implementation.
        """
        return cls.from_sweep_summary(name, sweep.summary(), acceptance)

    @classmethod
    def from_point_summary(
        cls, name: str, point: LoadPointSummary
    ) -> "ArchitectureMetrics":
        """Metrics of one cached/parallel task result.

        Computes exactly the same quantities as :meth:`from_result` but from
        the compact :class:`LoadPointSummary` the parallel experiment runner
        caches, so cached and freshly simulated runs are interchangeable.
        """
        return cls(
            name=name,
            bandwidth_gbps_per_core=point.bandwidth_gbps_per_core,
            average_packet_energy_nj=point.system_packet_energy_nj,
            average_packet_latency_cycles=point.average_latency_cycles,
        )

    @classmethod
    def from_sweep_summary(
        cls, name: str, summary: SweepSummary, acceptance: float = 0.9
    ) -> "ArchitectureMetrics":
        """Metrics at the sustainable-saturation point of a sweep summary.

        The :class:`SweepSummary` counterpart of :meth:`from_sweep`: the
        selection rule and the arithmetic are identical, so assembling a
        sweep from independently executed per-load tasks yields bit-identical
        metrics to a serial :class:`LoadSweepResult`.
        """
        peak = summary.point_at_sustainable_peak(acceptance)
        return cls(
            name=name,
            bandwidth_gbps_per_core=summary.sustainable_bandwidth_gbps_per_core(
                acceptance
            ),
            average_packet_energy_nj=peak.system_packet_energy_nj,
            average_packet_latency_cycles=peak.average_latency_cycles,
        )

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by reports."""
        return {
            "bandwidth_gbps_per_core": self.bandwidth_gbps_per_core,
            "avg_packet_energy_nj": self.average_packet_energy_nj,
            "avg_packet_latency_cycles": self.average_packet_latency_cycles,
        }


def percentage_gain(value: float, baseline: float, higher_is_better: bool) -> float:
    """Relative gain of ``value`` over ``baseline`` in percent.

    For higher-is-better metrics (bandwidth) this is the relative increase;
    for lower-is-better metrics (energy, latency) it is the relative
    reduction, so a positive number always means "the wireless system wins".
    """
    if baseline == 0:
        return 0.0
    if higher_is_better:
        return (value - baseline) / baseline * 100.0
    return (baseline - value) / baseline * 100.0


@dataclass(frozen=True)
class GainReport:
    """Percentage gains of one architecture over a baseline."""

    name: str
    baseline_name: str
    bandwidth_gain_pct: float
    energy_gain_pct: float
    latency_gain_pct: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by reports."""
        return {
            "bandwidth_gain_pct": self.bandwidth_gain_pct,
            "energy_gain_pct": self.energy_gain_pct,
            "latency_gain_pct": self.latency_gain_pct,
        }


def compare(
    candidate: ArchitectureMetrics, baseline: ArchitectureMetrics
) -> GainReport:
    """Gains of ``candidate`` relative to ``baseline``."""
    return GainReport(
        name=candidate.name,
        baseline_name=baseline.name,
        bandwidth_gain_pct=percentage_gain(
            candidate.bandwidth_gbps_per_core,
            baseline.bandwidth_gbps_per_core,
            higher_is_better=True,
        ),
        energy_gain_pct=percentage_gain(
            candidate.average_packet_energy_nj,
            baseline.average_packet_energy_nj,
            higher_is_better=False,
        ),
        latency_gain_pct=percentage_gain(
            candidate.average_packet_latency_cycles,
            baseline.average_packet_latency_cycles,
            higher_is_better=False,
        ),
    )
