"""System-level configuration: the ``XCYM (Architecture)`` naming of the paper.

A :class:`SystemConfig` fully describes one multichip system to evaluate:
how many processing chips and memory stacks it has, how they are
interconnected (substrate serial I/O, interposer extended mesh, or the
proposed wireless framework), the WI deployment density, and the NoC
parameters shared by every architecture.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Optional

from ..noc.config import NetworkConfig


class Architecture(str, Enum):
    """Inter-chip interconnection style (Section IV-A)."""

    SUBSTRATE = "substrate"
    INTERPOSER = "interposer"
    WIRELESS = "wireless"


@dataclass(frozen=True)
class SystemConfig:
    """One multichip system configuration."""

    architecture: Architecture = Architecture.WIRELESS
    #: Number of processing chips (the X of ``XCYM``).
    num_chips: int = 4
    #: Cores per processing chip; the default 4C x 16 cores keeps the 64-core
    #: total of the paper's evaluation.
    cores_per_chip: int = 16
    #: Number of in-package DRAM stacks (the Y of ``XCYM``).
    num_memory_stacks: int = 4
    #: DRAM channels (vaults) per stack.
    vaults_per_stack: int = 4
    #: Wireless deployment density: cores serviced by one WI.
    cores_per_wi: int = 16
    #: Combined active processing area kept constant under disintegration
    #: (Section IV-C); ``None`` uses a 10 mm die edge per chip instead.
    total_processing_area_mm2: Optional[float] = 400.0
    #: Parallel interposer links per adjacent chip boundary (0 = one per row).
    interposer_links_per_boundary: int = 1
    #: Serial I/O links per adjacent chip boundary in the substrate system.
    substrate_serial_links: int = 1
    #: Wide I/O channels per memory stack in the wired systems.
    wide_io_links_per_stack: int = 1
    #: Shared NoC parameters (VCs, buffers, packet length, wireless PHY/MAC).
    network: NetworkConfig = field(default_factory=NetworkConfig)

    def __post_init__(self) -> None:
        if self.num_chips <= 0:
            raise ValueError("num_chips must be positive")
        if self.cores_per_chip <= 0:
            raise ValueError("cores_per_chip must be positive")
        if self.num_memory_stacks < 0:
            raise ValueError("num_memory_stacks must be non-negative")
        if self.vaults_per_stack <= 0:
            raise ValueError("vaults_per_stack must be positive")
        if self.cores_per_wi <= 0:
            raise ValueError("cores_per_wi must be positive")
        if self.interposer_links_per_boundary < 0:
            raise ValueError("interposer_links_per_boundary must be non-negative")
        if self.substrate_serial_links <= 0:
            raise ValueError("substrate_serial_links must be positive")
        if self.wide_io_links_per_stack <= 0:
            raise ValueError("wide_io_links_per_stack must be positive")

    # ------------------------------------------------------------------
    # Naming / derived quantities.
    # ------------------------------------------------------------------

    @property
    def total_cores(self) -> int:
        """Total processing cores in the system."""
        return self.num_chips * self.cores_per_chip

    @property
    def name(self) -> str:
        """Paper-style name, e.g. ``4C4M (Wireless)``."""
        return (
            f"{self.num_chips}C{self.num_memory_stacks}M "
            f"({self.architecture.value.capitalize()})"
        )

    def with_architecture(self, architecture: Architecture) -> "SystemConfig":
        """The same system with a different interconnection architecture."""
        return replace(self, architecture=architecture)

    def with_network(self, **kwargs) -> "SystemConfig":
        """The same system with modified network parameters."""
        return replace(self, network=replace(self.network, **kwargs))

    def with_wireless(self, **kwargs) -> "SystemConfig":
        """The same system with modified wireless (PHY/MAC) parameters."""
        wireless = replace(self.network.wireless, **kwargs)
        return replace(self, network=replace(self.network, wireless=wireless))


def paper_4c4m(architecture: Architecture = Architecture.WIRELESS) -> SystemConfig:
    """The 64-core, 4-chip, 4-stack system of Figs. 2 and 3."""
    return SystemConfig(architecture=architecture)


def paper_1c4m(architecture: Architecture = Architecture.WIRELESS) -> SystemConfig:
    """The single-chip, 4-stack system of Fig. 4 (1 WI per 16 cores)."""
    return SystemConfig(
        architecture=architecture,
        num_chips=1,
        cores_per_chip=64,
        cores_per_wi=16,
    )


def paper_8c4m(architecture: Architecture = Architecture.WIRELESS) -> SystemConfig:
    """The eight-chip, 4-stack system of Fig. 4 (1 WI per 8 cores)."""
    return SystemConfig(
        architecture=architecture,
        num_chips=8,
        cores_per_chip=8,
        cores_per_wi=8,
    )
