"""High-level simulation facade — the main entry point of the library.

``MultichipSimulation`` wraps a built system (topology + router) and runs
cycle-accurate simulations against it: single runs under any traffic model,
uniform-random runs at a given offered load, application runs, and full load
sweeps for saturation analysis.  This is the API the examples, experiments
and benchmarks are written against.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..metrics.saturation import (
    LoadSweepResult,
    default_load_points,
    run_load_sweep,
)
from ..noc.config import NetworkConfig
from ..noc.engine import SimulationConfig, Simulator
from ..noc.stats import SimulationResult
from ..traffic.base import TrafficModel
from ..traffic.registry import create_pattern
from ..traffic.synfull import SynfullApplicationTraffic
from ..traffic.uniform import UniformRandomTraffic
from .architectures import BuiltSystem, build_system
from .config import SystemConfig


class MultichipSimulation:
    """Runs the cycle-accurate simulator against one built multichip system."""

    def __init__(
        self,
        system: BuiltSystem,
        simulation_config: Optional[SimulationConfig] = None,
    ) -> None:
        self.system = system
        self.simulation_config = simulation_config or SimulationConfig()

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def from_config(
        cls,
        config: SystemConfig,
        simulation_config: Optional[SimulationConfig] = None,
    ) -> "MultichipSimulation":
        """Build the system described by ``config`` and wrap it."""
        return cls(build_system(config), simulation_config)

    # ------------------------------------------------------------------
    # Properties.
    # ------------------------------------------------------------------

    @property
    def config(self) -> SystemConfig:
        """System configuration of the wrapped system."""
        return self.system.config

    @property
    def network_config(self) -> NetworkConfig:
        """NoC configuration used for every run."""
        return self.system.config.network

    # ------------------------------------------------------------------
    # Single runs.
    # ------------------------------------------------------------------

    def simulator_for(
        self, traffic: TrafficModel, fault_plan=None
    ) -> Simulator:
        """Build (but do not run) one simulator for an arbitrary traffic model.

        This is the single simulator-construction path behind every run
        method, exposed so callers that need the un-run engine — the
        scenario fuzzer instruments the wireless fabric through
        :attr:`Simulator.instrument` before running — share it bit for bit
        with the normal ``run_*`` entry points.
        """
        return Simulator(
            topology=self.system.topology,
            router=self.system.router,
            traffic=traffic,
            network_config=self.network_config,
            simulation_config=self.simulation_config,
            fault_plan=fault_plan,
        )

    def pattern_traffic(
        self,
        pattern: str,
        injection_rate: float,
        memory_access_fraction: float = 0.2,
        seed: int = 1,
    ) -> TrafficModel:
        """Build one registered synthetic traffic pattern for this system."""
        return create_pattern(
            pattern,
            self.system.topology,
            injection_rate=injection_rate,
            memory_access_fraction=memory_access_fraction,
            seed=seed,
        )

    def application_traffic(
        self,
        application: str,
        rate_scale: float = 1.0,
        seed: int = 1,
    ) -> TrafficModel:
        """Build one PARSEC/SPLASH-2 application profile for this system."""
        return SynfullApplicationTraffic.from_name(
            self.system.topology,
            application,
            rate_scale=rate_scale,
            seed=seed,
        )

    def run_traffic(
        self, traffic: TrafficModel, fault_plan=None
    ) -> SimulationResult:
        """Run one simulation under an arbitrary traffic model.

        ``fault_plan`` optionally injects a deterministic fault schedule
        (see :mod:`repro.faults`); ``None`` or an empty plan runs the
        pristine fabric.
        """
        return self.simulator_for(traffic, fault_plan=fault_plan).run()

    def run_uniform(
        self,
        injection_rate: float,
        memory_access_fraction: float = 0.2,
        seed: int = 1,
        memory_replies: bool = False,
        fault_plan=None,
    ) -> SimulationResult:
        """Run uniform random traffic at one offered load."""
        traffic = UniformRandomTraffic(
            self.system.topology,
            injection_rate=injection_rate,
            memory_access_fraction=memory_access_fraction,
            memory_replies=memory_replies,
            seed=seed,
        )
        return self.run_traffic(traffic, fault_plan=fault_plan)

    def run_pattern(
        self,
        pattern: str,
        injection_rate: float,
        memory_access_fraction: float = 0.2,
        seed: int = 1,
        fault_plan=None,
    ) -> SimulationResult:
        """Run one registered synthetic traffic pattern at one offered load.

        ``pattern`` is any name from
        :func:`repro.traffic.registry.available_patterns` — this is the
        path behind the experiment CLI's ``--pattern`` flag.  Patterns
        without a memory-traffic component ignore
        ``memory_access_fraction``.
        """
        traffic = self.pattern_traffic(
            pattern,
            injection_rate=injection_rate,
            memory_access_fraction=memory_access_fraction,
            seed=seed,
        )
        return self.run_traffic(traffic, fault_plan=fault_plan)

    def run_application(
        self,
        application: str,
        rate_scale: float = 1.0,
        seed: int = 1,
        fault_plan=None,
    ) -> SimulationResult:
        """Run one PARSEC/SPLASH-2 application profile (SynFull substitute)."""
        traffic = self.application_traffic(
            application, rate_scale=rate_scale, seed=seed
        )
        return self.run_traffic(traffic, fault_plan=fault_plan)

    # ------------------------------------------------------------------
    # Sweeps.
    # ------------------------------------------------------------------

    def sweep_uniform(
        self,
        loads: Optional[Sequence[float]] = None,
        memory_access_fraction: float = 0.2,
        seed: int = 1,
    ) -> LoadSweepResult:
        """Run a load sweep with uniform random traffic."""
        selected = list(loads) if loads is not None else default_load_points()

        def run_at(load: float) -> SimulationResult:
            return self.run_uniform(
                injection_rate=load,
                memory_access_fraction=memory_access_fraction,
                seed=seed,
            )

        return run_load_sweep(run_at, selected)

    def peak_bandwidth_gbps_per_core(
        self,
        loads: Optional[Sequence[float]] = None,
        memory_access_fraction: float = 0.2,
        seed: int = 1,
    ) -> float:
        """Peak achievable bandwidth per core under uniform random traffic."""
        sweep = self.sweep_uniform(
            loads=loads, memory_access_fraction=memory_access_fraction, seed=seed
        )
        return sweep.peak_bandwidth_gbps_per_core()


def simulate_config(
    config: SystemConfig,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    simulation_config: Optional[SimulationConfig] = None,
    seed: int = 1,
) -> SimulationResult:
    """One-call convenience: build the system and run uniform traffic once."""
    simulation = MultichipSimulation.from_config(config, simulation_config)
    return simulation.run_uniform(
        injection_rate=injection_rate,
        memory_access_fraction=memory_access_fraction,
        seed=seed,
    )
