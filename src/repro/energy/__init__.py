"""Energy and power models for the 65 nm multichip systems.

The subpackage provides the technology constants of the paper's operating
point and analytical substitutes for the Cadence/Synopsys characterisations
the authors used, plus the accountant that turns per-flit events into the
average-packet-energy metric reported in the evaluation.
"""

from .accounting import EnergyAccountant, EnergyBreakdown
from .io import IoCharacteristics, SerialIoModel, WideIoModel
from .switch_power import SwitchPowerModel, SwitchPowerProfile
from .technology import (
    DEFAULT_TECHNOLOGY,
    Technology,
    bits_per_cycle,
    cycles_per_flit,
)
from .wire import WireCharacteristics, WireModel, interposer_link_characteristics
from .wireless_energy import WirelessEnergyModel, WirelessEnergyProfile

__all__ = [
    "DEFAULT_TECHNOLOGY",
    "EnergyAccountant",
    "EnergyBreakdown",
    "IoCharacteristics",
    "SerialIoModel",
    "SwitchPowerModel",
    "SwitchPowerProfile",
    "Technology",
    "WideIoModel",
    "WireCharacteristics",
    "WireModel",
    "WirelessEnergyModel",
    "WirelessEnergyProfile",
    "bits_per_cycle",
    "cycles_per_flit",
    "interposer_link_characteristics",
]
