"""Per-packet and system-level energy accounting.

The paper's headline energy metric is the *average packet energy*: "the
energy consumed to transfer an entire packet from source to destination in
the multichip system on an average".  The accountant accumulates

* dynamic energy per flit-hop (switch traversal + link/transceiver energy),
  attributed to the packet that moved, and
* static energy (switch leakage, idle/sleeping transceivers), amortised over
  the packets delivered during the measurement window,

and reports both components so experiments can include or exclude the static
share explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass
class EnergyBreakdown:
    """Aggregated energy totals for one simulation run [pJ]."""

    switch_dynamic_pj: float = 0.0
    link_pj: float = 0.0
    wireless_pj: float = 0.0
    mac_control_pj: float = 0.0
    switch_static_pj: float = 0.0
    transceiver_static_pj: float = 0.0

    @property
    def dynamic_pj(self) -> float:
        """Total dynamic (data-dependent) energy."""
        return (
            self.switch_dynamic_pj
            + self.link_pj
            + self.wireless_pj
            + self.mac_control_pj
        )

    @property
    def static_pj(self) -> float:
        """Total static (time-dependent) energy."""
        return self.switch_static_pj + self.transceiver_static_pj

    @property
    def total_pj(self) -> float:
        """Total energy."""
        return self.dynamic_pj + self.static_pj

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by reports and tests."""
        return {
            "switch_dynamic_pj": self.switch_dynamic_pj,
            "link_pj": self.link_pj,
            "wireless_pj": self.wireless_pj,
            "mac_control_pj": self.mac_control_pj,
            "switch_static_pj": self.switch_static_pj,
            "transceiver_static_pj": self.transceiver_static_pj,
            "dynamic_pj": self.dynamic_pj,
            "static_pj": self.static_pj,
            "total_pj": self.total_pj,
        }


class EnergyAccountant:
    """Accumulates energy during a simulation run.

    Parameters
    ----------
    technology:
        Technology constants (cycle time, per-bit figures).
    include_static:
        Whether static energy is amortised into the average packet energy.
        The paper includes "both dynamic and static power consumption".
    """

    def __init__(
        self,
        technology: Technology = DEFAULT_TECHNOLOGY,
        include_static: bool = True,
    ) -> None:
        self._technology = technology
        self._include_static = include_static
        self._breakdown = EnergyBreakdown()

    @property
    def breakdown(self) -> EnergyBreakdown:
        """The running energy totals."""
        return self._breakdown

    @property
    def include_static(self) -> bool:
        """Whether static energy is folded into average packet energy."""
        return self._include_static

    # ------------------------------------------------------------------
    # Dynamic energy events (called by the simulation engine).
    # ------------------------------------------------------------------

    def record_switch_traversal(self, packet, energy_pj: float) -> None:
        """One flit traversed one switch."""
        self._breakdown.switch_dynamic_pj += energy_pj
        packet.add_energy(energy_pj)

    def record_link_traversal(self, packet, energy_pj: float, wireless: bool) -> None:
        """One flit traversed one link (wired or wireless)."""
        if wireless:
            self._breakdown.wireless_pj += energy_pj
        else:
            self._breakdown.link_pj += energy_pj
        packet.add_energy(energy_pj)

    def record_mac_control(self, energy_pj: float) -> None:
        """A MAC control packet (or token) was broadcast."""
        self._breakdown.mac_control_pj += energy_pj

    # ------------------------------------------------------------------
    # Static energy (called once when a run finishes).
    # ------------------------------------------------------------------

    def record_static(
        self,
        cycles: int,
        total_switch_static_mw: float,
        total_transceiver_static_mw: float = 0.0,
    ) -> None:
        """Charge static power for ``cycles`` simulated cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        seconds = cycles * self._technology.cycle_time_s
        self._breakdown.switch_static_pj += total_switch_static_mw * 1e-3 * seconds * 1e12
        self._breakdown.transceiver_static_pj += (
            total_transceiver_static_mw * 1e-3 * seconds * 1e12
        )

    def add_transceiver_static_energy(self, energy_pj: float) -> None:
        """Add pre-integrated transceiver static energy (idle/sleep residency)."""
        if energy_pj < 0:
            raise ValueError(f"energy_pj must be non-negative, got {energy_pj}")
        self._breakdown.transceiver_static_pj += energy_pj

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def average_packet_energy_pj(
        self,
        dynamic_packet_energies_pj,
        delivered_packets: Optional[int] = None,
    ) -> float:
        """Average packet energy over the measurement window [pJ].

        ``dynamic_packet_energies_pj`` is the per-packet dynamic energy of the
        delivered packets; static energy (if enabled) is spread evenly over
        ``delivered_packets`` (defaults to the number of energies given).
        """
        energies = list(dynamic_packet_energies_pj)
        if not energies:
            return 0.0
        dynamic_avg = sum(energies) / len(energies)
        if not self._include_static:
            return dynamic_avg
        packets = delivered_packets if delivered_packets else len(energies)
        return dynamic_avg + self._breakdown.static_pj / max(1, packets)
