"""Energy and rate models of the conventional off-chip I/O channels.

Two wireline off-package channel types appear in the baseline architectures
of the paper (Section IV-A):

* high speed **serial I/O** for chip-to-chip (C-C) traffic — 15 Gb/s per
  lane at 5 pJ/bit [8];
* 128-bit **wide I/O** for memory-to-chip (M-C) traffic — 128 Gb/s per DRAM
  stack at 6.5 pJ/bit [19].

Both are characterised here in the per-flit terms the simulator consumes:
energy per flit, serialisation cycles per flit, and extra latency cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import (
    DEFAULT_TECHNOLOGY,
    SERIAL_IO_EXTRA_LATENCY_CYCLES,
    WIDE_IO_EXTRA_LATENCY_CYCLES,
    Technology,
    cycles_per_flit,
)


@dataclass(frozen=True)
class IoCharacteristics:
    """Per-flit characteristics of an off-chip I/O channel."""

    name: str
    energy_pj_per_flit: float
    cycles_per_flit: int
    extra_latency_cycles: int
    rate_gbps: float

    @property
    def energy_pj_per_bit(self) -> float:
        """Per-bit energy implied by the per-flit figure."""
        return self.energy_pj_per_flit / DEFAULT_TECHNOLOGY.flit_width_bits


class SerialIoModel:
    """Chip-to-chip high-speed serial I/O channel model [8]."""

    def __init__(
        self,
        technology: Technology = DEFAULT_TECHNOLOGY,
        lanes: int = 1,
    ) -> None:
        if lanes <= 0:
            raise ValueError(f"lanes must be positive, got {lanes}")
        self._technology = technology
        self._lanes = lanes

    @property
    def lanes(self) -> int:
        """Number of bonded serial lanes forming one logical link."""
        return self._lanes

    def characterize(self) -> IoCharacteristics:
        """Characterise the (possibly multi-lane) serial link."""
        tech = self._technology
        rate = tech.serial_io_rate_gbps * self._lanes
        return IoCharacteristics(
            name="serial_io",
            energy_pj_per_flit=tech.flit_energy_pj(tech.serial_io_energy_pj_per_bit),
            cycles_per_flit=cycles_per_flit(rate, tech.flit_width_bits),
            extra_latency_cycles=SERIAL_IO_EXTRA_LATENCY_CYCLES,
            rate_gbps=rate,
        )


class WideIoModel:
    """Wide (128-bit) memory I/O channel model [19]."""

    def __init__(self, technology: Technology = DEFAULT_TECHNOLOGY) -> None:
        self._technology = technology

    def characterize(self) -> IoCharacteristics:
        """Characterise one wide I/O channel between a stack and its chip."""
        tech = self._technology
        rate = tech.wide_io_rate_gbps()
        return IoCharacteristics(
            name="wide_io",
            energy_pj_per_flit=tech.flit_energy_pj(tech.wide_io_energy_pj_per_bit),
            cycles_per_flit=cycles_per_flit(rate, tech.flit_width_bits),
            extra_latency_cycles=WIDE_IO_EXTRA_LATENCY_CYCLES,
            rate_gbps=rate,
        )
