"""Power model of the wormhole/VC NoC switch.

The paper synthesises its switches from RTL with 65 nm standard cells and
feeds the resulting dynamic and static power into the cycle-accurate
simulator.  This module is the analytical substitute: it exposes a per-flit
dynamic traversal energy and a static power that scales with the amount of
buffering a switch instance carries, so architectures that need deeper
buffers (e.g. the token-MAC wireless interface) pay for them.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass(frozen=True)
class SwitchPowerProfile:
    """Static power and per-flit dynamic energy of one switch instance."""

    dynamic_energy_pj_per_flit: float
    static_power_mw: float
    num_ports: int
    total_buffer_flits: int

    def static_energy_pj(self, cycles: int, cycle_time_s: float) -> float:
        """Leakage energy burnt over ``cycles`` clock cycles [pJ]."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        return self.static_power_mw * 1e-3 * cycles * cycle_time_s * 1e12


class SwitchPowerModel:
    """Produces :class:`SwitchPowerProfile` objects for switch instances."""

    #: Number of ports of the reference switch the static figure was taken for.
    REFERENCE_PORTS = 5

    def __init__(self, technology: Technology = DEFAULT_TECHNOLOGY) -> None:
        self._technology = technology

    @property
    def technology(self) -> Technology:
        """Technology constants used by this model."""
        return self._technology

    def profile(
        self,
        num_ports: int,
        virtual_channels: int,
        buffer_depth_flits: int,
    ) -> SwitchPowerProfile:
        """Characterise a switch with the given port/buffer organisation.

        Static power scales linearly with the number of ports (crossbar and
        allocators) and with the total buffered flits (registers/SRAM), around
        the reference 5-port, 8 VC x 16 flit configuration of the paper.
        """
        if num_ports <= 0:
            raise ValueError(f"num_ports must be positive, got {num_ports}")
        if virtual_channels <= 0:
            raise ValueError(
                f"virtual_channels must be positive, got {virtual_channels}"
            )
        if buffer_depth_flits <= 0:
            raise ValueError(
                f"buffer_depth_flits must be positive, got {buffer_depth_flits}"
            )
        tech = self._technology
        total_buffer_flits = num_ports * virtual_channels * buffer_depth_flits
        reference_buffer_flits = self.REFERENCE_PORTS * 8 * 16
        port_scale = num_ports / self.REFERENCE_PORTS
        # Half of the reference static power is attributed to port logic and
        # half to buffering; each part scales with its own driver.
        base = tech.switch_static_power_mw
        static_mw = 0.5 * base * port_scale + 0.5 * base * (
            total_buffer_flits / reference_buffer_flits
        )
        # Extra buffering beyond the reference also pays the explicit
        # per-flit leakage figure so oversized WI buffers are not free.
        extra_flits = max(0, total_buffer_flits - reference_buffer_flits)
        static_mw += extra_flits * tech.buffer_static_power_uw_per_flit * 1e-3
        return SwitchPowerProfile(
            dynamic_energy_pj_per_flit=tech.switch_dynamic_energy_pj_per_flit,
            static_power_mw=static_mw,
            num_ports=num_ports,
            total_buffer_flits=total_buffer_flits,
        )

    def traversal_energy_pj(self, flits: int = 1) -> float:
        """Dynamic energy for ``flits`` flit traversals of one switch [pJ]."""
        if flits < 0:
            raise ValueError(f"flits must be non-negative, got {flits}")
        return flits * self._technology.switch_dynamic_energy_pj_per_flit
