"""Technology constants for the 65 nm node used throughout the reproduction.

The paper evaluates every architecture at the 65 nm technology node with a
2.5 GHz clock and a 1 V supply.  All delay and energy figures that the paper
quotes explicitly are captured here verbatim; figures the paper obtained from
Cadence/Synopsys runs (intra-chip wire energy, switch power) are replaced by
documented analytical estimates for the same node.  Only these macro numbers
enter the cycle-accurate simulation, so the substitution preserves the
relative behaviour of the architectures (see DESIGN.md, section 3).

Every constant uses explicit units in its name (``_PJ_PER_BIT``, ``_MW``,
``_GBPS`` ...) so that accounting code cannot silently mix units.
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Global digital operating point (Section IV of the paper).
# ---------------------------------------------------------------------------

#: Nominal clock frequency of all digital components (switches, NIs) [Hz].
CLOCK_FREQUENCY_HZ: float = 2.5e9

#: Clock period [s].
CYCLE_TIME_S: float = 1.0 / CLOCK_FREQUENCY_HZ

#: Nominal supply voltage [V].
SUPPLY_VOLTAGE_V: float = 1.0

#: Flit width used by every architecture in the paper [bits].
FLIT_WIDTH_BITS: int = 32

#: Default packet length [flits] ("moderate packet size of 64 flits").
DEFAULT_PACKET_LENGTH_FLITS: int = 64

#: Virtual channels per port ("8 VCs ... for all the architectures").
DEFAULT_VIRTUAL_CHANNELS: int = 8

#: Buffer depth per virtual channel [flits].
DEFAULT_VC_BUFFER_DEPTH_FLITS: int = 16

#: Switch pipeline depth ("three-stage pipeline network switch" [18]).
SWITCH_PIPELINE_STAGES: int = 3


# ---------------------------------------------------------------------------
# NoC switch power (Synopsys synthesis substitute).
# ---------------------------------------------------------------------------

#: Dynamic energy for one flit to traverse one switch (buffer write/read,
#: route computation, arbitration and crossbar) [pJ/flit].  Derived from
#: 65 nm NoC switch syntheses reported around 30 fJ/bit/hop (e.g. Pande et
#: al., IEEE TC 2005 scaled to 65 nm); 32 bit * 0.0306 pJ/bit ~= 0.98 pJ.
SWITCH_DYNAMIC_ENERGY_PJ_PER_FLIT: float = 0.98

#: Static (leakage + clock tree) power of one switch with 5 ports,
#: 8 VCs x 16 flits of buffering at 65 nm [mW].
SWITCH_STATIC_POWER_MW: float = 2.0

#: Additional static power per flit of buffer storage [uW/flit].  Used to
#: model the larger buffers that the token-based wireless MAC requires
#: (whole-packet buffering at the WI, Section III-D).
BUFFER_STATIC_POWER_UW_PER_FLIT: float = 1.6


# ---------------------------------------------------------------------------
# Intra-chip wireline links (Cadence substitute).
# ---------------------------------------------------------------------------

#: Energy of driving one bit over one millimetre of on-chip global wire with
#: repeaters at 65 nm [pJ/bit/mm].
WIRE_ENERGY_PJ_PER_BIT_PER_MM: float = 0.20

#: Delay of a repeated global wire [ps/mm]; used to check the single-cycle
#: link assumption of the paper for the link lengths that occur in a
#: 10 mm x 10 mm die.
WIRE_DELAY_PS_PER_MM: float = 110.0

#: Die edge length of each processing chip in the default system [mm]
#: ("Each chip is considered to be 10mm x 10mm").
CHIP_EDGE_MM: float = 10.0

#: Physical gap between two adjacent chips on the substrate/interposer [mm].
INTER_CHIP_GAP_MM: float = 1.0


# ---------------------------------------------------------------------------
# Off-chip wireline I/O (Section IV-A).
# ---------------------------------------------------------------------------

#: Energy per bit of the chip-to-chip high speed serial I/O [pJ/bit] [8].
SERIAL_IO_ENERGY_PJ_PER_BIT: float = 5.0

#: Data rate of one serial I/O lane [Gb/s] [8].
SERIAL_IO_RATE_GBPS: float = 15.0

#: Energy per bit of the 128-bit wide memory I/O channel [pJ/bit] [19].
WIDE_IO_ENERGY_PJ_PER_BIT: float = 6.5

#: Width of the wide memory I/O channel [bits].
WIDE_IO_WIDTH_BITS: int = 128

#: Clock of the wide memory I/O channel [Hz]; 128 bit @ 1 GHz = 128 Gb/s.
WIDE_IO_CLOCK_HZ: float = 1.0e9

#: Energy per bit of an interposer link between adjacent chips.  The link is
#: an interposer metal trace (a few millimetres) plus two micro-bump
#: crossings; NoC-on-interposer studies [2] place this between on-chip wire
#: energy and serial I/O energy [pJ/bit].
INTERPOSER_LINK_ENERGY_PJ_PER_BIT: float = 1.6

#: Extra latency of an interposer link relative to an on-chip link [cycles].
INTERPOSER_LINK_EXTRA_LATENCY_CYCLES: int = 1

#: Extra latency of a serial I/O link (serialisation + package trace) [cycles].
SERIAL_IO_EXTRA_LATENCY_CYCLES: int = 2

#: Extra latency of a wide memory I/O crossing [cycles].
WIDE_IO_EXTRA_LATENCY_CYCLES: int = 1


# ---------------------------------------------------------------------------
# mm-wave wireless physical layer (Section III-B / IV).
# ---------------------------------------------------------------------------

#: Energy per bit of the 60 GHz OOK transceiver (TX + RX) [pJ/bit] [6].
WIRELESS_ENERGY_PJ_PER_BIT: float = 2.3

#: Sustained data rate of the transceiver [Gb/s] [6].
WIRELESS_DATA_RATE_GBPS: float = 16.0

#: Active silicon area of one transceiver [mm^2].
WIRELESS_TRANSCEIVER_AREA_MM2: float = 0.3

#: Carrier frequency of the wireless channel [Hz].
WIRELESS_CARRIER_FREQUENCY_HZ: float = 60.0e9

#: -3 dB bandwidth of the on-chip zig-zag antenna [Hz] ("bandwidth of 16GHz").
WIRELESS_ANTENNA_BANDWIDTH_HZ: float = 16.0e9

#: Target bit error rate of the wireless link.
WIRELESS_TARGET_BER: float = 1e-15

#: Static power of an active (awake) transceiver [mW]; the product of the
#: 2.3 pJ/bit figure and the 16 Gb/s rate gives 36.8 mW when streaming, of
#: which roughly a third is bias circuitry that burns regardless of data.
WIRELESS_IDLE_POWER_MW: float = 12.0

#: Residual power of a power-gated ("sleepy") transceiver [mW] [17].
WIRELESS_SLEEP_POWER_MW: float = 0.6

#: Size of the MAC control packet broadcast before each transmission burst
#: [bits]: header + up to 8 (DestWI, PktID, NumFlits) 3-tuples.
MAC_CONTROL_PACKET_BITS: int = 96

#: Latency of passing the token in the baseline token MAC [cycles].
TOKEN_PASS_LATENCY_CYCLES: int = 2

#: TSV energy inside a memory stack [pJ/bit]; negligible and identical in all
#: configurations (the paper ignores intra-stack transfer energy).
TSV_ENERGY_PJ_PER_BIT: float = 0.02


def bits_per_cycle(rate_gbps: float, clock_hz: float = CLOCK_FREQUENCY_HZ) -> float:
    """Bits a channel of ``rate_gbps`` can move in one clock of ``clock_hz``."""
    return rate_gbps * 1e9 / clock_hz


def cycles_per_flit(rate_gbps: float, flit_bits: int = FLIT_WIDTH_BITS) -> int:
    """Whole clock cycles needed to serialise one flit over a channel.

    The result is never less than one cycle: even an over-provisioned channel
    is clocked by the 2.5 GHz network clock.
    """
    if rate_gbps <= 0:
        raise ValueError(f"rate_gbps must be positive, got {rate_gbps}")
    per_cycle = bits_per_cycle(rate_gbps)
    import math

    return max(1, math.ceil(flit_bits / per_cycle))


@dataclass(frozen=True)
class Technology:
    """A bundle of technology constants used by the energy models.

    Instances are immutable so a simulation cannot accidentally drift from
    the parameters it was configured with.  The defaults reproduce the
    65 nm / 2.5 GHz / 1 V operating point of the paper; tests use modified
    instances to check scaling behaviour.
    """

    clock_frequency_hz: float = CLOCK_FREQUENCY_HZ
    supply_voltage_v: float = SUPPLY_VOLTAGE_V
    flit_width_bits: int = FLIT_WIDTH_BITS
    switch_dynamic_energy_pj_per_flit: float = SWITCH_DYNAMIC_ENERGY_PJ_PER_FLIT
    switch_static_power_mw: float = SWITCH_STATIC_POWER_MW
    buffer_static_power_uw_per_flit: float = BUFFER_STATIC_POWER_UW_PER_FLIT
    wire_energy_pj_per_bit_per_mm: float = WIRE_ENERGY_PJ_PER_BIT_PER_MM
    wire_delay_ps_per_mm: float = WIRE_DELAY_PS_PER_MM
    serial_io_energy_pj_per_bit: float = SERIAL_IO_ENERGY_PJ_PER_BIT
    serial_io_rate_gbps: float = SERIAL_IO_RATE_GBPS
    wide_io_energy_pj_per_bit: float = WIDE_IO_ENERGY_PJ_PER_BIT
    wide_io_width_bits: int = WIDE_IO_WIDTH_BITS
    wide_io_clock_hz: float = WIDE_IO_CLOCK_HZ
    interposer_link_energy_pj_per_bit: float = INTERPOSER_LINK_ENERGY_PJ_PER_BIT
    wireless_energy_pj_per_bit: float = WIRELESS_ENERGY_PJ_PER_BIT
    wireless_data_rate_gbps: float = WIRELESS_DATA_RATE_GBPS
    wireless_idle_power_mw: float = WIRELESS_IDLE_POWER_MW
    wireless_sleep_power_mw: float = WIRELESS_SLEEP_POWER_MW
    tsv_energy_pj_per_bit: float = TSV_ENERGY_PJ_PER_BIT

    @property
    def cycle_time_s(self) -> float:
        """Clock period in seconds."""
        return 1.0 / self.clock_frequency_hz

    @property
    def cycle_time_ns(self) -> float:
        """Clock period in nanoseconds."""
        return self.cycle_time_s * 1e9

    def flit_energy_pj(self, energy_pj_per_bit: float) -> float:
        """Energy to move one flit at a given per-bit energy [pJ]."""
        return energy_pj_per_bit * self.flit_width_bits

    def wire_energy_pj_per_flit(self, length_mm: float) -> float:
        """Energy to move one flit over ``length_mm`` of on-chip wire [pJ]."""
        if length_mm < 0:
            raise ValueError(f"length_mm must be non-negative, got {length_mm}")
        return self.wire_energy_pj_per_bit_per_mm * length_mm * self.flit_width_bits

    def wire_delay_cycles(self, length_mm: float) -> int:
        """Clock cycles to traverse ``length_mm`` of repeated wire (>= 1)."""
        if length_mm < 0:
            raise ValueError(f"length_mm must be non-negative, got {length_mm}")
        delay_s = self.wire_delay_ps_per_mm * length_mm * 1e-12
        import math

        return max(1, math.ceil(delay_s / self.cycle_time_s))

    def wide_io_rate_gbps(self) -> float:
        """Aggregate data rate of the wide memory I/O channel [Gb/s]."""
        return self.wide_io_width_bits * self.wide_io_clock_hz / 1e9


#: Default technology singleton used when a configuration does not override it.
DEFAULT_TECHNOLOGY = Technology()
