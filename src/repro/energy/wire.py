"""Length-dependent model of intra-chip and interposer wireline links.

The paper obtains the delay and energy of each intra-chip link through
Cadence simulations "considering the specific lengths of each link based on
the mesh topology in each die".  This module provides the analytical
substitute: given a physical link length, it returns the per-flit energy and
the number of clock cycles the traversal takes, using the 65 nm constants in
:mod:`repro.energy.technology`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass(frozen=True)
class WireCharacteristics:
    """Per-flit delay and energy of a wireline segment."""

    length_mm: float
    energy_pj_per_flit: float
    latency_cycles: int

    @property
    def energy_pj_per_bit(self) -> float:
        """Energy per bit implied by the per-flit figure."""
        return self.energy_pj_per_flit / DEFAULT_TECHNOLOGY.flit_width_bits


class WireModel:
    """Analytical delay/energy model for repeated global wires.

    Parameters
    ----------
    technology:
        Technology constants to use.  Defaults to the 65 nm node of the paper.
    """

    def __init__(self, technology: Technology = DEFAULT_TECHNOLOGY) -> None:
        self._technology = technology

    @property
    def technology(self) -> Technology:
        """The technology constants this model evaluates against."""
        return self._technology

    def characterize(self, length_mm: float) -> WireCharacteristics:
        """Characterise a wire segment of the given physical length.

        Raises
        ------
        ValueError
            If the length is negative.
        """
        if length_mm < 0:
            raise ValueError(f"length_mm must be non-negative, got {length_mm}")
        energy = self._technology.wire_energy_pj_per_flit(length_mm)
        latency = self._technology.wire_delay_cycles(length_mm) if length_mm > 0 else 1
        return WireCharacteristics(
            length_mm=length_mm,
            energy_pj_per_flit=energy,
            latency_cycles=latency,
        )

    def mesh_link_length_mm(self, chip_edge_mm: float, mesh_dimension: int) -> float:
        """Length of one hop of a mesh laid out on a square die.

        A ``k x k`` mesh on a die of edge ``chip_edge_mm`` places switches on
        a regular grid, so neighbouring switches are ``edge / k`` apart.
        """
        if mesh_dimension <= 0:
            raise ValueError(
                f"mesh_dimension must be positive, got {mesh_dimension}"
            )
        if chip_edge_mm <= 0:
            raise ValueError(f"chip_edge_mm must be positive, got {chip_edge_mm}")
        return chip_edge_mm / mesh_dimension

    def is_single_cycle(self, length_mm: float) -> bool:
        """Whether a wire of this length meets single-cycle timing.

        The paper assumes "all intra-chip wired links are single-cycle links";
        this predicate lets tests confirm that the assumption holds for the
        link lengths produced by the default geometry.
        """
        return self.characterize(length_mm).latency_cycles <= 1


def interposer_link_characteristics(
    span_mm: float,
    technology: Technology = DEFAULT_TECHNOLOGY,
) -> WireCharacteristics:
    """Characterise an interposer link between two adjacent chips.

    The energy is dominated by the fixed interposer trace + micro-bump cost
    captured in ``interposer_link_energy_pj_per_bit``; the latency grows with
    the physical span of the trace.
    """
    if span_mm < 0:
        raise ValueError(f"span_mm must be non-negative, got {span_mm}")
    energy = technology.interposer_link_energy_pj_per_bit * technology.flit_width_bits
    latency = max(1, technology.wire_delay_cycles(span_mm))
    return WireCharacteristics(
        length_mm=span_mm,
        energy_pj_per_flit=energy,
        latency_cycles=latency,
    )
