"""Energy model of the mm-wave wireless interface (WI).

Captures the published macro-parameters of the 60 GHz OOK transceiver used by
the paper (2.3 pJ/bit at 16 Gb/s, 0.3 mm^2, BER < 1e-15 in TSMC 65 nm [6])
and the power-gating ("sleepy transceiver" [17]) behaviour that the proposed
control-packet MAC enables.
"""

from __future__ import annotations

from dataclasses import dataclass

from .technology import DEFAULT_TECHNOLOGY, Technology


@dataclass(frozen=True)
class WirelessEnergyProfile:
    """Per-flit and static energy figures of one wireless interface."""

    energy_pj_per_flit: float
    idle_power_mw: float
    sleep_power_mw: float
    data_rate_gbps: float

    @property
    def energy_pj_per_bit(self) -> float:
        """Per-bit transmission energy."""
        return self.energy_pj_per_flit / DEFAULT_TECHNOLOGY.flit_width_bits


class WirelessEnergyModel:
    """Produces energy figures for wireless flit transfers and idle periods."""

    def __init__(self, technology: Technology = DEFAULT_TECHNOLOGY) -> None:
        self._technology = technology

    @property
    def technology(self) -> Technology:
        """Technology constants used by this model."""
        return self._technology

    def profile(self) -> WirelessEnergyProfile:
        """Characterise one wireless interface."""
        tech = self._technology
        return WirelessEnergyProfile(
            energy_pj_per_flit=tech.flit_energy_pj(tech.wireless_energy_pj_per_bit),
            idle_power_mw=tech.wireless_idle_power_mw,
            sleep_power_mw=tech.wireless_sleep_power_mw,
            data_rate_gbps=tech.wireless_data_rate_gbps,
        )

    def hop_energy_pj(self, flits: int = 1) -> float:
        """Dynamic energy of transferring ``flits`` flits over one wireless hop."""
        if flits < 0:
            raise ValueError(f"flits must be non-negative, got {flits}")
        return flits * self.profile().energy_pj_per_flit

    def idle_energy_pj(self, cycles: int, asleep: bool) -> float:
        """Energy burnt by an idle transceiver over ``cycles`` cycles.

        A receiver that the control-packet MAC has put to sleep burns only
        the residual sleep power; an always-on receiver (token MAC) burns the
        full idle power.
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        tech = self._technology
        power_mw = tech.wireless_sleep_power_mw if asleep else tech.wireless_idle_power_mw
        return power_mw * 1e-3 * cycles * tech.cycle_time_s * 1e12

    def control_packet_energy_pj(self, control_bits: int) -> float:
        """Energy of broadcasting one MAC control packet."""
        if control_bits < 0:
            raise ValueError(f"control_bits must be non-negative, got {control_bits}")
        return control_bits * self._technology.wireless_energy_pj_per_bit
