"""Experiment harnesses that regenerate every figure of the paper's evaluation.

Each module reproduces one figure (see EXPERIMENTS.md for the figure →
module mapping) and can be run from the command line
(``python -m repro.experiments fig4 --jobs 8``), from the pytest benchmarks
in ``benchmarks/``, or programmatically via its ``run`` function.

Execution goes through the parallel orchestration layer in
:mod:`repro.experiments.runner`: every figure decomposes into independent,
deterministically seeded simulation tasks that fan out across worker
processes and are cached on disk keyed by a content hash of the task.
"""

from . import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
    fig7_resilience,
    fig8_mac_study,
    runner,
)
from .common import FIDELITIES, Fidelity, get_fidelity
from .runner import ExperimentRunner, SimulationTask

__all__ = [
    "ExperimentRunner",
    "FIDELITIES",
    "Fidelity",
    "SimulationTask",
    "fig2_uniform",
    "fig3_latency",
    "fig4_disintegration",
    "fig5_memory_traffic",
    "fig6_applications",
    "fig7_resilience",
    "fig8_mac_study",
    "get_fidelity",
    "runner",
]
