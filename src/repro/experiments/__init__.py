"""Experiment harnesses that regenerate every figure of the paper's evaluation.

Each module reproduces one figure (see DESIGN.md's experiment index) and can
be run from the command line (``python -m repro.experiments fig4``), from the
pytest benchmarks in ``benchmarks/``, or programmatically via its ``run``
function.
"""

from . import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
)
from .common import FIDELITIES, Fidelity, get_fidelity

__all__ = [
    "FIDELITIES",
    "Fidelity",
    "fig2_uniform",
    "fig3_latency",
    "fig4_disintegration",
    "fig5_memory_traffic",
    "fig6_applications",
    "get_fidelity",
]
