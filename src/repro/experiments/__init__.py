"""Experiment harnesses that regenerate every figure of the paper's evaluation.

Each module reproduces one figure (see EXPERIMENTS.md for the figure →
module mapping) and can be run from the command line
(``python -m repro.experiments fig4 --jobs 8``), from the pytest benchmarks
in ``benchmarks/``, or programmatically via its ``run`` function.

Execution goes through the parallel orchestration layer in
:mod:`repro.parallel.runner`: every figure decomposes into independent,
deterministically seeded simulation tasks that fan out across worker
processes and are cached on disk keyed by a content hash of the task.
The supported programmatic entry surface is the :mod:`repro.api` facade.
"""

from . import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
    fig7_resilience,
    fig8_mac_study,
)
from ..parallel.runner import ExperimentRunner, SimulationTask
from .common import FIDELITIES, Fidelity, get_fidelity


def __getattr__(name):
    # ``repro.experiments.runner`` stays importable as an attribute of the
    # package, but resolving it goes through the deprecation shim (and its
    # one-time warning) instead of being imported eagerly above.  Resolved
    # via importlib: a ``from . import runner`` here would re-enter this
    # function through the import system's own hasattr probe.
    if name == "runner":
        import importlib

        return importlib.import_module(".runner", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ExperimentRunner",
    "FIDELITIES",
    "Fidelity",
    "SimulationTask",
    "fig2_uniform",
    "fig3_latency",
    "fig4_disintegration",
    "fig5_memory_traffic",
    "fig6_applications",
    "fig7_resilience",
    "fig8_mac_study",
    "get_fidelity",
    "runner",
]
