"""Allow ``python -m repro.experiments <figure>``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
