"""Command-line entry point for the figure-reproduction experiments.

Usage::

    python -m repro.experiments fig2 [--fidelity fast|default|paper]
    python -m repro.experiments all  [--fidelity fast|default|paper]

or, after installation, ``repro-experiments fig3 --fidelity paper``.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict, List, Optional, Sequence

from . import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
)

#: Experiment name -> (description, runner) registry.
EXPERIMENTS: Dict[str, Callable[[str], str]] = {
    "fig2": fig2_uniform.main,
    "fig3": fig3_latency.main,
    "fig4": fig4_disintegration.main,
    "fig5": fig5_memory_traffic.main,
    "fig6": fig6_applications.main,
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of the SOCC 2017 wireless "
            "multichip interconnection paper."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure to regenerate (or 'all')",
    )
    parser.add_argument(
        "--fidelity",
        choices=("fast", "default", "paper"),
        default="default",
        help="run length / sweep resolution (default: default)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiment(s) and print their reports."""
    args = build_parser().parse_args(argv)
    if args.experiment == "all":
        names: List[str] = sorted(EXPERIMENTS)
    else:
        names = [args.experiment]
    for name in names:
        EXPERIMENTS[name](args.fidelity)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
