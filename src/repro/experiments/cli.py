"""Command-line entry point for the figure-reproduction experiments.

Usage::

    python -m repro.experiments fig2 [--fidelity fast|default|paper]
                                     [--jobs N] [--cache-dir DIR] [--no-cache]
                                     [--faults SCENARIO] [--fault-rate R]
                                     [--engine scalar|vector] [--batch-lanes N]
                                     [--profile]
    python -m repro.experiments fig7 [--faults random-links] [--jobs N]
    python -m repro.experiments fig8 [--mac token] [--jobs N]
    python -m repro.experiments all  [--fidelity fast|default|paper] [--jobs N]
    python -m repro.experiments --scenario examples/scenario.yaml [--jobs N]
    python -m repro.experiments --scenario fig2 --fidelity fast

or, after installation, ``repro-experiments fig3 --fidelity paper --jobs 8``.

Every experiment decomposes into independent, deterministically seeded
simulation tasks (architecture × load point × application).  ``--jobs``
fans those tasks out across worker processes — results are bit-identical
at any job count — and each task's result is cached as JSON under
``--cache-dir`` (keyed by a content hash of the task), so re-runs only
simulate what is missing.  See EXPERIMENTS.md for details.
"""

from __future__ import annotations

import argparse
from dataclasses import replace
from typing import Callable, Dict, List, Optional, Sequence

from ..faults.scenarios import available_fault_scenarios
from ..noc.engine import ENGINES
from ..traffic.registry import available_patterns
from ..wireless.mac.registry import available_macs
from . import (
    fig2_uniform,
    fig3_latency,
    fig4_disintegration,
    fig5_memory_traffic,
    fig6_applications,
    fig7_resilience,
    fig8_mac_study,
)
from ..parallel.runner import DEFAULT_CACHE_DIR, ExperimentRunner

#: Experiment name -> runner registry.  Every entry accepts
#: ``(fidelity, runner, pattern)`` — plus ``faults`` / ``fault_rate`` for
#: the fault-capable experiments and ``mac`` for the MAC-capable ones —
#: and returns the formatted report text.
EXPERIMENTS: Dict[str, Callable[..., str]] = {
    "fig2": fig2_uniform.main,
    "fig3": fig3_latency.main,
    "fig4": fig4_disintegration.main,
    "fig5": fig5_memory_traffic.main,
    "fig6": fig6_applications.main,
    "fig7": fig7_resilience.main,
    "fig8": fig8_mac_study.main,
}

#: Experiments whose synthetic workload can be swapped via ``--pattern``
#: (fig5 sweeps the uniform memory mix, fig6 runs application traffic).
PATTERN_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig7", "fig8")

#: Experiments that accept a fault scenario via ``--faults`` (fig7 always
#: injects: it *is* the resilience sweep and defaults to random-links).
FAULT_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig7")

#: Experiments that accept a wireless MAC override via ``--mac`` (fig8
#: sweeps every registered MAC unless the flag pins one).
MAC_EXPERIMENTS = ("fig2", "fig3", "fig4", "fig8")

#: Severity used when ``--faults`` is given without ``--fault-rate``.
DEFAULT_FAULT_RATE = 0.1


def build_parser() -> argparse.ArgumentParser:
    """The argument parser of the experiments CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Regenerate the evaluation figures of the SOCC 2017 wireless "
            "multichip interconnection paper.  Each figure is decomposed "
            "into independent simulation tasks that run in parallel "
            "(--jobs) and are cached on disk (--cache-dir), so repeated "
            "runs skip completed work."
        ),
        epilog=(
            "Examples:  repro-experiments fig2 --fidelity fast --jobs 4   |   "
            "repro-experiments all --fidelity paper --jobs 8 "
            "--cache-dir /tmp/repro-cache"
        ),
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        choices=sorted(EXPERIMENTS) + ["all"],
        help=(
            "which figure to regenerate (or 'all' for every figure); "
            "omit when running a declarative --scenario document"
        ),
    )
    parser.add_argument(
        "--scenario",
        default=None,
        metavar="FILE",
        help=(
            "run a declarative scenario document (YAML/JSON; see "
            "EXPERIMENTS.md) instead of a named figure — or a built-in "
            "scenario name (fig2..fig8) to run that figure's spec form; "
            "compiled tasks share the result cache with the flag-form "
            "figures bit for bit"
        ),
    )
    parser.add_argument(
        "--fidelity",
        choices=("fast", "default", "paper"),
        default=None,
        help=(
            "run length / sweep resolution: 'fast' for smoke tests, "
            "'default' for the EXPERIMENTS.md numbers, 'paper' for the "
            "paper's full 10k-cycle scale (default: default; with "
            "--scenario it overrides the document's own level)"
        ),
    )
    parser.add_argument(
        "--pattern",
        choices=available_patterns(),
        default="uniform",
        help=(
            "synthetic traffic pattern for the load-sweep figures "
            "(fig2/fig3/fig4); constructed by name from the traffic "
            "registry (default: uniform)"
        ),
    )
    parser.add_argument(
        "--mac",
        choices=available_macs(),
        default=None,
        help=(
            "wireless MAC protocol override for the MAC-capable "
            "experiments (fig2/fig3/fig4/fig8); constructed by name from "
            "the MAC registry (default: the configuration's protocol; "
            "fig8 sweeps every registered MAC unless this pins one)"
        ),
    )
    parser.add_argument(
        "--faults",
        choices=available_fault_scenarios(),
        default="none",
        help=(
            "fault scenario injected into every simulation task of the "
            "fault-capable experiments (fig2/fig3/fig4/fig7); constructed "
            "by name from the fault-scenario registry (default: none; "
            "fig7 promotes 'none' to 'random-links')"
        ),
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "fault severity in [0, 1] for --faults (default: "
            f"{DEFAULT_FAULT_RATE} when --faults is given; fig7 sweeps the "
            "fidelity's whole fault-rate grid unless this pins one rate)"
        ),
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for independent simulation tasks; results "
            "are bit-identical for any value (default: 1, serial)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        metavar="DIR",
        help=(
            "directory of the per-task JSON result cache; completed tasks "
            f"found there are not re-simulated (default: {DEFAULT_CACHE_DIR})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache: neither read nor write cached tasks",
    )
    parser.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default="scalar",
        help=(
            "kernel execution path: 'scalar' is the pure-Python reference "
            "loop, 'vector' the NumPy SoA fast path (bit-identical results; "
            "wireless or faulted runs fall back to scalar transparently). "
            "The result cache is shared between engines (default: scalar)"
        ),
    )
    parser.add_argument(
        "--batch-lanes",
        type=int,
        default=1,
        metavar="N",
        help=(
            "with --engine vector, fuse up to N compatible uncached tasks "
            "(same architecture, wired, no faults) into one lane-batched "
            "co-simulation per worker; results and cache keys are identical "
            "to solo runs (default: 1, no batching)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "time each kernel phase in every simulated task and print an "
            "aggregated per-phase wall-clock table after the experiment; "
            "profiled runs bypass the result cache so the timings always "
            "reflect real simulation work"
        ),
    )
    parser.add_argument(
        "--service",
        default=None,
        metavar="SOCKET",
        help=(
            "execute on the sweep-service daemon listening on this Unix "
            "socket (start one with 'python -m repro.service --socket "
            "SOCKET'); tasks are deduped against the daemon's shared "
            "cache and coalesced with other clients' in-flight work. "
            "Local execution flags (--jobs/--cache-dir/--engine/--profile) "
            "do not apply: the daemon owns those settings"
        ),
    )
    parser.add_argument(
        "--quiet",
        "-q",
        action="store_true",
        help="suppress per-task progress output on stderr",
    )
    return parser


def runner_from_args(args: argparse.Namespace) -> ExperimentRunner:
    """Build the experiment runner described by parsed CLI arguments.

    Goes through the :func:`repro.api.make_runner` facade — the same
    constructor every other entry point (tests, fuzzer, sweep service)
    uses — so CLI runs cannot drift from programmatic ones.  With
    ``--service`` the returned runner ships its batches to the daemon
    instead of executing locally.
    """
    if getattr(args, "service", None):
        if getattr(args, "profile", False):
            raise ValueError(
                "--profile does not combine with --service: per-phase "
                "timings cannot cross the daemon socket"
            )
        from ..service.client import ServiceRunner

        return ServiceRunner(
            socket_path=args.service, show_progress=not args.quiet
        )
    from ..api import make_runner

    return make_runner(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        use_cache=not args.no_cache,
        show_progress=not args.quiet,
        profile=getattr(args, "profile", False),
        engine=getattr(args, "engine", "scalar"),
        batch_lanes=getattr(args, "batch_lanes", 1),
    )


def _run_scenario(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    runner: ExperimentRunner,
) -> int:
    """Run a declarative scenario document (or a built-in spec by name).

    The workload lives in the document, so the per-figure workload flags
    are rejected here; ``--fidelity`` alone carries over and overrides the
    document's own level.  Imported lazily so plain figure runs never pay
    for (or depend on) the scenario layer.
    """
    from ..scenario import (
        BUILTIN_SCENARIOS,
        ScenarioError,
        builtin_scenario,
        format_scenario_report,
        load_scenario,
        run_scenario,
    )

    if args.experiment is not None:
        parser.error("give an experiment name or --scenario, not both")
    for flag, given in (
        ("--pattern", args.pattern != "uniform"),
        ("--mac", args.mac is not None),
        ("--faults", args.faults != "none"),
        ("--fault-rate", args.fault_rate is not None),
    ):
        if given:
            parser.error(
                f"{flag} does not combine with --scenario: the scenario "
                "document itself declares the workload"
            )
    try:
        if args.scenario in BUILTIN_SCENARIOS:
            spec = builtin_scenario(args.scenario, args.fidelity or "default")
        else:
            spec = load_scenario(args.scenario)
            if args.fidelity is not None:
                spec = replace(spec, fidelity_level=args.fidelity)
    except ScenarioError as error:
        parser.error(f"invalid scenario: {error}")
    except OSError as error:
        parser.error(f"cannot read scenario {args.scenario!r}: {error}")
    points = run_scenario(spec, runner)
    print(format_scenario_report(spec, points))
    print()
    if args.profile:
        print("[runner] per-phase kernel wall clock (all simulated tasks):")
        print(runner.phase_report())
        print()
    print(f"[runner] {runner.summary_line()}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the requested experiment(s) and print their reports."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        runner = runner_from_args(args)
    except OSError as error:
        parser.error(f"cannot use cache directory {args.cache_dir!r}: {error}")
    except ValueError as error:
        parser.error(str(error))
    if args.fault_rate is not None and not 0.0 <= args.fault_rate <= 1.0:
        parser.error("--fault-rate must be in [0, 1]")
    if (
        args.fault_rate is not None
        and args.faults == "none"
        and args.experiment not in ("fig7", "all")
    ):
        # Without a scenario the rate would be silently ignored (only fig7
        # promotes 'none' to its default scenario).
        parser.error("--fault-rate requires --faults (e.g. --faults random-links)")
    if args.scenario is not None:
        return _run_scenario(parser, args, runner)
    if args.experiment is None:
        parser.error("an experiment name (or --scenario FILE) is required")
    if args.experiment == "all":
        names: List[str] = sorted(EXPERIMENTS)
        if args.pattern != "uniform":
            names = [n for n in names if n in PATTERN_EXPERIMENTS]
            print(
                f"[runner] pattern {args.pattern!r}: running "
                f"{', '.join(names)} (fig5/fig6 are uniform/application-only)"
            )
        if args.faults != "none":
            names = [n for n in names if n in FAULT_EXPERIMENTS]
            print(
                f"[runner] faults {args.faults!r}: running "
                f"{', '.join(names)} (fig5/fig6 run on pristine fabrics)"
            )
        if args.mac is not None:
            names = [n for n in names if n in MAC_EXPERIMENTS]
            print(
                f"[runner] mac {args.mac!r}: running "
                f"{', '.join(names)} (the rest have no MAC to swap)"
            )
    else:
        names = [args.experiment]
        if args.pattern != "uniform" and args.experiment not in PATTERN_EXPERIMENTS:
            parser.error(
                f"--pattern only applies to {', '.join(PATTERN_EXPERIMENTS)}; "
                f"{args.experiment} has a fixed workload"
            )
        if args.faults != "none" and args.experiment not in FAULT_EXPERIMENTS:
            parser.error(
                f"--faults only applies to {', '.join(FAULT_EXPERIMENTS)}; "
                f"{args.experiment} runs on a pristine fabric"
            )
        if args.mac is not None and args.experiment not in MAC_EXPERIMENTS:
            parser.error(
                f"--mac only applies to {', '.join(MAC_EXPERIMENTS)}; "
                f"{args.experiment} has no wireless MAC to swap"
            )
    for name in names:
        kwargs = {"pattern": args.pattern}
        if name in MAC_EXPERIMENTS and args.mac is not None:
            kwargs["mac"] = args.mac
        if name == "fig7":
            # fig7 *is* the resilience sweep: it promotes 'none' to its
            # default scenario and sweeps the fault-rate grid unless one
            # rate is pinned on the command line.
            kwargs["faults"] = args.faults
            kwargs["fault_rate"] = args.fault_rate
        elif name in FAULT_EXPERIMENTS and args.faults != "none":
            kwargs["faults"] = args.faults
            kwargs["fault_rate"] = (
                args.fault_rate if args.fault_rate is not None else DEFAULT_FAULT_RATE
            )
        EXPERIMENTS[name](args.fidelity or "default", runner, **kwargs)
        print()
    if args.profile:
        print("[runner] per-phase kernel wall clock (all simulated tasks):")
        print(runner.phase_report())
        print()
    print(f"[runner] {runner.summary_line()}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
