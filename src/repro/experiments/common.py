"""Shared plumbing for the figure-reproduction experiments.

Every experiment can run at three fidelity levels:

* ``fast`` — small cycle counts and coarse load grids; used by the test
  suite and the pytest benchmarks so the whole harness runs on a laptop in
  minutes.
* ``default`` — the level used for the numbers quoted in EXPERIMENTS.md.
* ``paper`` — the paper's own scale (10 000 iterations, the first thousand
  discarded as transients, the full load grid and application set).

The level only changes run length and sweep resolution, never the system
parameters, so results differ in noise, not in shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.comparison import ArchitectureMetrics
from ..core.config import Architecture, SystemConfig
from ..metrics.saturation import SweepSummary
from ..noc.engine import SimulationConfig
from ..parallel.runner import ExperimentRunner


@dataclass(frozen=True)
class Fidelity:
    """Run-length and sweep-resolution settings of one fidelity level."""

    name: str
    cycles: int
    warmup_cycles: int
    load_points: Tuple[float, ...]
    applications: Tuple[str, ...]
    #: Global scale on the application profiles' injection rates, chosen so
    #: the steady-state application traffic stays below network saturation
    #: (the paper notes "the interconnection network is not saturated in the
    #: steady-state" for Fig. 6).
    application_rate_scale: float = 0.25
    #: Fault severities swept by the fig7 resilience experiment (0.0 is the
    #: pristine baseline every faulted point is compared against).
    fault_rates: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)
    #: Orthogonal wireless channel counts swept by the fig8 MAC study.
    channel_counts: Tuple[int, ...] = (1, 2, 4)
    seed: int = 7

    @property
    def simulation_config(self) -> SimulationConfig:
        """Simulation configuration at this fidelity."""
        return SimulationConfig(cycles=self.cycles, warmup_cycles=self.warmup_cycles)


_FAST = Fidelity(
    name="fast",
    cycles=1200,
    warmup_cycles=200,
    load_points=(0.0005, 0.001, 0.0015, 0.002),
    applications=("blackscholes", "canneal", "radix"),
    fault_rates=(0.0, 0.15, 0.3),
    channel_counts=(1, 2),
)

_DEFAULT = Fidelity(
    name="default",
    cycles=2500,
    warmup_cycles=400,
    load_points=(0.0002, 0.0005, 0.001, 0.0015, 0.002, 0.003, 0.004),
    applications=(
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "fluidanimate",
        "fft",
        "lu",
        "radix",
        "water",
    ),
)

_PAPER = Fidelity(
    name="paper",
    cycles=10000,
    warmup_cycles=1000,
    load_points=(0.0001, 0.0002, 0.0005, 0.001, 0.0015, 0.002, 0.003, 0.005, 0.01),
    applications=(
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "fluidanimate",
        "swaptions",
        "fft",
        "lu",
        "radix",
        "water",
        "barnes",
    ),
    fault_rates=(0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5),
    channel_counts=(1, 2, 4, 8),
)

FIDELITIES: Dict[str, Fidelity] = {f.name: f for f in (_FAST, _DEFAULT, _PAPER)}


def get_fidelity(name: str) -> Fidelity:
    """Look up a fidelity level by name ("fast", "default" or "paper")."""
    try:
        return FIDELITIES[name]
    except KeyError:
        known = ", ".join(sorted(FIDELITIES))
        raise KeyError(f"unknown fidelity {name!r}; known: {known}") from None


def sweep_architecture(
    config: SystemConfig,
    fidelity: Fidelity,
    memory_access_fraction: float = 0.2,
    loads: Optional[Sequence[float]] = None,
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
) -> Tuple[ArchitectureMetrics, SweepSummary]:
    """Load-sweep one architecture and summarise it at sustainable saturation.

    Goes through the task runner (serial, uncached by default), so passing a
    configured :class:`~repro.parallel.runner.ExperimentRunner` gets
    parallel execution and caching for free.  ``pattern`` selects any
    registered synthetic traffic pattern (default: uniform random traffic).
    """
    active = runner if runner is not None else ExperimentRunner()
    sweep = active.run_sweep(
        config,
        fidelity,
        memory_access_fraction=memory_access_fraction,
        loads=loads,
        pattern=pattern,
    )
    metrics = ArchitectureMetrics.from_sweep_summary(config.name, sweep)
    return metrics, sweep


def architectures_for_comparison() -> List[Architecture]:
    """All three architectures, in the order the paper's figures list them."""
    return [Architecture.SUBSTRATE, Architecture.INTERPOSER, Architecture.WIRELESS]


def faults_suffix(faults: str, fault_rate: float) -> str:
    """Workload-heading suffix describing the fault setting (\"\" if pristine).

    Shared by every fault-capable figure's ``format_report`` so the fault
    annotation renders identically everywhere.
    """
    if faults == "none":
        return ""
    return f", faults={faults}@{fault_rate:g}"
