"""Fig. 2 — peak bandwidth per core and average packet energy, uniform traffic.

Reproduces the bar chart of Section IV-B: the 64-core 4C4M system under
uniform random traffic with a 20 % memory-access proportion, evaluated at
network saturation for the substrate, interposer and wireless architectures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.comparison import ArchitectureMetrics
from ..core.config import Architecture, SystemConfig
from ..metrics.report import format_heading, format_table
from .common import architectures_for_comparison, faults_suffix, get_fidelity
from ..parallel.runner import ExperimentRunner, sweep_tasks

#: Memory-access proportion used for Fig. 2 ("considered to be 20%").
MEMORY_ACCESS_FRACTION = 0.2


@dataclass
class Fig2Result:
    """Per-architecture saturation metrics of the 4C4M system."""

    fidelity: str
    memory_access_fraction: float
    pattern: str = "uniform"
    faults: str = "none"
    fault_rate: float = 0.0
    mac: str = ""
    metrics: Dict[Architecture, ArchitectureMetrics] = field(default_factory=dict)

    def rows(self) -> List[List[object]]:
        """Table rows in the order the paper's figure lists the bars."""
        ordered = []
        for architecture in architectures_for_comparison():
            metric = self.metrics[architecture]
            ordered.append(
                [
                    metric.name,
                    metric.bandwidth_gbps_per_core,
                    metric.average_packet_energy_nj,
                ]
            )
        return ordered

    def wireless_wins_bandwidth(self) -> bool:
        """Whether the wireless system has the highest bandwidth per core."""
        wireless = self.metrics[Architecture.WIRELESS].bandwidth_gbps_per_core
        return all(
            wireless >= m.bandwidth_gbps_per_core
            for a, m in self.metrics.items()
            if a != Architecture.WIRELESS
        )

    def wireless_wins_energy(self) -> bool:
        """Whether the wireless system has the lowest average packet energy."""
        wireless = self.metrics[Architecture.WIRELESS].average_packet_energy_nj
        return all(
            wireless <= m.average_packet_energy_nj
            for a, m in self.metrics.items()
            if a != Architecture.WIRELESS
        )


def run(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> Fig2Result:
    """Run the Fig. 2 experiment at the requested fidelity.

    All load points of all three architectures are submitted to the runner
    as one batch of independent tasks, so the whole figure parallelises
    across ``runner.jobs`` worker processes.  ``pattern`` swaps the
    synthetic workload for any registered traffic pattern (transpose,
    bit-reversal, bursty-hotspot, ...), keeping the same sweep and
    saturation analysis; ``faults`` / ``fault_rate`` run the whole figure
    on a degraded fabric (any registered fault scenario); ``mac`` pins the
    wireless architecture's MAC protocol by registered name (e.g. the
    token baseline instead of the paper's control-packet MAC).
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    result = Fig2Result(
        fidelity=level.name,
        memory_access_fraction=MEMORY_ACCESS_FRACTION,
        pattern=pattern,
        faults=faults,
        fault_rate=fault_rate,
        mac=mac,
    )
    configs = {
        architecture: SystemConfig(architecture=architecture)
        for architecture in architectures_for_comparison()
    }
    sweeps = active.run_sweep_groups(
        {
            architecture: sweep_tasks(
                config,
                level,
                memory_access_fraction=MEMORY_ACCESS_FRACTION,
                pattern=pattern,
                faults=faults,
                fault_rate=fault_rate,
                mac=mac,
            )
            for architecture, config in configs.items()
        }
    )
    for architecture, sweep in sweeps.items():
        result.metrics[architecture] = ArchitectureMetrics.from_sweep_summary(
            configs[architecture].name, sweep
        )
    return result


def format_report(result: Fig2Result) -> str:
    """Text report with the same rows as the paper's Fig. 2."""
    table = format_table(
        ["Configuration", "Peak bandwidth/core (Gbps)", "Avg packet energy (nJ)"],
        result.rows(),
    )
    if result.pattern == "uniform":
        workload = (
            "uniform random traffic, 4C4M, "
            f"{int(result.memory_access_fraction * 100)}% memory access"
        )
    else:
        workload = f"{result.pattern} traffic, 4C4M"
    if result.mac:
        workload += f", mac={result.mac}"
    workload += faults_suffix(result.faults, result.fault_rate)
    heading = format_heading(
        f"Fig. 2 - {workload} [fidelity={result.fidelity}]"
    )
    return f"{heading}\n{table}"


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks)."""
    report = format_report(
        run(
            fidelity,
            runner=runner,
            pattern=pattern,
            faults=faults,
            fault_rate=fault_rate,
            mac=mac,
        )
    )
    print(report)
    return report
