"""Fig. 3 — average packet latency versus injection load, uniform traffic.

Reproduces the latency curves of Section IV-B for the 4C4M substrate,
interposer and wireless systems: latency rises with offered load and the
wireless system saturates last / sits lowest because its average path is the
shortest ("the wireless multichip has the lowest latency ... because of the
shorter average path lengths due to WIs located inside the chips").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Architecture, SystemConfig
from ..metrics.report import format_heading, format_table
from ..metrics.saturation import SweepSummary
from .common import architectures_for_comparison, faults_suffix, get_fidelity
from ..parallel.runner import ExperimentRunner, sweep_tasks

#: Memory-access proportion used for Fig. 3 (same as Fig. 2).
MEMORY_ACCESS_FRACTION = 0.2


@dataclass
class Fig3Result:
    """Latency-versus-load curves for the three 4C4M architectures."""

    fidelity: str
    loads: List[float]
    pattern: str = "uniform"
    faults: str = "none"
    fault_rate: float = 0.0
    mac: str = ""
    sweeps: Dict[Architecture, SweepSummary] = field(default_factory=dict)

    def curve(self, architecture: Architecture) -> List[Tuple[float, float]]:
        """(offered load, average latency) series for one architecture."""
        return self.sweeps[architecture].latency_curve()

    def zero_load_latency(self, architecture: Architecture) -> float:
        """Latency of the lowest-load point for one architecture."""
        return self.sweeps[architecture].zero_load_latency_cycles()

    def rows(self) -> List[List[object]]:
        """One row per load with the three architectures' latencies."""
        rows = []
        ordered = architectures_for_comparison()
        curves = {a: dict(self.curve(a)) for a in ordered}
        for load in self.loads:
            rows.append([load] + [curves[a].get(load, float("nan")) for a in ordered])
        return rows

    def wireless_has_lowest_zero_load_latency(self) -> bool:
        """Whether the wireless system has the lowest low-load latency."""
        wireless = self.zero_load_latency(Architecture.WIRELESS)
        return all(
            wireless <= self.zero_load_latency(a)
            for a in self.sweeps
            if a != Architecture.WIRELESS
        )


def run(
    fidelity: str = "default",
    loads: Optional[Sequence[float]] = None,
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> Fig3Result:
    """Run the Fig. 3 experiment at the requested fidelity.

    Every (architecture, load) pair is an independent task; the whole
    figure is submitted to the runner as one batch.  ``pattern`` swaps the
    synthetic workload for any registered traffic pattern; ``faults`` /
    ``fault_rate`` run the curves on a degraded fabric.
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    selected = list(loads) if loads is not None else list(level.load_points)
    result = Fig3Result(
        fidelity=level.name,
        loads=selected,
        pattern=pattern,
        faults=faults,
        fault_rate=fault_rate,
        mac=mac,
    )
    result.sweeps = active.run_sweep_groups(
        {
            architecture: sweep_tasks(
                SystemConfig(architecture=architecture),
                level,
                memory_access_fraction=MEMORY_ACCESS_FRACTION,
                loads=selected,
                pattern=pattern,
                faults=faults,
                fault_rate=fault_rate,
                mac=mac,
            )
            for architecture in architectures_for_comparison()
        }
    )
    return result


def format_report(result: Fig3Result) -> str:
    """Text report with the latency-vs-load series of Fig. 3."""
    headers = ["Injection load (pkt/core/cycle)"] + [
        SystemConfig(architecture=a).name for a in architectures_for_comparison()
    ]
    table = format_table(headers, result.rows())
    workload = "" if result.pattern == "uniform" else f", {result.pattern} traffic"
    if result.mac:
        workload += f", mac={result.mac}"
    workload += faults_suffix(result.faults, result.fault_rate)
    heading = format_heading(
        f"Fig. 3 - average packet latency (cycles) vs injection load, 4C4M{workload} "
        f"[fidelity={result.fidelity}]"
    )
    return f"{heading}\n{table}"


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks)."""
    report = format_report(
        run(
            fidelity,
            runner=runner,
            pattern=pattern,
            faults=faults,
            fault_rate=fault_rate,
            mac=mac,
        )
    )
    print(report)
    return report
