"""Fig. 4 — gains versus chip-to-chip traffic (disintegration study).

Reproduces Section IV-C's first experiment: the 64-core system is kept at a
constant total core count, memory capacity and combined processing area
while being disintegrated into 1, 4 or 8 chips (1C4M, 4C4M, 8C4M).  The
off-chip traffic proportion rises accordingly (20 %, 80 %, 90 % at a 20 %
memory-access ratio) and the percentage gain in saturation bandwidth and
packet energy of the wireless system over the interposer baseline is
reported for each configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.comparison import ArchitectureMetrics, GainReport, compare
from ..core.config import Architecture, SystemConfig, paper_1c4m, paper_4c4m, paper_8c4m
from ..metrics.report import format_heading, format_percentage, format_table
from .common import faults_suffix, get_fidelity
from ..parallel.runner import ExperimentRunner, sweep_tasks

#: Memory-access proportion of the disintegration study.
MEMORY_ACCESS_FRACTION = 0.2

#: The configurations of the study with the off-chip traffic share the paper
#: quotes for them.
CONFIGURATIONS: Tuple[Tuple[str, int], ...] = (
    ("1C4M", 20),
    ("4C4M", 80),
    ("8C4M", 90),
)


def _config_for(label: str, architecture: Architecture) -> SystemConfig:
    factories = {"1C4M": paper_1c4m, "4C4M": paper_4c4m, "8C4M": paper_8c4m}
    return factories[label](architecture)


@dataclass
class Fig4Result:
    """Wireless-versus-interposer gains for each disintegration level."""

    fidelity: str
    pattern: str = "uniform"
    faults: str = "none"
    fault_rate: float = 0.0
    mac: str = ""
    gains: Dict[str, GainReport] = field(default_factory=dict)
    metrics: Dict[str, Dict[Architecture, ArchitectureMetrics]] = field(
        default_factory=dict
    )

    def rows(self) -> List[List[object]]:
        """Table rows matching the paper's bar groups."""
        rows = []
        for label, offchip_pct in CONFIGURATIONS:
            gain = self.gains[label]
            rows.append(
                [
                    f"{offchip_pct}% ({label})",
                    format_percentage(gain.bandwidth_gain_pct),
                    format_percentage(gain.energy_gain_pct),
                ]
            )
        return rows

    def energy_gains_all_positive(self) -> bool:
        """Whether the wireless system saves energy at every level."""
        return all(g.energy_gain_pct > 0 for g in self.gains.values())


def run(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> Fig4Result:
    """Run the Fig. 4 experiment at the requested fidelity.

    All (disintegration level × architecture × load point) tasks are
    submitted to the runner as one batch.  ``pattern`` swaps the synthetic
    workload for any registered traffic pattern; ``faults`` /
    ``fault_rate`` run the study on a degraded fabric.
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    result = Fig4Result(
        fidelity=level.name,
        pattern=pattern,
        faults=faults,
        fault_rate=fault_rate,
        mac=mac,
    )
    configs = {
        (label, architecture): _config_for(label, architecture)
        for label, _ in CONFIGURATIONS
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS)
    }
    sweeps = active.run_sweep_groups(
        {
            key: sweep_tasks(
                config,
                level,
                memory_access_fraction=MEMORY_ACCESS_FRACTION,
                pattern=pattern,
                faults=faults,
                fault_rate=fault_rate,
                mac=mac,
            )
            for key, config in configs.items()
        }
    )
    for label, _ in CONFIGURATIONS:
        per_arch: Dict[Architecture, ArchitectureMetrics] = {}
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS):
            key = (label, architecture)
            per_arch[architecture] = ArchitectureMetrics.from_sweep_summary(
                configs[key].name, sweeps[key]
            )
        result.metrics[label] = per_arch
        result.gains[label] = compare(
            per_arch[Architecture.WIRELESS], per_arch[Architecture.INTERPOSER]
        )
    return result


def format_report(result: Fig4Result) -> str:
    """Text report with the Fig. 4 gain bars."""
    table = format_table(
        ["% Chip-to-chip traffic (config)", "% gain in bandwidth", "% gain in packet energy"],
        result.rows(),
    )
    workload = "" if result.pattern == "uniform" else f", {result.pattern} traffic"
    if result.mac:
        workload += f", mac={result.mac}"
    workload += faults_suffix(result.faults, result.fault_rate)
    heading = format_heading(
        f"Fig. 4 - wireless vs interposer gains under disintegration{workload} "
        f"[fidelity={result.fidelity}]"
    )
    return f"{heading}\n{table}"


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks)."""
    report = format_report(
        run(
            fidelity,
            runner=runner,
            pattern=pattern,
            faults=faults,
            fault_rate=fault_rate,
            mac=mac,
        )
    )
    print(report)
    return report
