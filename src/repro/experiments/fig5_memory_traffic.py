"""Fig. 5 — gains versus memory-access proportion.

Reproduces Section IV-C's second experiment: the 4C4M system is evaluated
while the fraction of traffic addressed to the DRAM stacks is swept from
20 % to 80 %; the percentage gain in saturation bandwidth and packet energy
of the wireless system over the interposer baseline is reported at each
point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.comparison import ArchitectureMetrics, GainReport, compare
from ..core.config import Architecture, SystemConfig
from ..metrics.report import format_heading, format_percentage, format_table
from .common import get_fidelity
from ..parallel.runner import ExperimentRunner, sweep_tasks

#: Memory-access proportions swept by the paper.
MEMORY_FRACTIONS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)


@dataclass
class Fig5Result:
    """Wireless-versus-interposer gains at each memory-access proportion."""

    fidelity: str
    gains: Dict[float, GainReport] = field(default_factory=dict)
    metrics: Dict[float, Dict[Architecture, ArchitectureMetrics]] = field(
        default_factory=dict
    )

    def rows(self) -> List[List[object]]:
        """Table rows matching the paper's bar groups."""
        rows = []
        for fraction in sorted(self.gains):
            gain = self.gains[fraction]
            rows.append(
                [
                    f"{int(fraction * 100)}%",
                    format_percentage(gain.bandwidth_gain_pct),
                    format_percentage(gain.energy_gain_pct),
                ]
            )
        return rows

    def energy_gains_all_positive(self) -> bool:
        """Whether the wireless system saves energy at every memory fraction."""
        return all(g.energy_gain_pct > 0 for g in self.gains.values())

    def bandwidth_gain_flattens(self) -> bool:
        """Whether the bandwidth gain does not grow as memory traffic rises.

        The paper observes the relative gains *decrease* (and asymptote) as
        the interposer's memory-side bandwidth becomes more useful.
        """
        fractions = sorted(self.gains)
        first = self.gains[fractions[0]].bandwidth_gain_pct
        last = self.gains[fractions[-1]].bandwidth_gain_pct
        return last <= first + 5.0


def run(
    fidelity: str = "default",
    memory_fractions: Tuple[float, ...] = MEMORY_FRACTIONS,
    runner: Optional[ExperimentRunner] = None,
) -> Fig5Result:
    """Run the Fig. 5 experiment at the requested fidelity.

    All (memory fraction × architecture × load point) tasks are submitted
    to the runner as one batch.
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    result = Fig5Result(fidelity=level.name)
    configs = {
        (fraction, architecture): SystemConfig(architecture=architecture)
        for fraction in memory_fractions
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS)
    }
    sweeps = active.run_sweep_groups(
        {
            (fraction, architecture): sweep_tasks(
                config, level, memory_access_fraction=fraction
            )
            for (fraction, architecture), config in configs.items()
        }
    )
    for fraction in memory_fractions:
        per_arch: Dict[Architecture, ArchitectureMetrics] = {}
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS):
            key = (fraction, architecture)
            per_arch[architecture] = ArchitectureMetrics.from_sweep_summary(
                configs[key].name, sweeps[key]
            )
        result.metrics[fraction] = per_arch
        result.gains[fraction] = compare(
            per_arch[Architecture.WIRELESS], per_arch[Architecture.INTERPOSER]
        )
    return result


def format_report(result: Fig5Result) -> str:
    """Text report with the Fig. 5 gain bars."""
    table = format_table(
        ["% Memory access", "% gain in bandwidth", "% gain in packet energy"],
        result.rows(),
    )
    heading = format_heading(
        "Fig. 5 - wireless vs interposer gains while varying memory accesses, 4C4M "
        f"[fidelity={result.fidelity}]"
    )
    return f"{heading}\n{table}"


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks).

    The memory-fraction sweep is only meaningful for uniform traffic with a
    memory-access share, so a non-uniform ``--pattern`` is declined loudly
    rather than silently ignored.
    """
    if pattern != "uniform":
        raise ValueError(
            "fig5 sweeps the memory-access fraction of uniform traffic; "
            f"--pattern {pattern} does not apply (use fig2/fig3/fig4)"
        )
    report = format_report(run(fidelity, runner=runner))
    print(report)
    return report
