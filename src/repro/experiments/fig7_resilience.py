"""Fig. 7 — resilience: throughput, latency and energy versus fault rate.

This experiment goes beyond the paper: it sweeps the fault severity of one
named fault scenario (default: connectivity-preserving ``random-links``)
and reports how each interconnection architecture degrades.  Three systems
are compared:

* **mesh** — the single-chip 64-core mesh baseline (no inter-die links),
* **interposer** — the 4C4M interposer system,
* **wireless** — the 4C4M wireless system at a 1-WI-per-8-cores density,
  so every chip carries two WIs and a transceiver loss has an in-chip
  wireless fallback (at the paper's 1-per-16 density every WI is an
  articulation point and ``hub-transceiver-loss`` has nothing safe to
  kill).

Every (architecture × fault rate) pair is one independent task at a fixed
mid-range offered load, run through the parallel runner and the result
cache like every other figure; the ``rate = 0`` column is the pristine
baseline, bit-identical to a fault-free run of the same task.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..core.config import Architecture, SystemConfig, paper_4c4m
from ..faults.scenarios import DEFAULT_SCENARIO
from ..metrics.report import format_heading, format_table
from ..metrics.saturation import LoadPointSummary
from .common import get_fidelity
from ..parallel.runner import ExperimentRunner, uniform_task

#: Memory-access proportion (same as the fig2/fig3 uniform workload).
MEMORY_ACCESS_FRACTION = 0.2

#: Fixed offered load of every resilience point [packets/core/cycle]:
#: roughly half the mesh baseline's saturation load, so degradation shows
#: up as lost throughput/latency/energy rather than as a saturated network
#: drowning out the faults.
FIG7_LOAD = 0.001

#: WI density of the wireless system in this figure (see module docstring).
FIG7_CORES_PER_WI = 8


def fig7_systems() -> Dict[str, SystemConfig]:
    """The architectures of the resilience sweep, in report order."""
    return {
        "mesh": SystemConfig(
            architecture=Architecture.SUBSTRATE, num_chips=1, cores_per_chip=64
        ),
        "interposer": paper_4c4m(Architecture.INTERPOSER),
        "wireless": replace(
            paper_4c4m(Architecture.WIRELESS), cores_per_wi=FIG7_CORES_PER_WI
        ),
    }


@dataclass
class Fig7Result:
    """Per-architecture degradation curves over the fault-rate sweep."""

    fidelity: str
    scenario: str
    fault_rates: List[float]
    pattern: str = "uniform"
    load: float = FIG7_LOAD
    #: architecture label -> [(fault rate, point summary)] in rate order.
    curves: Dict[str, List[Tuple[float, LoadPointSummary]]] = field(
        default_factory=dict
    )

    def baseline(self, label: str) -> LoadPointSummary:
        """The pristine (lowest-rate) point of one architecture."""
        return self.curves[label][0][1]

    def throughput_retention(self, label: str) -> float:
        """Worst-case accepted-throughput fraction versus the baseline."""
        base = self.baseline(label).accepted_flits_per_core_per_cycle
        if base <= 0:
            return 1.0
        return min(
            point.accepted_flits_per_core_per_cycle / base
            for _, point in self.curves[label]
        )

    def rows(self) -> List[List[object]]:
        """One row per (architecture, fault rate) with the headline metrics."""
        rows = []
        for label, curve in self.curves.items():
            for rate, point in curve:
                rows.append(
                    [
                        label,
                        rate,
                        point.bandwidth_gbps_per_core,
                        point.average_latency_cycles,
                        point.system_packet_energy_nj,
                        point.delivery_ratio,
                        point.links_failed + point.transceivers_failed,
                        point.packets_rerouted,
                        point.packets_dropped_unroutable,
                    ]
                )
        return rows


def run(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = DEFAULT_SCENARIO,
    fault_rate: Optional[float] = None,
) -> Fig7Result:
    """Run the resilience sweep at the requested fidelity.

    ``faults`` selects the scenario to sweep (``none`` is promoted to the
    default scenario — a resilience sweep of a pristine fabric would be a
    flat line).  ``fault_rate`` restricts the sweep to the baseline plus
    that single severity; by default the fidelity's ``fault_rates`` grid is
    swept.  All (architecture × rate) tasks are one runner batch.
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    if faults in (None, "none"):
        faults = DEFAULT_SCENARIO
    if fault_rate is not None:
        rates = sorted({0.0, fault_rate})
    else:
        rates = sorted(set(level.fault_rates))
    systems = fig7_systems()

    tasks = {
        (label, rate): uniform_task(
            config,
            level,
            load=FIG7_LOAD,
            memory_access_fraction=MEMORY_ACCESS_FRACTION,
            pattern=pattern,
            faults=faults if rate > 0 else "none",
            fault_rate=rate,
        )
        for label, config in systems.items()
        for rate in rates
    }
    results = active.run(list(tasks.values()))

    result = Fig7Result(
        fidelity=level.name,
        scenario=faults,
        fault_rates=list(rates),
        pattern=pattern,
    )
    for label in systems:
        result.curves[label] = [
            (rate, results[tasks[(label, rate)]]) for rate in rates
        ]
    return result


def format_report(result: Fig7Result) -> str:
    """Text report: the degradation table plus per-architecture retention."""
    table = format_table(
        [
            "Architecture",
            "Fault rate",
            "BW/core (Gbps)",
            "Avg latency (cyc)",
            "Energy/pkt (nJ)",
            "Delivery ratio",
            "Components failed",
            "Rerouted",
            "Dropped",
        ],
        result.rows(),
    )
    workload = "" if result.pattern == "uniform" else f", {result.pattern} traffic"
    heading = format_heading(
        f"Fig. 7 - resilience under '{result.scenario}' faults{workload} "
        f"(load={result.load:g}) [fidelity={result.fidelity}]"
    )
    retention = "\n".join(
        f"  {label}: worst-case throughput retention "
        f"{result.throughput_retention(label):.1%}"
        for label in result.curves
    )
    return f"{heading}\n{table}\n{retention}"


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    faults: str = DEFAULT_SCENARIO,
    fault_rate: Optional[float] = None,
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks)."""
    report = format_report(
        run(fidelity, runner=runner, pattern=pattern, faults=faults, fault_rate=fault_rate)
    )
    print(report)
    return report
