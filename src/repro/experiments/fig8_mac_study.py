"""Fig. 8 — MAC protocol study: MAC × channel count × load, wireless systems.

This experiment goes beyond the paper: it sweeps every registered wireless
MAC protocol (:mod:`repro.wireless.mac.registry` — the paper's
control-packet MAC, the token baseline, a static TDMA schedule and an
FDMA-style sub-band MAC) across several orthogonal-channel counts and
offered loads, on two wireless multichip systems:

* **4C4M** — the paper's 64-core, 4-chip, 4-stack system (Figs. 2/3),
* **8C4M** — the disintegrated eight-chip system of Fig. 4, whose larger
  WI population stresses channel arbitration hardest.

Every (system × MAC × channels × load) combination is one independent
task through the parallel runner and the result cache (task schema v4 keys
the MAC override), so the whole study parallelises and re-runs
incrementally like every other figure.

Besides the throughput/latency/energy comparison, the study checks the
wireless plane's **per-channel energy attribution**: for every task the
per-channel components carried in the cached summary must sum exactly to
the aggregate :class:`~repro.energy.accounting.EnergyBreakdown` shares
(``wireless_pj``, ``mac_control_pj``, ``transceiver_static_pj``).  A task
that fails to reconcile fails the experiment loudly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import Architecture, SystemConfig, paper_4c4m, paper_8c4m
from ..metrics.report import format_heading, format_table
from ..metrics.saturation import LoadPointSummary
from ..wireless.mac.registry import available_macs, mac_spec
from .common import get_fidelity
from ..parallel.runner import ExperimentRunner, uniform_task

#: Memory-access proportion (same as the fig2/fig3 uniform workload).
MEMORY_ACCESS_FRACTION = 0.2

#: Relative tolerance of the per-channel energy reconciliation.  The
#: components are sums of identical float terms accumulated in a different
#: order than the aggregate, so exact equality is not guaranteed — but
#: anything beyond rounding noise is an attribution bug.
RECONCILE_REL_TOL = 1e-9


def fig8_systems() -> Dict[str, SystemConfig]:
    """The wireless systems of the MAC study, in report order."""
    return {
        "4C4M": paper_4c4m(Architecture.WIRELESS),
        "8C4M": paper_8c4m(Architecture.WIRELESS),
    }


def study_loads(load_points: Sequence[float]) -> List[float]:
    """Low / mid / high offered loads from a fidelity's sweep grid.

    Three points keep the MAC × channels × systems cross product tractable
    while still showing each protocol's contention behaviour from idle to
    saturation.
    """
    points = sorted(set(load_points))
    if len(points) <= 3:
        return points
    return [points[0], points[len(points) // 2], points[-1]]


#: One study combination: (system label, mac, channels, load).
StudyKey = Tuple[str, str, int, float]


@dataclass
class Fig8Result:
    """Per-combination summaries of the MAC × channel × load study."""

    fidelity: str
    macs: List[str]
    channel_counts: List[int]
    loads: List[float]
    pattern: str = "uniform"
    points: Dict[StudyKey, LoadPointSummary] = field(default_factory=dict)
    #: Combinations whose per-channel energy failed to reconcile (must be
    #: empty; kept for the report and the tests).
    reconciliation_failures: List[StudyKey] = field(default_factory=list)

    def rows(self) -> List[List[object]]:
        """One row per combination, grouped by system / MAC / channels."""
        rows = []
        for key in sorted(self.points):
            system, mac, channels, load = key
            point = self.points[key]
            rows.append(
                [
                    system,
                    mac,
                    channels,
                    # Pre-format: neighbouring sweep loads differ by less
                    # than the table's default 3-decimal float rendering.
                    f"{load:g}",
                    point.bandwidth_gbps_per_core,
                    point.average_latency_cycles,
                    point.system_packet_energy_nj,
                    point.delivery_ratio,
                    point.mac_control_energy_pj / 1e3,
                ]
            )
        return rows

    def best_mac(self, system: str) -> Tuple[str, int, float]:
        """(MAC, channels, bandwidth) with the highest peak bandwidth."""
        best: Optional[Tuple[str, int, float]] = None
        for (label, mac, channels, _), point in self.points.items():
            if label != system:
                continue
            bandwidth = point.bandwidth_gbps_per_core
            if best is None or bandwidth > best[2]:
                best = (mac, channels, bandwidth)
        if best is None:
            raise KeyError(f"no study points for system {system!r}")
        return best

    @property
    def reconciled(self) -> bool:
        """Whether every combination's channel energy summed to the aggregate."""
        return not self.reconciliation_failures


def _check_reconciliation(point: LoadPointSummary) -> bool:
    """Per-channel components must sum to the aggregate breakdown shares."""
    sums = {"wireless_pj": 0.0, "mac_control_pj": 0.0, "transceiver_static_pj": 0.0}
    for components in point.channel_energy_pj.values():
        for name in sums:
            sums[name] += components.get(name, 0.0)
    return (
        math.isclose(
            sums["wireless_pj"], point.wireless_energy_pj, rel_tol=RECONCILE_REL_TOL, abs_tol=1e-6
        )
        and math.isclose(
            sums["mac_control_pj"],
            point.mac_control_energy_pj,
            rel_tol=RECONCILE_REL_TOL,
            abs_tol=1e-6,
        )
        and math.isclose(
            sums["transceiver_static_pj"],
            point.transceiver_static_energy_pj,
            rel_tol=RECONCILE_REL_TOL,
            abs_tol=1e-6,
        )
    )


def run(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    mac: Optional[str] = None,
) -> Fig8Result:
    """Run the MAC study at the requested fidelity.

    ``mac`` pins the study to one registered protocol (the CLI's ``--mac``);
    by default every registered protocol is swept.  All combinations are
    one runner batch, so the study parallelises across ``runner.jobs``.
    """
    level = get_fidelity(fidelity)
    active = runner if runner is not None else ExperimentRunner()
    macs = [mac] if mac else available_macs()
    for name in macs:
        mac_spec(name)  # unknown names fail before any simulation runs
    channel_counts = sorted(set(level.channel_counts))
    loads = study_loads(level.load_points)
    systems = fig8_systems()

    tasks: Dict[StudyKey, object] = {}
    for label, config in systems.items():
        for mac_name in macs:
            for channels in channel_counts:
                combo_config = config.with_wireless(num_channels=channels)
                for load in loads:
                    tasks[(label, mac_name, channels, load)] = uniform_task(
                        combo_config,
                        level,
                        load=load,
                        memory_access_fraction=MEMORY_ACCESS_FRACTION,
                        pattern=pattern,
                        mac=mac_name,
                    )
    results = active.run(list(tasks.values()))

    study = Fig8Result(
        fidelity=level.name,
        macs=list(macs),
        channel_counts=list(channel_counts),
        loads=list(loads),
        pattern=pattern,
    )
    for key, task in tasks.items():
        point = results[task]
        study.points[key] = point
        if not _check_reconciliation(point):
            study.reconciliation_failures.append(key)
    if study.reconciliation_failures:
        broken = ", ".join(map(str, study.reconciliation_failures[:5]))
        raise AssertionError(
            "per-channel energy does not reconcile with the aggregate "
            f"EnergyBreakdown for {len(study.reconciliation_failures)} "
            f"combination(s), e.g. {broken}"
        )
    return study


def format_report(result: Fig8Result) -> str:
    """Text report: the study table plus per-system best-MAC lines."""
    table = format_table(
        [
            "System",
            "MAC",
            "Channels",
            "Load",
            "BW/core (Gbps)",
            "Avg latency (cyc)",
            "Energy/pkt (nJ)",
            "Delivery ratio",
            "MAC ctrl (nJ)",
        ],
        result.rows(),
    )
    workload = "" if result.pattern == "uniform" else f", {result.pattern} traffic"
    heading = format_heading(
        f"Fig. 8 - MAC study: {'/'.join(result.macs)} x channels "
        f"{result.channel_counts}{workload} [fidelity={result.fidelity}]"
    )
    best_lines = []
    for system in sorted({key[0] for key in result.points}):
        mac, channels, bandwidth = result.best_mac(system)
        best_lines.append(
            f"  {system}: peak bandwidth {bandwidth:.3f} Gbps/core with "
            f"mac={mac}, channels={channels}"
        )
    reconcile = (
        "  per-channel energy reconciles with the aggregate EnergyBreakdown "
        f"for all {len(result.points)} combinations"
    )
    return "{}\n{}\n{}\n{}".format(heading, table, "\n".join(best_lines), reconcile)


def main(
    fidelity: str = "default",
    runner: Optional[ExperimentRunner] = None,
    pattern: str = "uniform",
    mac: Optional[str] = None,
) -> str:
    """Run and format the experiment (used by the CLI and benchmarks)."""
    report = format_report(run(fidelity, runner=runner, pattern=pattern, mac=mac))
    print(report)
    return report
