"""Deprecated import path for the experiment runner.

The orchestration layer moved to :mod:`repro.parallel.runner` (the
package that already owned its cache, hashing and executor halves); the
supported entry surface for running simulations is the
:mod:`repro.api` facade.  This shim re-exports everything so existing
imports keep working bit-identically, and warns once per process.
"""

import warnings

warnings.warn(
    "repro.experiments.runner is deprecated: import from "
    "repro.parallel.runner, or use the repro.api facade",
    DeprecationWarning,
    stacklevel=2,
)

from ..parallel.runner import *  # noqa: F401,F403  (re-export, see __all__ there)
from ..parallel.runner import (  # noqa: F401  (private helpers some tests poke)
    _execute_task_profiled,
    _task_executor,
)
