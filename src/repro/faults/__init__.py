"""Fault injection and resilience: degraded fabrics, recovery, scenarios.

This subsystem opens the resilience workload family on top of the
simulation kernel: deterministic fault plans (built by named scenarios from
a topology, rate and seed), a runtime injector that applies them behind the
unified :class:`~repro.noc.fabric.Fabric` interface, and routing recovery
that rebuilds forwarding state around the damage — rerouting in-flight
traffic, falling back from dead wireless transceivers to the remaining
fabric, and reporting partitions with full packet accounting.

Entry points:

* :func:`create_fault_plan` / :func:`available_fault_scenarios` — build a
  plan by scenario name (``none``, ``random-links``,
  ``hub-transceiver-loss``, ``degraded-channel``, ``cascading``).
* :class:`FaultInjector` — executes a plan over one simulation run (the
  simulator wires it in when a non-empty plan is passed).
* :func:`rebuild_routes` / :class:`RecoveryReport` — the recovery analysis
  (partition detection, deadlock-freedom audit), also usable standalone.
"""

from .injector import AUDIT_SWITCH_LIMIT, FaultInjectionError, FaultInjector
from .plan import FaultEvent, FaultKind, FaultPlan, FaultPlanError, empty_plan
from .recovery import RecoveryReport, connected_components, rebuild_routes
from .scenarios import (
    DEFAULT_SCENARIO,
    ScenarioSpec,
    UnknownScenarioError,
    available_fault_scenarios,
    create_fault_plan,
    register_fault_scenario,
    scenario_spec,
)

__all__ = [
    "AUDIT_SWITCH_LIMIT",
    "DEFAULT_SCENARIO",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "RecoveryReport",
    "ScenarioSpec",
    "UnknownScenarioError",
    "available_fault_scenarios",
    "connected_components",
    "create_fault_plan",
    "empty_plan",
    "rebuild_routes",
    "register_fault_scenario",
    "scenario_spec",
]
