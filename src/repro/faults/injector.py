"""Runtime fault injection and recovery over one simulation run.

The :class:`FaultInjector` executes a :class:`~repro.faults.plan.FaultPlan`
against a live network: at the start of each cycle with due events it
applies them (taking links out of service, killing transceivers, degrading
ports or the wireless channel), then runs one *recovery pass* that rebuilds
routing around the damage:

* the topology graph's in-service view and the router caches are updated,
  so every packet generated from now on automatically routes around faults
  (with per-link penalties biasing paths away from degraded components);
* queued and in-flight packets whose remaining route crosses a failed
  component are *rerouted* — their source route is spliced at the head
  flit's current switch with a fresh shortest path (the wireless→wired /
  other-WI fallback falls out of this: the recomputed path simply uses
  whatever in-service links remain);
* packets whose destination became unreachable are *purged with explicit
  accounting*: every removed flit and packet increments a result counter,
  and the partition itself is reported — never a silent drop;
* switches touched by recovery are woken in the kernel's active-set
  scheduler and the progress watchdog is re-anchored, so topology changes
  cannot strand work or trip spurious stall errors.

Failures are **packet-atomic** (drain semantics): a packet whose head
already committed to a hop finishes crossing it — wormhole switching
cannot truncate a packet mid-flight without dropping flits — so the
delivered-flit conservation invariant
``flits_injected == flits_ejected_total + flits_residual_end +
flits_dropped_unroutable`` holds on every run, faulted or not
(``tests/test_faults.py`` asserts it).

Injector state that outlives the run (disabled graph links, router
penalties) is undone by :meth:`FaultInjector.restore`, which the simulator
calls in a ``finally`` block: the topology and router are shared across
runs, and a faulted run must leave no trace on the next one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..noc.pool import FLIT_INDEX_BITS, FLIT_INDEX_MASK
from ..routing.base import BaseRouter, RoutingError
from ..topology.graph import LinkKind, TopologyGraph
from .plan import FaultEvent, FaultKind, FaultPlan
from .recovery import AUDIT_SWITCH_LIMIT, RecoveryReport, recover_routing

if TYPE_CHECKING:  # pragma: no cover
    from ..noc.kernel import KernelState
    from ..noc.network import Network
    from ..noc.stats import SimulationResult

__all__ = ["AUDIT_SWITCH_LIMIT", "FaultInjectionError", "FaultInjector"]


class FaultInjectionError(RuntimeError):
    """Raised when a fault event cannot be applied to the network."""


class FaultInjector:
    """Applies one fault plan to one live simulation run."""

    def __init__(
        self,
        plan: FaultPlan,
        network: "Network",
        router: BaseRouter,
        result: "SimulationResult",
    ) -> None:
        self.plan = plan
        self.network = network
        #: The system's own router — receives penalties, is restored at the
        #: end of the run, and is the starting point of every recovery.
        self.base_router = router
        #: The route provider currently in effect (the base router, or a
        #: spanning-tree fallback installed by a recovery pass).
        self.router: BaseRouter = router
        self.result = result
        self.graph: TopologyGraph = network.topology
        self._schedule: Dict[int, List[FaultEvent]] = plan.schedule()
        self._disabled_by_us: Set[int] = set()
        self._penalised_by_us: Set[int] = set()
        self.last_report: Optional[RecoveryReport] = None
        result.fault_scenario = plan.scenario
        result.fault_rate = plan.fault_rate

    # ------------------------------------------------------------------
    # Kernel-facing entry points.
    # ------------------------------------------------------------------

    @property
    def pending_event_cycles(self) -> List[int]:
        """Cycles with fault events not yet applied, sorted."""
        return sorted(self._schedule)

    def advance(self, cycle: int, state: "KernelState") -> None:
        """Apply the events due this cycle and recover routing around them."""
        events = self._schedule.pop(cycle, None)
        if not events:
            return
        topology_changed = False
        for event in events:
            topology_changed |= self._apply(event)
        self.result.fault_events_applied += len(events)
        if topology_changed:
            self._recover(state)
        else:
            # Degradations change costs, not connectivity: new packets see
            # the penalties (caches were cleared), in-flight ones keep
            # their still-valid routes.
            self.router.clear_cache()
        state.anchor_watchdog(cycle)

    def restore(self) -> None:
        """Undo every change to state shared across runs (graph, router)."""
        for link_id in sorted(self._disabled_by_us):
            self.graph.enable_link(link_id)
        self._disabled_by_us.clear()
        for link_id in sorted(self._penalised_by_us):
            self.base_router.set_link_penalty(link_id, 1.0)
        self._penalised_by_us.clear()
        self.base_router.clear_cache()
        self.network.wired_fabric.clear_failures()
        if self.network.wireless_fabric is not None:
            self.network.wireless_fabric.dead_wis.clear()

    # ------------------------------------------------------------------
    # Event application.
    # ------------------------------------------------------------------

    def _apply(self, event: FaultEvent) -> bool:
        """Apply one event; returns whether connectivity changed."""
        if event.kind is FaultKind.LINK_DOWN:
            self._apply_link_down(event)
            return True
        if event.kind is FaultKind.TRANSCEIVER_DOWN:
            self._apply_transceiver_down(event)
            return True
        if event.kind is FaultKind.LINK_DEGRADE:
            self._apply_link_degrade(event)
            return False
        if event.kind is FaultKind.CHANNEL_DEGRADE:
            self._apply_channel_degrade(event)
            return False
        raise FaultInjectionError(f"unknown fault kind {event.kind!r}")

    def _apply_link_down(self, event: FaultEvent) -> None:
        link = self.graph.link(event.link_id)
        if self.graph.link_enabled(link.link_id):
            self.graph.disable_link(link.link_id)
            self._disabled_by_us.add(link.link_id)
        if link.kind != LinkKind.WIRELESS:
            self.network.wired_fabric.fail_link(link.src, link.dst)
        self.result.links_failed += 1

    def _apply_transceiver_down(self, event: FaultEvent) -> None:
        fabric = self.network.wireless_fabric
        if fabric is None:
            raise FaultInjectionError(
                "transceiver_down fault on a network without a wireless fabric"
            )
        fabric.fail_transceiver(event.switch_id)
        for link in self.graph.links:
            if link.kind != LinkKind.WIRELESS:
                continue
            if event.switch_id not in link.endpoints():
                continue
            if self.graph.link_enabled(link.link_id):
                self.graph.disable_link(link.link_id)
                self._disabled_by_us.add(link.link_id)
        self.result.transceivers_failed += 1

    def _apply_link_degrade(self, event: FaultEvent) -> None:
        link = self.graph.link(event.link_id)
        degraded = False
        for src, dst in ((link.src, link.dst), (link.dst, link.src)):
            switch = self.network.switches.get(src)
            port = switch.output_ports.get(dst) if switch is not None else None
            if port is None or port.link is None:
                continue
            port.link = replace(
                port.link,
                cycles_per_flit=port.link.cycles_per_flit * event.bandwidth_factor,
                latency_cycles=port.link.latency_cycles + event.extra_latency_cycles,
            )
            degraded = True
        if not degraded:
            raise FaultInjectionError(
                f"link_degrade fault on link {link.link_id} with no wired ports"
            )
        if event.routing_penalty > 1.0:
            self.base_router.set_link_penalty(link.link_id, event.routing_penalty)
            self._penalised_by_us.add(link.link_id)
        self.result.links_degraded += 1

    def _apply_channel_degrade(self, event: FaultEvent) -> None:
        fabric = self.network.wireless_fabric
        if fabric is None:
            raise FaultInjectionError(
                "channel_degrade fault on a network without a wireless fabric"
            )
        for wi_id in fabric.wi_switch_ids:
            port = self.network.switches[wi_id].wireless_output
            if port is None or port.link is None:
                continue
            port.link = replace(
                port.link,
                cycles_per_flit=port.link.cycles_per_flit * event.bandwidth_factor,
                latency_cycles=port.link.latency_cycles + event.extra_latency_cycles,
            )
        if event.routing_penalty > 1.0:
            for link in self.graph.links:
                if link.kind == LinkKind.WIRELESS and self.graph.link_enabled(link.link_id):
                    self.base_router.set_link_penalty(link.link_id, event.routing_penalty)
                    self._penalised_by_us.add(link.link_id)
        self.result.links_degraded += 1

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def _recover(self, state: "KernelState") -> None:
        provider, report = recover_routing(self.graph, self.base_router)
        self.last_report = report
        if report.partitioned:
            self.result.partitions_reported += 1
        if report.used_tree_fallback:
            self.result.tree_fallback_recoveries += 1
        # When the active route provider changes (fallback installed, or a
        # later pass returns to shortest paths), every in-flight packet must
        # move to the new provider's routes — mixing providers would void
        # the deadlock-freedom argument of the recovery set.
        provider_changed = provider is not self.router
        self.router = provider
        state.router = provider
        self._reroute_queued(state, report, force=provider_changed)
        self._reroute_in_flight(state, report, force=provider_changed)

    def _route_broken(self, route, from_hop: int) -> bool:
        for a, b in zip(route[from_hop:], route[from_hop + 1 :]):
            if self.graph.find_link(a, b) is None:
                return True
        return False

    def _reroute_queued(
        self, state: "KernelState", report: RecoveryReport, force: bool = False
    ) -> None:
        """Recompute routes of packets still waiting in their source queues.

        Source queues hold packet-pool handles; a dropped packet's handle is
        returned to the pool so the conservation contract
        (``allocated == freed + live``) survives faulted runs.
        """
        pool = state.pool
        for endpoint_id in sorted(state.source_queues):
            queue = state.source_queues[endpoint_id]
            if not queue:
                continue
            kept = []
            for handle in queue:
                route = pool.route[handle]
                broken = self._route_broken(route, 0)
                if not force and not broken:
                    kept.append(handle)
                    continue
                src_switch = pool.src_switch[handle]
                dst_switch = pool.dst_switch[handle]
                new_route = None
                if not report.partitioned or report.same_component(src_switch, dst_switch):
                    try:
                        new_route = self.router.route(src_switch, dst_switch)
                    except RoutingError:
                        new_route = None
                if new_route is None:
                    if broken:
                        self.result.packets_dropped_unroutable += 1
                        pool.free(handle)
                    else:
                        kept.append(handle)  # old route is still usable
                    continue
                if list(new_route) != list(route):
                    pool.route[handle] = list(new_route)
                    state.compile_route_ports(handle)
                    self.result.packets_rerouted += 1
                kept.append(handle)
            if len(kept) != len(queue):
                queue.clear()
                queue.extend(kept)

    def _reroute_in_flight(
        self, state: "KernelState", report: RecoveryReport, force: bool = False
    ) -> None:
        """Splice fresh paths into packets already travelling the network."""
        pool = state.pool
        pool_pid = pool.pid
        packets: Dict[int, int] = {}  # packet id -> pool handle
        head_vcs: Dict[int, Tuple[object, object]] = {}
        for switch_id in sorted(self.network.switches):
            switch = self.network.switches[switch_id]
            for port in switch.input_port_list or switch.input_ports.values():
                for vc in port.vcs:
                    if not vc.count:
                        continue
                    front = vc.buf[vc.head]
                    handle = front >> FLIT_INDEX_BITS
                    packets[pool_pid[handle]] = handle
                    if not front & FLIT_INDEX_MASK:  # head flit in front
                        head_vcs[pool_pid[handle]] = (vc, switch)
        for entries in state.arrivals.values():
            for _, flit in entries:
                handle = flit >> FLIT_INDEX_BITS
                packets[pool_pid[handle]] = handle

        for packet_id in sorted(packets):
            handle = packets[packet_id]
            route = pool.route[handle]
            head_hop = pool.head_hop[handle]
            if head_hop >= len(route) - 1:
                continue  # head already at (or ejecting into) its destination
            broken = self._route_broken(route, head_hop)
            if not force and not broken:
                continue
            current = route[head_hop]
            dst_switch = pool.dst_switch[handle]
            prefix = list(route[:head_hop])
            new_tail = None
            if not report.partitioned or report.same_component(current, dst_switch):
                try:
                    new_tail = self.router.route(current, dst_switch)
                except RoutingError:
                    new_tail = None
            # A recovery path that re-enters an already-traversed switch
            # could collide with the packet's own upstream VC allocations,
            # so such splices are rejected.
            if new_tail is not None and set(new_tail[1:]) & set(prefix):
                new_tail = None
            if new_tail is None:
                if broken or force:
                    # No safe path remains — or the route provider changed
                    # and this packet cannot move to it, and a stale route
                    # from the previous provider would void the recovery
                    # set's deadlock-freedom argument.  Remove the packet
                    # *with accounting* — counted, never silent.
                    self._purge_packet(handle, state)
                continue
            new_route = prefix + list(new_tail)
            if new_route == list(route):
                continue
            pool.route[handle] = new_route
            state.compile_route_ports(handle)
            self.result.packets_rerouted += 1
            holder = head_vcs.get(packet_id)
            if holder is not None:
                vc, switch = holder
                vc.reset_routing()
                state.scheduler.on_fault(switch)

    def _purge_packet(self, handle: int, state: "KernelState") -> None:
        """Remove a stranded packet from the network, counting every flit."""
        pool = state.pool
        packet_id = pool.pid[handle]
        removed = 0
        for cycle_key in sorted(state.arrivals):
            entries = state.arrivals[cycle_key]
            kept = []
            for target_vc, flit in entries:
                if flit >> FLIT_INDEX_BITS == handle:
                    target_vc.in_flight -= 1
                    removed += 1
                else:
                    kept.append((target_vc, flit))
            if len(kept) != len(entries):
                if kept:
                    state.arrivals[cycle_key] = kept
                else:
                    del state.arrivals[cycle_key]
        for switch_id in sorted(self.network.switches):
            switch = self.network.switches[switch_id]
            for port in switch.input_port_list or switch.input_ports.values():
                for vc in port.vcs:
                    if vc.source_packet == handle:
                        vc.source_packet = None
                        vc.source_flits_emitted = 0
                    if vc.allocated_packet_id != packet_id:
                        continue
                    removed += vc.clear_buffer()
                    vc.in_flight = 0
                    vc.release()
                    state.scheduler.on_fault(switch)
        for queue in state.source_queues.values():
            if handle in queue:
                queue.remove(handle)
        self.result.packets_dropped_unroutable += 1
        self.result.flits_dropped_unroutable += removed
        pool.free(handle)
