"""The fault model: events, and the plan that schedules them.

A :class:`FaultPlan` is a deterministic, pre-computed list of
:class:`FaultEvent` records — *which* component degrades or dies and *when*
(in simulation cycles).  Plans are built by the named scenario factories in
:mod:`repro.faults.scenarios` from a topology, a fault rate and a derived
seed, so the same (scenario, rate, seed) always produces the same plan on
any host — the same determinism contract the traffic models follow.

Four fault kinds cover the failure modes of the multichip fabrics:

* ``link_down`` — a wired link fails fail-stop: no new packet may enter it,
  and routing is rebuilt around it.
* ``link_degrade`` — a switch port degrades: the link behind it serialises
  flits more slowly and/or adds latency, and adaptive rerouting biases
  paths away from it.
* ``transceiver_down`` — a wireless transceiver dies: its WI can no longer
  transmit or receive, and traffic falls back to the remaining WIs (or
  wired paths where they exist).
* ``channel_degrade`` — the shared wireless channel loses SNR: every
  wireless transmission serialises more slowly and wireless hops become
  less attractive to the router.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple


class FaultKind(str, Enum):
    """Failure mode of one fault event."""

    LINK_DOWN = "link_down"
    LINK_DEGRADE = "link_degrade"
    TRANSCEIVER_DOWN = "transceiver_down"
    CHANNEL_DEGRADE = "channel_degrade"


class FaultPlanError(ValueError):
    """Raised when a fault event or plan is built inconsistently."""


@dataclass(frozen=True)
class FaultEvent:
    """One fault taking effect at one simulation cycle.

    ``at_cycle`` zero means the fault is present from the start of the run
    (a *static* fault); positive cycles schedule it mid-run.  Which of the
    optional fields must be set depends on ``kind``.
    """

    kind: FaultKind
    at_cycle: int = 0
    #: Failed / degraded link (``link_down`` and ``link_degrade``).
    link_id: Optional[int] = None
    #: WI switch whose transceiver dies (``transceiver_down``).
    switch_id: Optional[int] = None
    #: Serialisation slow-down: multiplies ``cycles_per_flit`` of the
    #: affected link(s) (``link_degrade`` / ``channel_degrade``).
    bandwidth_factor: int = 1
    #: Extra cycles added to the affected link(s)' traversal latency.
    extra_latency_cycles: int = 0
    #: Multiplier on the affected link(s)' routing cost, so adaptive
    #: rerouting spreads traffic away from degraded components.
    routing_penalty: float = 1.0

    def __post_init__(self) -> None:
        if self.at_cycle < 0:
            raise FaultPlanError("at_cycle must be non-negative")
        if self.kind in (FaultKind.LINK_DOWN, FaultKind.LINK_DEGRADE):
            if self.link_id is None:
                raise FaultPlanError(f"{self.kind.value} events need a link_id")
        if self.kind is FaultKind.TRANSCEIVER_DOWN and self.switch_id is None:
            raise FaultPlanError("transceiver_down events need a switch_id")
        if self.bandwidth_factor < 1:
            raise FaultPlanError("bandwidth_factor must be at least 1")
        if self.extra_latency_cycles < 0:
            raise FaultPlanError("extra_latency_cycles must be non-negative")
        if self.routing_penalty < 1.0:
            raise FaultPlanError("routing_penalty must be at least 1.0")
        if self.kind is FaultKind.LINK_DEGRADE and (
            self.bandwidth_factor == 1 and self.extra_latency_cycles == 0
        ):
            raise FaultPlanError("link_degrade events must degrade something")


@dataclass(frozen=True)
class FaultPlan:
    """Every fault of one simulation run, in application order."""

    scenario: str
    fault_rate: float
    seed: int
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not 0.0 <= self.fault_rate <= 1.0:
            raise FaultPlanError("fault_rate must be in [0, 1]")

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects no faults at all."""
        return not self.events

    def schedule(self) -> Dict[int, List[FaultEvent]]:
        """Events grouped by application cycle, each group in plan order."""
        grouped: Dict[int, List[FaultEvent]] = {}
        for event in self.events:
            grouped.setdefault(event.at_cycle, []).append(event)
        return grouped

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of events of each kind (for reports and tests)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts


def empty_plan(scenario: str = "none", fault_rate: float = 0.0, seed: int = 0) -> FaultPlan:
    """A plan with no faults (the ``none`` scenario)."""
    return FaultPlan(scenario=scenario, fault_rate=fault_rate, seed=seed, events=())
