"""Routing recovery after fabric faults.

When links die the pre-computed shortest-path routes must be rebuilt around
them.  This module owns the *analysis* half of that job: connectivity
(partition detection via BFS over the in-service links), route rebuilding
(dropping every cached route so Dijkstra recomputes on the degraded graph),
and — on request — a full deadlock-freedom audit of the recovered route set
using the channel-dependency-graph test from
:mod:`repro.routing.validation`.

The deadlock argument of the default router rests on XY-ordered intra-chip
segments; a failed mesh link forces recovered routes off the XY form, and
the audit regularly finds real dependency cycles in the shortest-path
recovery set.  :func:`recover_routing` therefore implements the full
contract: shortest-path recovery is audited, and when a cycle is found the
route provider falls back to the paper's own spanning-tree scheme
(Section III-C: deadlock is avoided "along the shortest path routing tree
... as it is inherently free of cyclic dependencies") built over the
in-service links — provably cycle-free, at the cost of concentrating
traffic on tree links.  The outcome is always one of: verified
deadlock-free shortest paths, verified tree fallback, or a reported
partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..routing.base import BaseRouter, RoutingError
from ..routing.tree import SpanningTreeRouter
from ..routing.validation import find_channel_dependency_cycle, validate_route
from ..topology.graph import TopologyGraph

#: Systems at or below this many switches re-audit even the (provably
#: deadlock-free) spanning-tree fallback, as defence in depth; larger
#: systems trust the construction to keep recovery passes affordable.
AUDIT_SWITCH_LIMIT = 40


@dataclass
class RecoveryReport:
    """Outcome of one routing-recovery pass."""

    #: Connected components of the in-service topology, each a sorted list
    #: of switch ids, ordered by their smallest member.
    components: List[List[int]] = field(default_factory=list)
    #: Whether the deadlock-freedom audit ran (all-pairs route enumeration).
    verified: bool = False
    #: Result of the audit (``None`` when it did not run).
    deadlock_free: Optional[bool] = None
    #: The offending channel-dependency cycle, if the audit found one.
    dependency_cycle: Optional[List[Tuple[int, int]]] = None
    #: Routes the audit rejected as invalid (should stay empty).
    invalid_routes: List[Tuple[int, int]] = field(default_factory=list)
    #: Whether recovery switched to the spanning-tree route provider
    #: because the shortest-path recovery set had a dependency cycle.
    used_tree_fallback: bool = False

    @property
    def partitioned(self) -> bool:
        """Whether the in-service topology is split into several islands."""
        return len(self.components) > 1

    def same_component(self, a: int, b: int) -> bool:
        """Whether two switches can still reach each other."""
        for component in self.components:
            if a in component:
                return b in component
        return False


def connected_components(topology: TopologyGraph) -> List[List[int]]:
    """Connected components over the in-service links, smallest-id first."""
    remaining = {s.switch_id for s in topology.switches}
    components: List[List[int]] = []
    while remaining:
        start = min(remaining)
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor, _ in topology.neighbors(current):
                if neighbor in remaining and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        components.append(sorted(seen))
        remaining -= seen
    return components


def rebuild_routes(
    topology: TopologyGraph,
    router: BaseRouter,
    verify_deadlock_freedom: bool = False,
) -> RecoveryReport:
    """Rebuild forwarding state around the currently disabled links.

    Drops every cached route (so the router recomputes on the degraded
    graph), detects partitions, and — when ``verify_deadlock_freedom`` is
    set — enumerates every intra-component route, validates it against the
    in-service topology, and runs the channel-dependency-graph acyclicity
    test.  The returned report always states one of the three outcomes:
    connected and verified deadlock-free, connected with a reported
    dependency cycle, or partitioned (with the component list).
    """
    router.clear_cache()
    report = RecoveryReport(components=connected_components(topology))
    if not verify_deadlock_freedom:
        return report
    report.verified = True
    routes = []
    for component in report.components:
        for src in component:
            for dst in component:
                if src == dst:
                    continue
                try:
                    route = router.route(src, dst)
                    validate_route(topology, route)
                except RoutingError:
                    report.invalid_routes.append((src, dst))
                    continue
                routes.append(route)
    report.dependency_cycle = find_channel_dependency_cycle(routes)
    report.deadlock_free = (
        report.dependency_cycle is None and not report.invalid_routes
    )
    return report


def recover_routing(
    topology: TopologyGraph,
    router: BaseRouter,
) -> Tuple[BaseRouter, RecoveryReport]:
    """Recover routing around disabled links; returns (route provider, report).

    The shortest-path recovery is audited for deadlock freedom; when the
    audit finds a channel-dependency cycle (the usual case once a mesh link
    is gone — the XY argument no longer applies), the returned provider is
    a :class:`~repro.routing.SpanningTreeRouter` built over the in-service
    links, whose up-then-down routes are inherently cycle-free.  On a
    partition no fallback is attempted (per-island traffic keeps its
    shortest paths; the partition itself is the reported outcome).
    """
    report = rebuild_routes(topology, router, verify_deadlock_freedom=True)
    if report.partitioned or report.deadlock_free:
        return router, report
    tree = SpanningTreeRouter(topology)
    tree_report = rebuild_routes(
        topology,
        tree,
        verify_deadlock_freedom=topology.num_switches <= AUDIT_SWITCH_LIMIT,
    )
    tree_report.used_tree_fallback = True
    if tree_report.deadlock_free is None:
        # Above the audit limit the tree is trusted by construction.
        tree_report.deadlock_free = True
    return tree, tree_report
