"""Named fault scenarios, constructed by name from a registry.

Mirrors the traffic-pattern and architecture registries: the experiment
layer (CLI ``--faults``, simulation tasks, the fig7 resilience sweep)
refers to fault scenarios by a short name, and each name maps to a factory
that builds a deterministic :class:`~repro.faults.plan.FaultPlan` for a
topology.  Registering a new scenario is one decorator —

::

    @register_fault_scenario("my-scenario", description="...")
    def _make_my_scenario(topology, *, fault_rate, seed, cycles):
        return FaultPlan(...)

— after which ``--faults my-scenario`` works end to end through the
parallel runner and the result cache (the scenario name and fault rate are
part of every task's cache key).

Every factory accepts the same keyword set (``fault_rate``, ``seed``,
``cycles``) and derives all randomness from ``seed`` via
:func:`repro.traffic.rng.make_rng`, so plans are bit-reproducible across
processes and hosts.  Scenarios that would have to disconnect the topology
to reach the requested rate stop early instead: partition stress is the
job of the ``cascading`` scenario, which is allowed to cut the network
apart (the injector then *reports* the partition and accounts every
undeliverable packet — never a silent drop).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from ..topology.graph import LinkKind, LinkSpec, RegionKind, TopologyGraph
from ..traffic.rng import bernoulli, make_rng
from .plan import FaultEvent, FaultKind, FaultPlan

#: Factory signature: ``factory(topology, *, fault_rate, seed, cycles)
#: -> FaultPlan``.
ScenarioFactory = Callable[..., FaultPlan]

#: Scenario used by default when an experiment wants "some faults" without
#: naming a scenario (the fig7 resilience sweep).
DEFAULT_SCENARIO = "random-links"


class UnknownScenarioError(KeyError):
    """Raised when a fault-scenario name is not registered."""


@dataclass(frozen=True)
class ScenarioSpec:
    """One registered fault scenario."""

    name: str
    factory: ScenarioFactory
    description: str = ""


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register_fault_scenario(
    name: str, description: str = ""
) -> Callable[[ScenarioFactory], ScenarioFactory]:
    """Decorator that registers a fault-scenario factory under a name."""

    def decorator(factory: ScenarioFactory) -> ScenarioFactory:
        if name in _REGISTRY:
            raise ValueError(f"fault scenario {name!r} is already registered")
        _REGISTRY[name] = ScenarioSpec(name=name, factory=factory, description=description)
        return factory

    return decorator


def scenario_spec(name: str) -> ScenarioSpec:
    """Look up one registered scenario."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownScenarioError(
            f"unknown fault scenario {name!r}; known scenarios: {known}"
        ) from None


def available_fault_scenarios() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def create_fault_plan(
    name: str,
    topology: TopologyGraph,
    fault_rate: float,
    seed: int,
    cycles: int,
) -> FaultPlan:
    """Build the named scenario's fault plan for one topology and run."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    if not 0.0 <= fault_rate <= 1.0:
        raise ValueError(f"fault_rate must be in [0, 1], got {fault_rate}")
    spec = scenario_spec(name)
    return spec.factory(topology, fault_rate=fault_rate, seed=seed, cycles=cycles)


# ----------------------------------------------------------------------
# Shared helpers.
# ----------------------------------------------------------------------


def _connected_without(topology: TopologyGraph, removed: Set[int]) -> bool:
    """Whether the topology stays connected with ``removed`` links also gone."""
    switches = topology.switches
    if not switches:
        return True
    start = switches[0].switch_id
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor, link in topology.neighbors(current):
            if link.link_id in removed or neighbor in seen:
                continue
            seen.add(neighbor)
            frontier.append(neighbor)
    return len(seen) == topology.num_switches


def _wired_links(topology: TopologyGraph) -> List[LinkSpec]:
    """All in-service wired (non-wireless) links, in id order."""
    return [
        link
        for link in topology.links
        if link.kind != LinkKind.WIRELESS and topology.link_enabled(link.link_id)
    ]


def _wireless_links_at(topology: TopologyGraph, switch_id: int) -> List[LinkSpec]:
    """Wireless links incident to one switch, in id order."""
    return [
        link
        for link in topology.links
        if link.kind == LinkKind.WIRELESS and switch_id in link.endpoints()
    ]


def _degrade_factor(fault_rate: float) -> int:
    """Serialisation slow-down for a degradation at the given severity."""
    return 1 + max(1, round(3 * fault_rate))


# ----------------------------------------------------------------------
# Built-in scenarios.
# ----------------------------------------------------------------------


@register_fault_scenario("none", description="pristine fabric, no faults")
def _make_none(
    topology: TopologyGraph, *, fault_rate: float, seed: int, cycles: int
) -> FaultPlan:
    return FaultPlan(scenario="none", fault_rate=fault_rate, seed=seed, events=())


@register_fault_scenario(
    "random-links",
    description=(
        "each wired link independently fails with probability fault_rate at "
        "a random mid-run cycle; failures that would disconnect the "
        "topology are skipped (connectivity-preserving)"
    ),
)
def _make_random_links(
    topology: TopologyGraph, *, fault_rate: float, seed: int, cycles: int
) -> FaultPlan:
    rng = make_rng(seed)
    window_lo = max(1, cycles // 10)
    window_hi = max(window_lo + 1, cycles // 2)
    events: List[FaultEvent] = []
    removed: Set[int] = set()
    for link in _wired_links(topology):
        if not bernoulli(rng, fault_rate):
            continue
        at_cycle = rng.randrange(window_lo, window_hi)
        tentative = removed | {link.link_id}
        if not _connected_without(topology, tentative):
            continue
        removed.add(link.link_id)
        events.append(
            FaultEvent(
                kind=FaultKind.LINK_DOWN, at_cycle=at_cycle, link_id=link.link_id
            )
        )
    events.sort(key=lambda e: (e.at_cycle, e.link_id))
    return FaultPlan(
        scenario="random-links", fault_rate=fault_rate, seed=seed, events=tuple(events)
    )


@register_fault_scenario(
    "hub-transceiver-loss",
    description=(
        "kills ceil(fault_rate * num_WIs) wireless transceivers mid-run, "
        "memory-stack hubs first; WIs whose loss would disconnect the "
        "topology are skipped (wired architectures: no-op)"
    ),
)
def _make_hub_transceiver_loss(
    topology: TopologyGraph, *, fault_rate: float, seed: int, cycles: int
) -> FaultPlan:
    wis = topology.wireless_switches
    events: List[FaultEvent] = []
    if wis and fault_rate > 0.0:
        # Memory-stack WIs concentrate all memory traffic, so they are the
        # "hubs" this scenario takes out first; within each group the order
        # is a deterministic shuffle of the ids.
        rng = make_rng(seed)
        memory_regions = {
            r.region_id
            for r in topology.regions
            if r.kind == RegionKind.MEMORY_STACK
        }
        hubs = [w.switch_id for w in wis if w.region_id in memory_regions]
        others = [w.switch_id for w in wis if w.region_id not in memory_regions]
        rng.shuffle(hubs)
        rng.shuffle(others)
        budget = min(len(wis) - 1, math.ceil(fault_rate * len(wis)))
        at_cycle = max(1, cycles // 3)
        removed: Set[int] = set()
        for switch_id in hubs + others:
            if budget == 0:
                break
            incident = {link.link_id for link in _wireless_links_at(topology, switch_id)}
            if not _connected_without(topology, removed | incident):
                continue
            removed |= incident
            events.append(
                FaultEvent(
                    kind=FaultKind.TRANSCEIVER_DOWN,
                    at_cycle=at_cycle,
                    switch_id=switch_id,
                )
            )
            budget -= 1
    return FaultPlan(
        scenario="hub-transceiver-loss",
        fault_rate=fault_rate,
        seed=seed,
        events=tuple(events),
    )


@register_fault_scenario(
    "degraded-channel",
    description=(
        "SNR loss on the shared wireless channel: every wireless hop "
        "serialises more slowly and routing biases away from it; wired "
        "architectures degrade their inter-die links instead"
    ),
)
def _make_degraded_channel(
    topology: TopologyGraph, *, fault_rate: float, seed: int, cycles: int
) -> FaultPlan:
    events: List[FaultEvent] = []
    if fault_rate > 0.0:
        at_cycle = max(1, cycles // 4)
        factor = _degrade_factor(fault_rate)
        penalty = 1.0 + 2.0 * fault_rate
        if topology.wireless_switches:
            events.append(
                FaultEvent(
                    kind=FaultKind.CHANNEL_DEGRADE,
                    at_cycle=at_cycle,
                    bandwidth_factor=factor,
                    extra_latency_cycles=max(1, round(2 * fault_rate)),
                    routing_penalty=penalty,
                )
            )
        else:
            for link in topology.inter_region_links():
                if not topology.link_enabled(link.link_id):
                    continue
                events.append(
                    FaultEvent(
                        kind=FaultKind.LINK_DEGRADE,
                        at_cycle=at_cycle,
                        link_id=link.link_id,
                        bandwidth_factor=factor,
                        extra_latency_cycles=max(1, round(2 * fault_rate)),
                        routing_penalty=penalty,
                    )
                )
    return FaultPlan(
        scenario="degraded-channel",
        fault_rate=fault_rate,
        seed=seed,
        events=tuple(events),
    )


@register_fault_scenario(
    "cascading",
    description=(
        "a failure front: a random wired link dies, then neighbours of the "
        "failed region keep dying at fixed intervals; MAY partition the "
        "topology (the injector reports it and accounts every stranded "
        "packet)"
    ),
)
def _make_cascading(
    topology: TopologyGraph, *, fault_rate: float, seed: int, cycles: int
) -> FaultPlan:
    wired = _wired_links(topology)
    events: List[FaultEvent] = []
    if wired and fault_rate > 0.0:
        rng = make_rng(seed)
        budget = max(1, round(fault_rate * len(wired) / 2))
        interval = max(20, cycles // 12)
        at_cycle = max(1, cycles // 6)
        first = wired[rng.randrange(len(wired))]
        failed: List[LinkSpec] = [first]
        failed_ids: Set[int] = {first.link_id}
        events.append(
            FaultEvent(kind=FaultKind.LINK_DOWN, at_cycle=at_cycle, link_id=first.link_id)
        )
        frontier_switches: Set[int] = set(first.endpoints())
        while len(events) < budget:
            at_cycle += interval
            if at_cycle >= cycles:
                break
            candidates = sorted(
                {
                    link.link_id
                    for switch_id in frontier_switches
                    for _, link in topology.neighbors(switch_id)
                    if link.kind != LinkKind.WIRELESS
                    and link.link_id not in failed_ids
                }
            )
            if not candidates:
                break
            chosen_id = candidates[rng.randrange(len(candidates))]
            chosen = topology.link(chosen_id)
            failed.append(chosen)
            failed_ids.add(chosen_id)
            frontier_switches |= set(chosen.endpoints())
            events.append(
                FaultEvent(kind=FaultKind.LINK_DOWN, at_cycle=at_cycle, link_id=chosen_id)
            )
    return FaultPlan(
        scenario="cascading", fault_rate=fault_rate, seed=seed, events=tuple(events)
    )
