"""In-package stacked DRAM memory: stacks, vaults, TSVs and the logic-die interface."""

from .controller import MemoryInterface
from .dram_stack import DramStack, DramStackConfig
from .tsv import TsvBus
from .vault import VaultConfig, VaultController

__all__ = [
    "DramStack",
    "DramStackConfig",
    "MemoryInterface",
    "TsvBus",
    "VaultConfig",
    "VaultController",
]
