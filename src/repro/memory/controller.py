"""Memory-side request handling on the base logic die.

The base logic die "works as an interface between the memory stacks and
multicore chips" (Section IV).  ``MemoryInterface`` maps vault endpoints to
their stack's vault controllers and computes the service delay of read and
write requests; the application traffic model uses it to delay memory
replies by a realistic access time instead of answering instantly.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.graph import TopologyGraph
from .dram_stack import DramStack, DramStackConfig


class MemoryInterface:
    """All memory stacks of a multichip system, addressable by endpoint id."""

    def __init__(
        self,
        topology: TopologyGraph,
        config: Optional[DramStackConfig] = None,
    ) -> None:
        self._config = config or DramStackConfig()
        self._stacks: Dict[int, DramStack] = {}
        self._vault_of_endpoint: Dict[int, tuple] = {}
        stacks_seen: List[int] = []
        for endpoint in topology.memory_vaults:
            region = endpoint.region_id
            if region not in self._stacks:
                self._stacks[region] = DramStack(
                    stack_id=len(stacks_seen), config=self._config
                )
                stacks_seen.append(region)
            stack = self._stacks[region]
            vault_index = len(
                [e for e in self._vault_of_endpoint.values() if e[0] == region]
            )
            self._vault_of_endpoint[endpoint.endpoint_id] = (
                region,
                vault_index % stack.num_vaults,
            )

    @property
    def num_stacks(self) -> int:
        """Number of memory stacks in the system."""
        return len(self._stacks)

    def stack_for_region(self, region_id: int) -> DramStack:
        """The stack model backing one memory region."""
        try:
            return self._stacks[region_id]
        except KeyError:
            raise KeyError(f"region {region_id} is not a memory stack") from None

    def total_capacity_mib(self) -> int:
        """Total in-package memory capacity [MiB]."""
        return sum(s.config.total_capacity_mib for s in self._stacks.values())

    def service_request(
        self,
        vault_endpoint: int,
        bytes_transferred: int,
        cycle: int,
        is_write: bool = False,
    ) -> int:
        """Cycle at which the vault finishes serving a request."""
        try:
            region, vault_index = self._vault_of_endpoint[vault_endpoint]
        except KeyError:
            raise KeyError(
                f"endpoint {vault_endpoint} is not a memory vault"
            ) from None
        stack = self._stacks[region]
        if is_write:
            return stack.service_write(vault_index, bytes_transferred, cycle)
        return stack.service_read(vault_index, bytes_transferred, cycle)

    def reset(self) -> None:
        """Clear all vault timing state."""
        for stack in self._stacks.values():
            stack.reset()
