"""In-package stacked DRAM model.

The paper considers each memory module to be "a stacked DRAM mounted on-top
of a base logic die" with four layers and four channels; the layers are
interconnected by TSVs and the base logic die carries the interface to the
rest of the package (wide I/O channel or wireless interface).  The
intra-stack transfer energy is ignored by the paper because it is identical
in all configurations; the reproduction still models the stack structure so
memory service time (used by the application traffic's request/reply flow)
and capacity book-keeping are explicit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .tsv import TsvBus
from .vault import VaultConfig, VaultController


@dataclass(frozen=True)
class DramStackConfig:
    """Organisation of one in-package DRAM stack."""

    #: Number of stacked DRAM dies ("vertically stacked 4-layered DRAM").
    layers: int = 4
    #: Independent channels/vaults per stack ("four channels").
    channels: int = 4
    #: Capacity per DRAM die [MiB].
    capacity_per_layer_mib: int = 1024
    #: Vault (channel) timing/organisation.
    vault: VaultConfig = field(default_factory=VaultConfig)
    #: TSV bus width between adjacent layers [bits].
    tsv_width_bits: int = 128

    def __post_init__(self) -> None:
        if self.layers <= 0:
            raise ValueError("layers must be positive")
        if self.channels <= 0:
            raise ValueError("channels must be positive")
        if self.capacity_per_layer_mib <= 0:
            raise ValueError("capacity_per_layer_mib must be positive")
        if self.tsv_width_bits <= 0:
            raise ValueError("tsv_width_bits must be positive")

    @property
    def total_capacity_mib(self) -> int:
        """Total capacity of the stack [MiB]."""
        return self.layers * self.capacity_per_layer_mib


class DramStack:
    """One memory stack: base logic die, TSV buses and vault controllers."""

    def __init__(self, stack_id: int, config: DramStackConfig = DramStackConfig()) -> None:
        if stack_id < 0:
            raise ValueError("stack_id must be non-negative")
        self.stack_id = stack_id
        self.config = config
        self.vaults: List[VaultController] = [
            VaultController(vault_id=i, config=config.vault)
            for i in range(config.channels)
        ]
        self.tsv_bus = TsvBus(
            layers=config.layers,
            width_bits=config.tsv_width_bits,
        )

    @property
    def num_vaults(self) -> int:
        """Number of independent channels/vaults."""
        return len(self.vaults)

    def vault(self, index: int) -> VaultController:
        """Vault controller ``index``."""
        try:
            return self.vaults[index]
        except IndexError:
            raise IndexError(
                f"stack {self.stack_id} has {len(self.vaults)} vaults, "
                f"requested {index}"
            ) from None

    def service_read(self, vault_index: int, bytes_requested: int, cycle: int) -> int:
        """Cycle at which a read of ``bytes_requested`` completes."""
        vault = self.vault(vault_index)
        ready = vault.access(cycle, bytes_requested, is_write=False)
        transfer = self.tsv_bus.transfer_cycles(bytes_requested * 8)
        return ready + transfer

    def service_write(self, vault_index: int, bytes_written: int, cycle: int) -> int:
        """Cycle at which a write of ``bytes_written`` completes."""
        vault = self.vault(vault_index)
        ready = vault.access(cycle, bytes_written, is_write=True)
        transfer = self.tsv_bus.transfer_cycles(bytes_written * 8)
        return ready + transfer

    def peak_bandwidth_gbps(self, clock_hz: float = 1.0e9) -> float:
        """Aggregate peak bandwidth of the stack's channels [Gb/s]."""
        per_channel = self.config.vault.bus_width_bits * clock_hz / 1e9
        return per_channel * self.num_vaults

    def reset(self) -> None:
        """Clear all vault timing state."""
        for vault in self.vaults:
            vault.reset()
