"""Through-silicon-via (TSV) bus between the layers of a memory stack.

"The layers of the memory stacks are interconnected using TSVs"
(Section III-A).  The TSV bus contributes a small, architecture-independent
transfer delay and energy; the paper ignores the energy ("the energy
consumption of data transfer inside a memory stack is ignored as it is same
in all the configurations") and the reproduction keeps it available but
out of the packet-energy accounting by default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.technology import TSV_ENERGY_PJ_PER_BIT


@dataclass(frozen=True)
class TsvBus:
    """A vertical bus spanning the layers of one stack."""

    layers: int = 4
    width_bits: int = 128
    #: Per-bit, per-layer-crossing energy [pJ].
    energy_pj_per_bit: float = TSV_ENERGY_PJ_PER_BIT
    #: Cycles to move one bus-width beat between adjacent layers.
    cycles_per_beat: int = 1

    def __post_init__(self) -> None:
        if self.layers <= 0:
            raise ValueError("layers must be positive")
        if self.width_bits <= 0:
            raise ValueError("width_bits must be positive")
        if self.energy_pj_per_bit < 0:
            raise ValueError("energy_pj_per_bit must be non-negative")
        if self.cycles_per_beat <= 0:
            raise ValueError("cycles_per_beat must be positive")

    def transfer_cycles(self, bits: int) -> int:
        """Cycles to move ``bits`` from the farthest layer to the logic die."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0
        beats = -(-bits // self.width_bits)  # ceiling division
        return beats * self.cycles_per_beat * (self.layers - 1) if self.layers > 1 else 0

    def transfer_energy_pj(self, bits: int, layers_crossed: int = None) -> float:
        """Energy of moving ``bits`` across ``layers_crossed`` TSV hops [pJ]."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        crossings = self.layers - 1 if layers_crossed is None else layers_crossed
        if crossings < 0:
            raise ValueError("layers_crossed must be non-negative")
        return bits * self.energy_pj_per_bit * crossings
