"""Vault (memory channel) controller with simple closed-page timing.

Each stack exposes four independent channels; a vault controller serialises
accesses to its channel and models a closed-page DRAM access as a fixed
activate + column access + precharge latency plus the burst transfer time.
Only the *service latency* matters to the interconnect study — the stack's
internal energy is identical in every architecture and is ignored, following
the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VaultConfig:
    """Timing and organisation of one vault (channel)."""

    #: Data bus width of the channel [bits].
    bus_width_bits: int = 128
    #: Channel clock [Hz].
    clock_hz: float = 1.0e9
    #: Row activate latency [channel cycles].
    t_rcd_cycles: int = 14
    #: Column access latency [channel cycles].
    t_cl_cycles: int = 14
    #: Precharge latency [channel cycles].
    t_rp_cycles: int = 14
    #: Network clock the service time is reported in [Hz].
    network_clock_hz: float = 2.5e9

    def __post_init__(self) -> None:
        if self.bus_width_bits <= 0:
            raise ValueError("bus_width_bits must be positive")
        if self.clock_hz <= 0 or self.network_clock_hz <= 0:
            raise ValueError("clocks must be positive")
        for name in ("t_rcd_cycles", "t_cl_cycles", "t_rp_cycles"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def access_latency_network_cycles(self, bytes_transferred: int) -> int:
        """Closed-page access latency expressed in network clock cycles."""
        if bytes_transferred < 0:
            raise ValueError("bytes_transferred must be non-negative")
        burst_channel_cycles = (bytes_transferred * 8) / self.bus_width_bits
        channel_cycles = (
            self.t_rcd_cycles + self.t_cl_cycles + self.t_rp_cycles + burst_channel_cycles
        )
        seconds = channel_cycles / self.clock_hz
        return max(1, int(round(seconds * self.network_clock_hz)))


class VaultController:
    """Serialises accesses to one vault and tracks its busy time."""

    def __init__(self, vault_id: int, config: VaultConfig = VaultConfig()) -> None:
        if vault_id < 0:
            raise ValueError("vault_id must be non-negative")
        self.vault_id = vault_id
        self.config = config
        self._busy_until = 0
        self.reads_serviced = 0
        self.writes_serviced = 0

    @property
    def busy_until(self) -> int:
        """Network cycle until which the vault is occupied."""
        return self._busy_until

    def access(self, cycle: int, bytes_transferred: int, is_write: bool) -> int:
        """Queue one access; return the network cycle at which it completes."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        start = max(cycle, self._busy_until)
        latency = self.config.access_latency_network_cycles(bytes_transferred)
        self._busy_until = start + latency
        if is_write:
            self.writes_serviced += 1
        else:
            self.reads_serviced += 1
        return self._busy_until

    def utilisation(self, elapsed_cycles: int) -> float:
        """Fraction of elapsed network cycles the vault was busy."""
        if elapsed_cycles <= 0:
            return 0.0
        return min(1.0, self._busy_until / elapsed_cycles)

    def reset(self) -> None:
        """Clear timing state and counters."""
        self._busy_until = 0
        self.reads_serviced = 0
        self.writes_serviced = 0
