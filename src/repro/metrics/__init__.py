"""Measurement utilities: load sweeps, saturation metrics and text reports."""

from .report import format_heading, format_percentage, format_table
from .saturation import (
    LoadPoint,
    LoadPointSummary,
    LoadSweepResult,
    SweepSummary,
    default_load_points,
    run_load_sweep,
)

__all__ = [
    "LoadPoint",
    "LoadPointSummary",
    "LoadSweepResult",
    "SweepSummary",
    "default_load_points",
    "format_heading",
    "format_percentage",
    "format_table",
    "run_load_sweep",
]
