"""Plain-text report formatting.

The benchmark harnesses print the rows/series of every figure they
regenerate; this module keeps that formatting in one place so the output of
``python -m repro.experiments`` and of the pytest benchmarks is identical.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a fixed-width text table."""
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_heading(title: str) -> str:
    """Format a section heading used above each experiment's table."""
    bar = "=" * len(title)
    return f"{title}\n{bar}"


def format_percentage(value: float) -> str:
    """Format a percentage with one decimal place."""
    return f"{value:+.1f}%"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
