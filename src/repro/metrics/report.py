"""Plain-text report formatting.

The benchmark harnesses print the rows/series of every figure they
regenerate; this module keeps that formatting in one place so the output of
``python -m repro.experiments`` and of the pytest benchmarks is identical.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Format a fixed-width text table."""
    materialised: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in materialised:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_heading(title: str) -> str:
    """Format a section heading used above each experiment's table."""
    bar = "=" * len(title)
    return f"{title}\n{bar}"


def format_percentage(value: float) -> str:
    """Format a percentage with one decimal place."""
    return f"{value:+.1f}%"


def format_simulator_throughput(
    simulated_cycles: int,
    wall_clock_seconds: float,
    flit_hops: int = 0,
    tasks: int = 0,
) -> str:
    """Summarise the simulator's own speed (how fast the kernel ran).

    ``simulated_cycles`` is the total number of cycles processed in
    ``wall_clock_seconds`` of wall-clock time; ``flit_hops`` (when known)
    adds the flits-per-second figure, and ``tasks`` the number of
    simulations the totals cover.  Used by the experiment runner's summary
    and the kernel micro-benchmark so kernel speedups are visible in every
    experiment output.
    """
    if wall_clock_seconds <= 0:
        return "simulator self-throughput: n/a (no timed simulation work)"
    parts = [
        f"simulator self-throughput: "
        f"{_si(simulated_cycles / wall_clock_seconds)}cycles/s"
    ]
    if flit_hops:
        parts.append(f"{_si(flit_hops / wall_clock_seconds)}flits/s")
    tail = f" over {tasks} run(s)" if tasks else ""
    return ", ".join(parts) + f" ({wall_clock_seconds:.2f}s wall-clock{tail})"


def _si(value: float) -> str:
    """Format a rate with an SI magnitude prefix (k / M / G)."""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= threshold:
            return f"{value / threshold:.2f} {suffix}"
    return f"{value:.1f} "


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
