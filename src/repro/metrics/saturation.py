"""Load sweeps and saturation metrics.

The paper's bandwidth metric is the *peak achievable bandwidth per core*:
"the maximum sustainable data rate in number of bits successfully routed per
core per second at saturation with maximum load".  A load sweep runs the
same system at increasing offered loads and takes the maximum accepted
throughput as the peak; the latency-versus-load curve of the same sweep is
what Fig. 3 plots.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids a cycle:
    # noc.stats imports metrics.streaming, which initialises this package)
    from ..noc.stats import SimulationResult


@dataclass(frozen=True)
class LoadPoint:
    """One point of a load sweep."""

    offered_load: float
    result: SimulationResult

    @property
    def bandwidth_gbps_per_core(self) -> float:
        """Accepted bandwidth per core at this offered load."""
        return self.result.bandwidth_gbps_per_core()

    @property
    def average_latency_cycles(self) -> float:
        """Average packet latency at this offered load."""
        return self.result.average_packet_latency_cycles()


@dataclass
class LoadSweepResult:
    """All points of one load sweep, in increasing offered-load order.

    Holds the full :class:`SimulationResult` of every point.  All
    saturation *analysis* (acceptance, sustainable peak, latency curve) is
    delegated to :class:`SweepSummary`, the compact per-point view the
    parallel runner caches, so serial sweeps and reassembled cached sweeps
    share one implementation and stay bit-identical by construction.
    """

    points: List[LoadPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points.sort(key=lambda p: p.offered_load)

    @property
    def loads(self) -> List[float]:
        """Offered loads of the sweep."""
        return [p.offered_load for p in self.points]

    def summary(self) -> "SweepSummary":
        """The compact per-point summary view of this sweep."""
        return SweepSummary.from_load_sweep(self)

    def peak_bandwidth_gbps_per_core(self) -> float:
        """Peak accepted bandwidth per core over the sweep [Gb/s]."""
        return self.summary().peak_bandwidth_gbps_per_core()

    def peak_accepted_flits_per_core_per_cycle(self) -> float:
        """Peak accepted throughput in flits per core per cycle."""
        if not self.points:
            return 0.0
        return max(
            p.result.accepted_flits_per_core_per_cycle() for p in self.points
        )

    def acceptance_ratio(self, point: LoadPoint) -> float:
        """Accepted / offered flit rate at one load point.

        The offered flit rate is the offered packet load times the nominal
        packet length; a ratio near one means the network sustains the full
        offered traffic mix at that load.
        """
        return LoadPointSummary.from_result(
            point.offered_load, point.result
        ).acceptance_ratio()

    def sustainable_points(self, acceptance: float = 0.9) -> List[LoadPoint]:
        """Load points whose offered traffic mix is (almost) fully delivered."""
        if not 0.0 < acceptance <= 1.0:
            raise ValueError("acceptance must be in (0, 1]")
        return [p for p in self.points if self.acceptance_ratio(p) >= acceptance]

    def sustainable_bandwidth_gbps_per_core(self, acceptance: float = 0.9) -> float:
        """Peak *sustainable* bandwidth per core [Gb/s].

        This is the paper's "maximum sustainable data rate ... successfully
        routed per core per second at saturation": the highest accepted
        bandwidth among load points where the network still delivers (at
        least ``acceptance`` of) the full offered traffic mix.  Beyond that
        point the accepted traffic is no longer representative of the
        offered pattern (long-path packets are squeezed out first), so those
        points are excluded; if no point qualifies the lowest-load point is
        used.
        """
        return self.summary().sustainable_bandwidth_gbps_per_core(acceptance)

    def result_at_sustainable_peak(self, acceptance: float = 0.9) -> SimulationResult:
        """Simulation result at the sustainable-peak load point."""
        index = self.summary().index_of_sustainable_peak(acceptance)
        return self.points[index].result

    def result_at_peak(self) -> SimulationResult:
        """The simulation result of the highest-throughput point."""
        if not self.points:
            raise ValueError("load sweep has no points")
        return max(
            self.points, key=lambda p: p.bandwidth_gbps_per_core
        ).result

    def latency_curve(self) -> List[Tuple[float, float]]:
        """(offered load, average packet latency) pairs, the Fig. 3 series."""
        return [(p.offered_load, p.average_latency_cycles) for p in self.points]

    def zero_load_latency_cycles(self) -> float:
        """Latency of the lowest-load point (the zero-load estimate)."""
        if not self.points:
            return 0.0
        return self.points[0].average_latency_cycles

    def saturation_load(self, latency_factor: float = 3.0) -> Optional[float]:
        """First offered load whose latency exceeds ``latency_factor`` x zero-load.

        Returns ``None`` if the network never saturates within the sweep.
        """
        return self.summary().saturation_load(latency_factor)

    def average_packet_energy_nj_at_peak(self) -> float:
        """Average packet energy at the peak-throughput point [nJ]."""
        if not self.points:
            return 0.0
        return self.result_at_peak().average_packet_energy_nj()


@dataclass(frozen=True)
class LoadPointSummary:
    """JSON-serialisable summary of one simulation run at one offered load.

    This is the unit of result the parallel experiment runner caches on
    disk: it carries exactly the counters the figure experiments derive
    their metrics from, so a cached point reproduces the same numbers as
    the :class:`SimulationResult` it was taken from, bit for bit.
    """

    offered_load: float
    nominal_packet_length_flits: int
    accepted_flits_per_core_per_cycle: float
    bandwidth_gbps_per_core: float
    average_latency_cycles: float
    average_packet_energy_nj: float
    system_packet_energy_nj: float
    packets_delivered: int
    delivery_ratio: float
    # Resilience counters (all zero on fault-free runs; carried through the
    # result cache so the fig7 sweep can report them from cached points).
    fault_events_applied: int = 0
    links_failed: int = 0
    transceivers_failed: int = 0
    packets_rerouted: int = 0
    packets_dropped_unroutable: int = 0
    partitions_reported: int = 0
    # Wireless-plane energy attribution (all zero/empty on wired runs;
    # carried through the result cache so the fig8 MAC study can report —
    # and reconcile — per-channel energy from cached points).  Channel ids
    # are stored as strings because the payload round-trips through JSON.
    wireless_energy_pj: float = 0.0
    mac_control_energy_pj: float = 0.0
    transceiver_static_energy_pj: float = 0.0
    channel_energy_pj: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Which engine actually executed the run ("scalar", "vector",
    # "vector-batched"); provenance, not simulated behaviour, so excluded
    # from equality — cached points from different engines stay equal.
    # Empty on cache entries written before the field existed.
    engine_used: str = field(default="", compare=False)

    @classmethod
    def from_result(
        cls, offered_load: float, result: SimulationResult
    ) -> "LoadPointSummary":
        """Summarise one simulation result at the given offered load."""
        return cls(
            offered_load=offered_load,
            nominal_packet_length_flits=result.nominal_packet_length_flits,
            accepted_flits_per_core_per_cycle=(
                result.accepted_flits_per_core_per_cycle()
            ),
            bandwidth_gbps_per_core=result.bandwidth_gbps_per_core(),
            average_latency_cycles=result.average_packet_latency_cycles(),
            average_packet_energy_nj=result.average_packet_energy_nj(),
            system_packet_energy_nj=result.system_packet_energy_nj(),
            packets_delivered=result.packets_delivered,
            delivery_ratio=result.delivery_ratio(),
            fault_events_applied=result.fault_events_applied,
            links_failed=result.links_failed,
            transceivers_failed=result.transceivers_failed,
            packets_rerouted=result.packets_rerouted,
            packets_dropped_unroutable=result.packets_dropped_unroutable,
            partitions_reported=result.partitions_reported,
            wireless_energy_pj=result.energy.wireless_pj,
            mac_control_energy_pj=result.energy.mac_control_pj,
            transceiver_static_energy_pj=result.energy.transceiver_static_pj,
            channel_energy_pj={
                str(channel_id): dict(components)
                for channel_id, components in result.channel_energy_pj.items()
            },
            engine_used=result.engine_used,
        )

    def acceptance_ratio(self) -> float:
        """Accepted / offered flit rate (same arithmetic as the load sweep)."""
        offered_flits = self.offered_load * self.nominal_packet_length_flits
        if offered_flits <= 0:
            return 1.0
        return self.accepted_flits_per_core_per_cycle / offered_flits

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view, the JSON payload stored by the result cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "LoadPointSummary":
        """Rebuild a summary from its :meth:`as_dict` payload."""
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})


@dataclass
class SweepSummary:
    """A load sweep reassembled from per-point summaries.

    Mirrors the saturation analysis of :class:`LoadSweepResult` (same
    acceptance criterion, same sustainable-peak selection) but holds only
    the compact :class:`LoadPointSummary` records, so it can be assembled
    from cached / parallel-executed tasks and round-trips through JSON.
    """

    points: List[LoadPointSummary] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.points.sort(key=lambda p: p.offered_load)

    @classmethod
    def from_load_sweep(cls, sweep: "LoadSweepResult") -> "SweepSummary":
        """Summarise every point of a full (serial) load sweep."""
        return cls(
            points=[
                LoadPointSummary.from_result(p.offered_load, p.result)
                for p in sweep.points
            ]
        )

    @property
    def loads(self) -> List[float]:
        """Offered loads of the sweep."""
        return [p.offered_load for p in self.points]

    def peak_bandwidth_gbps_per_core(self) -> float:
        """Peak accepted bandwidth per core over the sweep [Gb/s]."""
        if not self.points:
            return 0.0
        return max(p.bandwidth_gbps_per_core for p in self.points)

    def sustainable_points(self, acceptance: float = 0.9) -> List[LoadPointSummary]:
        """Points whose offered traffic mix is (almost) fully delivered."""
        if not 0.0 < acceptance <= 1.0:
            raise ValueError("acceptance must be in (0, 1]")
        return [p for p in self.points if p.acceptance_ratio() >= acceptance]

    def sustainable_bandwidth_gbps_per_core(self, acceptance: float = 0.9) -> float:
        """Peak *sustainable* bandwidth per core [Gb/s].

        Identical selection rule to
        :meth:`LoadSweepResult.sustainable_bandwidth_gbps_per_core`.
        """
        candidates = self.sustainable_points(acceptance)
        if not candidates:
            candidates = self.points[:1]
        if not candidates:
            return 0.0
        return max(p.bandwidth_gbps_per_core for p in candidates)

    def index_of_sustainable_peak(self, acceptance: float = 0.9) -> int:
        """Index (into the sorted points) of the sustainable-peak point.

        Lets callers holding richer per-point objects sorted the same way
        (e.g. :class:`LoadSweepResult`) locate the selected point without
        re-implementing the selection rule.
        """
        if not 0.0 < acceptance <= 1.0:
            raise ValueError("acceptance must be in (0, 1]")
        candidates = [
            index
            for index, point in enumerate(self.points)
            if point.acceptance_ratio() >= acceptance
        ]
        if not candidates and self.points:
            candidates = [0]
        if not candidates:
            raise ValueError("sweep summary has no points")
        return max(candidates, key=lambda i: self.points[i].bandwidth_gbps_per_core)

    def point_at_sustainable_peak(self, acceptance: float = 0.9) -> LoadPointSummary:
        """The summary at the sustainable-peak load point."""
        return self.points[self.index_of_sustainable_peak(acceptance)]

    def latency_curve(self) -> List[Tuple[float, float]]:
        """(offered load, average packet latency) pairs, the Fig. 3 series."""
        return [(p.offered_load, p.average_latency_cycles) for p in self.points]

    def zero_load_latency_cycles(self) -> float:
        """Latency of the lowest-load point (the zero-load estimate)."""
        if not self.points:
            return 0.0
        return self.points[0].average_latency_cycles

    def saturation_load(self, latency_factor: float = 3.0) -> Optional[float]:
        """First offered load whose latency exceeds ``latency_factor`` x zero-load."""
        if latency_factor <= 1.0:
            raise ValueError("latency_factor must exceed 1")
        baseline = self.zero_load_latency_cycles()
        if baseline <= 0:
            return None
        for point in self.points:
            if point.average_latency_cycles > latency_factor * baseline:
                return point.offered_load
        return None

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (list of per-point payloads)."""
        return {"points": [p.as_dict() for p in self.points]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepSummary":
        """Rebuild a sweep summary from its :meth:`as_dict` payload."""
        return cls(
            points=[LoadPointSummary.from_dict(p) for p in payload.get("points", [])]
        )


def default_load_points(
    low: float = 0.0005, high: float = 0.05, count: int = 7
) -> List[float]:
    """Logarithmically spaced offered loads, mirroring the Fig. 3 axis."""
    if low <= 0 or high <= 0 or high <= low:
        raise ValueError("need 0 < low < high")
    if count < 2:
        raise ValueError("count must be at least 2")
    ratio = math.log(high / low)
    return [low * math.exp(ratio * i / (count - 1)) for i in range(count)]


def run_load_sweep(
    run_at_load: Callable[[float], SimulationResult],
    loads: Sequence[float],
) -> LoadSweepResult:
    """Run ``run_at_load`` at every offered load and collect the results."""
    if not loads:
        raise ValueError("loads must not be empty")
    points = [LoadPoint(offered_load=load, result=run_at_load(load)) for load in loads]
    return LoadSweepResult(points=points)
