"""Constant-memory streaming accumulators for per-packet samples.

A saturated vectorised run delivers millions of packets; storing every
latency/energy sample in the :class:`~repro.noc.stats.SimulationResult`
lists makes memory grow linearly with simulated cycles.  When a run is
configured with ``SimulationConfig(metrics="streaming")`` the kernel feeds
each delivered packet's samples into the accumulators in this module
instead, which keep the exact aggregates the
:class:`~repro.metrics.saturation.LoadPointSummary` layer consumes (count,
mean, max) plus P² estimates of the 50th/95th/99th latency percentiles —
all in O(1) memory per run.

The P² algorithm (Jain & Chlamtac, CACM 1985) maintains five markers per
tracked quantile and adjusts their heights with a piecewise-parabolic
update; until five samples have arrived the estimator stores the samples
directly and answers with the same nearest-rank convention as the sampled
path (:meth:`SimulationResult.latency_percentile_cycles`), so tiny runs
agree bit-for-bit between the two metrics modes.
"""

from __future__ import annotations

from typing import List, Tuple

#: Latency percentiles tracked by the streaming path.  The sampled path can
#: answer any percentile from its stored list; the streaming path only
#: maintains markers for these three (the ones reports consume).
TRACKED_PERCENTILES = (50.0, 95.0, 99.0)


class StreamingMoments:
    """Count / mean / max of a stream, in O(1) memory.

    The mean uses Welford-style incremental updates, so it stays accurate
    for long streams where a naive running sum of millions of samples
    would accumulate float error.
    """

    __slots__ = ("count", "mean", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.max = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.mean += (value - self.mean) / self.count
        if self.count == 1 or value > self.max:
            self.max = value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"StreamingMoments(count={self.count}, mean={self.mean:.3f}, max={self.max})"


class P2Quantile:
    """P² estimator of one quantile of a stream, in O(1) memory."""

    __slots__ = ("percentile", "_p", "_initial", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, percentile: float) -> None:
        if not 0.0 < percentile < 100.0:
            raise ValueError(f"percentile must be in (0, 100), got {percentile}")
        self.percentile = percentile
        self._p = percentile / 100.0
        #: First five observations, kept verbatim until the markers start.
        self._initial: List[float] = []
        self._heights: List[float] = []
        self._positions: List[int] = []
        self._desired: List[float] = []
        p = self._p
        self._rates = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    @property
    def count(self) -> int:
        if self._positions:
            return self._positions[4]
        return len(self._initial)

    def add(self, value: float) -> None:
        value = float(value)
        if not self._positions:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1, 2, 3, 4, 5]
                p = self._p
                self._desired = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return
        q = self._heights
        n = self._positions
        # Locate the marker cell the new observation falls into.
        if value < q[0]:
            q[0] = value
            cell = 0
        elif value >= q[4]:
            q[4] = value
            cell = 3
        else:
            cell = 0
            while value >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            self._desired[i] += self._rates[i]
        # Adjust the three interior markers towards their desired positions.
        for i in range(1, 4):
            d = self._desired[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1) or (d <= -1.0 and n[i - 1] - n[i] < -1):
                step = 1 if d >= 1.0 else -1
                candidate = self._parabolic(i, step)
                if not q[i - 1] < candidate < q[i + 1]:
                    candidate = self._linear(i, step)
                q[i] = candidate
                n[i] += step

    def _parabolic(self, i: int, step: int) -> float:
        q = self._heights
        n = self._positions
        return q[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, step: int) -> float:
        q = self._heights
        n = self._positions
        return q[i] + step * (q[i + step] - q[i]) / (n[i + step] - n[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any sample)."""
        if self._positions:
            return self._heights[2]
        if not self._initial:
            return 0.0
        # Fewer than five samples: answer exactly, with the same
        # nearest-rank convention as the sampled path.
        ordered = sorted(self._initial)
        index = int(round(self._p * (len(ordered) - 1)))
        return float(ordered[index])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"P2Quantile(p{self.percentile:g}={self.value():.3f}, count={self.count})"


class StreamingSampleStats:
    """Moments plus tracked percentiles of one per-packet sample stream."""

    __slots__ = ("moments", "quantiles")

    def __init__(self, percentiles: Tuple[float, ...] = TRACKED_PERCENTILES) -> None:
        self.moments = StreamingMoments()
        self.quantiles = {p: P2Quantile(p) for p in percentiles}

    @property
    def count(self) -> int:
        return self.moments.count

    @property
    def mean(self) -> float:
        return self.moments.mean

    @property
    def max(self) -> float:
        return self.moments.max

    def add(self, value: float) -> None:
        self.moments.add(value)
        for quantile in self.quantiles.values():
            quantile.add(value)

    def percentile(self, percentile: float) -> float:
        """The tracked percentile estimate; raises on untracked ones."""
        quantile = self.quantiles.get(float(percentile))
        if quantile is None:
            tracked = ", ".join(f"{p:g}" for p in sorted(self.quantiles))
            raise ValueError(
                f"streaming metrics track only percentiles [{tracked}], got {percentile}"
            )
        return quantile.value()
