"""Cycle-accurate wormhole / virtual-channel NoC simulator.

This is the simulation substrate every experiment in the reproduction runs
on: flit-level progress per cycle, 8 VCs x 16-flit buffers per port,
three-stage pipelined switches, per-link serialisation rates and energies,
and an optional wireless fabric with MAC-arbitrated shared channels.
"""

from .config import NetworkConfig, WirelessConfig
from .engine import ENGINES, METRICS_MODES, SimulationConfig, SimulationStallError, Simulator
from .fabric import Fabric, FabricError, WiredFabric, WirelessFabric
from .flit import Flit, FlitType, flit_type_for
from .kernel import (
    ActiveSetScheduler,
    DenseScheduler,
    Scheduler,
    SimulationKernel,
    make_scheduler,
)
from .link import LinkCharacteristics, WirelessLinkSettings, characterize_link
from .network import Network, NetworkBuildError
from .packet import Packet
from .pool import FlitPool, PacketPool, PacketView
from .port import LOCAL_PORT, WIRELESS_PORT, InputPort, OutputPort
from .stats import SimulationResult
from .switch import Switch, SwitchConfigError
from .virtual_channel import VirtualChannel

__all__ = [
    "ActiveSetScheduler",
    "DenseScheduler",
    "ENGINES",
    "METRICS_MODES",
    "Fabric",
    "FabricError",
    "Flit",
    "FlitPool",
    "FlitType",
    "InputPort",
    "LOCAL_PORT",
    "LinkCharacteristics",
    "Network",
    "NetworkBuildError",
    "NetworkConfig",
    "OutputPort",
    "Packet",
    "PacketPool",
    "PacketView",
    "Scheduler",
    "SimulationConfig",
    "SimulationKernel",
    "SimulationResult",
    "SimulationStallError",
    "Simulator",
    "Switch",
    "SwitchConfigError",
    "VirtualChannel",
    "WIRELESS_PORT",
    "WiredFabric",
    "WirelessConfig",
    "WirelessFabric",
    "WirelessLinkSettings",
    "characterize_link",
    "flit_type_for",
    "make_scheduler",
]
