"""Checkpoint/restore for the simulation kernel.

A checkpoint is a :class:`KernelCheckpoint`: the complete mutable state of
one mid-run :class:`~repro.noc.kernel.SimulationKernel`, captured as a
pickle of the kernel object graph at a cycle boundary.  Everything a cycle
can mutate — the :class:`~repro.noc.pool.PacketPool` arrays, VC rings and
port round-robin state, scheduler wake sets, traffic-model RNGs, the
energy accountant, the fault injector's event cursor — is reachable from
the kernel, and pickling the graph preserves the aliasing between them
(e.g. the kernel state's hot array caches stay views of the pool's lists),
so a restored kernel continues the run *bit-identically* to one that was
never interrupted.  ``tests/test_checkpoint.py`` pins that guarantee on
the golden-fingerprint matrix.

Checkpoints are taken at cycle boundaries only (after the cycle's phases
and watchdog ran), so no phase-internal scratch state exists at capture
time.  The engine that produced a checkpoint is recorded: a scalar
checkpoint can be resumed under either engine request (a ``"vector"``
request simply continues the scalar kernel, which is bit-identical by
construction), but a vector checkpoint resumed under an explicit
``"scalar"`` request raises :class:`CheckpointEngineMismatchError` — the
scalar phases never maintained the VC object state the snapshot lacks.

On-disk format: a single pickle of the :class:`KernelCheckpoint`
dataclass, written atomically (tempfile + ``os.replace``) so a crash
mid-write can never leave a truncated checkpoint that parses.
"""

from __future__ import annotations

import os
import pickle
import sys
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Union

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointError",
    "CheckpointEngineMismatchError",
    "KernelCheckpoint",
    "graph_pickling_limit",
    "load_checkpoint",
    "save_checkpoint",
]

#: Bumped whenever the pickled kernel graph changes shape incompatibly.
#: A version mismatch is a :class:`CheckpointError` at load time, never a
#: silent misresume.  v2: the vector state's owner/rev dicts became flat
#: claim-index lists and the arrivals dict became a calendar-wheel of
#: preallocated arrays (PR 10) — v1 vector checkpoints cannot resume.
CHECKPOINT_SCHEMA_VERSION = 2


class CheckpointError(RuntimeError):
    """A checkpoint could not be read, validated, or resumed."""


@contextmanager
def graph_pickling_limit(num_switches: int) -> Iterator[None]:
    """Temporarily widen the recursion limit for pickling a kernel graph.

    Pickling recurses the fabric's switch-port-VC chain hop by hop (the
    pickler enters each ``Switch → InputPort → VirtualChannel →
    OutputPort → Switch`` link before memoising it), costing roughly 20
    interpreter frames per switch on the longest unmemoised path.  The
    budget below is ~3x that, plus generous headroom for the caller's own
    stack — scaled to the topology so any architecture size snapshots
    without touching the process-wide default.  *Un*pickling builds
    iteratively off the memo and needs no widening.
    """
    limit = sys.getrecursionlimit()
    needed = 2000 + 64 * max(0, num_switches)
    if needed > limit:
        sys.setrecursionlimit(needed)
    try:
        yield
    finally:
        sys.setrecursionlimit(limit)


class CheckpointEngineMismatchError(CheckpointError):
    """A checkpoint was resumed under an engine that cannot continue it.

    Raised when a vector-engine snapshot is restored by an explicit
    ``engine="scalar"`` request: the scalar phases read per-VC object state
    that the vector engine never maintained, so continuing would not be
    bit-identical.  The converse direction is fine — a ``"vector"`` request
    resumes a scalar checkpoint with the scalar phases, exactly like the
    vector engine's transparent fallback on wireless or faulted runs.
    """


@dataclass(frozen=True)
class KernelCheckpoint:
    """One resumable kernel snapshot.

    ``engine`` is the engine that was *actually driving* the run
    (``"scalar"`` or ``"vector"``) — after fallback, not as configured.
    ``cycle`` is the last fully executed cycle; resuming continues at
    ``cycle + 1``.  ``payload`` is the pickled kernel object graph.
    """

    engine: str
    cycle: int
    payload: bytes
    version: int = CHECKPOINT_SCHEMA_VERSION


def save_checkpoint(checkpoint: KernelCheckpoint, path: Union[str, Path]) -> None:
    """Write ``checkpoint`` to ``path`` atomically."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    handle, temp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.name, suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            pickle.dump(checkpoint, stream, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp_name, target)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: Union[str, Path]) -> KernelCheckpoint:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    try:
        with open(path, "rb") as stream:
            checkpoint = pickle.load(stream)
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {path}: {error}") from error
    except (pickle.UnpicklingError, EOFError, AttributeError, ValueError) as error:
        raise CheckpointError(f"corrupt checkpoint {path}: {error}") from error
    if not isinstance(checkpoint, KernelCheckpoint):
        raise CheckpointError(
            f"checkpoint {path} holds a {type(checkpoint).__name__}, "
            "expected KernelCheckpoint"
        )
    if checkpoint.version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema v{checkpoint.version}, "
            f"this build reads v{CHECKPOINT_SCHEMA_VERSION}"
        )
    return checkpoint
