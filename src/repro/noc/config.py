"""Simulator-level configuration.

Groups every knob of the cycle-accurate model with the defaults used in the
paper's evaluation (Section IV): 8 VCs x 16-flit buffers on every port,
64-flit packets of 32-bit flits, three-stage switches clocked at 2.5 GHz.
The wireless-specific entries are the calibration knobs discussed in
DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .pool import MAX_PACKET_LENGTH_FLITS
from ..wireless.mac.registry import UnknownMacError, mac_spec
from ..energy.technology import (
    DEFAULT_PACKET_LENGTH_FLITS,
    DEFAULT_TECHNOLOGY,
    DEFAULT_VC_BUFFER_DEPTH_FLITS,
    DEFAULT_VIRTUAL_CHANNELS,
    MAC_CONTROL_PACKET_BITS,
    SWITCH_PIPELINE_STAGES,
    TOKEN_PASS_LATENCY_CYCLES,
    Technology,
)


@dataclass(frozen=True)
class WirelessConfig:
    """Configuration of the wireless channel, transceivers and MAC."""

    #: MAC protocol, any name from the MAC registry
    #: (:func:`repro.wireless.mac.available_macs`): ``"control_packet"``
    #: (the paper's proposal), ``"token"`` (the baseline token-passing MAC
    #: of [7]), ``"tdma"`` (static slotted schedule) or ``"fdma"``
    #: (per-WI dedicated sub-bands).
    mac: str = "control_packet"
    #: Number of orthogonal frequency channels the WIs are divided over.
    #: One 16 GHz-wide channel is the paper's literal physical layer; the
    #: multichip experiments use several channels so the aggregate wireless
    #: bisection is comparable to the interposer baseline (DESIGN.md §4).
    num_channels: int = 6
    #: Channel occupancy per transferred flit (1 = flit-clock granularity).
    cycles_per_flit: int = 1
    #: Extra latency of a wireless hop beyond the switch pipeline.
    extra_latency_cycles: int = 1
    #: Cycles needed to broadcast one MAC control packet.
    control_packet_cycles: int = 3
    #: Bits of one MAC control packet (energy accounting).
    control_packet_bits: int = MAC_CONTROL_PACKET_BITS
    #: Maximum (DestWI, PktID, NumFlits) tuples per control packet; bounded
    #: by the number of output VCs of the transmitting WI.
    max_control_tuples: int = DEFAULT_VIRTUAL_CHANNELS
    #: Token hand-off latency of the baseline token MAC.
    token_pass_latency_cycles: int = TOKEN_PASS_LATENCY_CYCLES
    #: Slot length of the static TDMA MAC [cycles]; ``None`` sizes the slot
    #: to one packet's serialisation time.
    tdma_slot_cycles: Optional[int] = None
    #: Guard (synchronisation) time at the start of every TDMA slot.
    tdma_guard_cycles: int = 1
    #: Whether receivers not addressed by the current control packet are
    #: power-gated ("sleepy transceivers" [17]).
    sleepy_receivers: bool = True
    #: WI input-buffer depth override.  ``None`` keeps the normal per-VC
    #: depth; the token MAC needs whole-packet buffering and therefore
    #: defaults to the packet length when left unset.
    wi_buffer_depth_flits: Optional[int] = None

    def __post_init__(self) -> None:
        try:
            mac_spec(self.mac)
        except UnknownMacError as error:
            raise ValueError(str(error)) from None
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.cycles_per_flit <= 0:
            raise ValueError("cycles_per_flit must be positive")
        if self.control_packet_cycles <= 0:
            raise ValueError("control_packet_cycles must be positive")
        if self.max_control_tuples <= 0:
            raise ValueError("max_control_tuples must be positive")
        if self.tdma_slot_cycles is not None and self.tdma_slot_cycles <= 0:
            raise ValueError("tdma_slot_cycles must be positive")
        if self.tdma_guard_cycles < 0:
            raise ValueError("tdma_guard_cycles must be non-negative")
        if (
            self.tdma_slot_cycles is not None
            and self.tdma_guard_cycles >= self.tdma_slot_cycles
        ):
            raise ValueError(
                "tdma_guard_cycles must be smaller than tdma_slot_cycles "
                f"(got guard={self.tdma_guard_cycles}, "
                f"slot={self.tdma_slot_cycles})"
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Configuration of switches, buffers, packets and the wireless layer."""

    virtual_channels: int = DEFAULT_VIRTUAL_CHANNELS
    buffer_depth_flits: int = DEFAULT_VC_BUFFER_DEPTH_FLITS
    packet_length_flits: int = DEFAULT_PACKET_LENGTH_FLITS
    switch_pipeline_stages: int = SWITCH_PIPELINE_STAGES
    #: Flits a core switch can inject per cycle from its local endpoints.
    injection_width_flits: int = 1
    #: Flits a switch can eject per cycle per attached endpoint.
    ejection_width_per_endpoint: int = 1
    wireless: WirelessConfig = field(default_factory=WirelessConfig)
    technology: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    #: Whether static energy is included in average packet energy.
    include_static_energy: bool = True

    def __post_init__(self) -> None:
        if self.virtual_channels <= 0:
            raise ValueError("virtual_channels must be positive")
        if self.buffer_depth_flits <= 0:
            raise ValueError("buffer_depth_flits must be positive")
        if self.packet_length_flits <= 0:
            raise ValueError("packet_length_flits must be positive")
        if self.packet_length_flits > MAX_PACKET_LENGTH_FLITS:
            # The packed flit representation reserves FLIT_INDEX_BITS for
            # the flit index; reject oversized packets at configuration
            # time instead of mid-run at the first enqueue.
            raise ValueError(
                "packet_length_flits must be at most "
                f"{MAX_PACKET_LENGTH_FLITS} (the packed flit index "
                f"ceiling), got {self.packet_length_flits}"
            )
        if self.injection_width_flits <= 0:
            raise ValueError("injection_width_flits must be positive")
        if self.ejection_width_per_endpoint <= 0:
            raise ValueError("ejection_width_per_endpoint must be positive")
        if self.wireless.mac == "tdma" and self.wireless.tdma_slot_cycles is None:
            # The default TDMA slot is one packet's serialisation time; the
            # guard must fit inside it, and only this config object knows
            # the packet length — fail here, not at fabric construction.
            derived_slot = self.packet_length_flits * self.wireless.cycles_per_flit
            if self.wireless.tdma_guard_cycles >= derived_slot:
                raise ValueError(
                    "tdma_guard_cycles must be smaller than the derived "
                    f"TDMA slot of {derived_slot} cycle(s) "
                    "(packet_length_flits x cycles_per_flit); set "
                    "tdma_slot_cycles explicitly for longer slots"
                )

    @property
    def wi_buffer_depth(self) -> int:
        """Effective per-VC buffer depth at switches carrying a WI.

        MACs that only transmit whole packets (the registry spec's
        ``whole_packet_buffering`` flag — the token MAC) force their WIs to
        buffer an entire packet (Section III-D); partial-packet MACs need
        far less — two normal buffer windows are enough to keep the channel
        streaming between consecutive bursts.
        """
        if self.wireless.wi_buffer_depth_flits is not None:
            return self.wireless.wi_buffer_depth_flits
        if mac_spec(self.wireless.mac).whole_packet_buffering:
            return max(self.buffer_depth_flits, self.packet_length_flits)
        return 2 * self.buffer_depth_flits
