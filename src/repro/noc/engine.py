"""The cycle-accurate simulation engine.

Mirrors the simulator described in Section IV of the paper: it
"characterizes the multichip architecture and models the progress of the
flits over the switches and links per cycle accounting for those flits that
reach the destination as well as those that are stalled".

Each simulated cycle performs, in order:

1. **Arrivals** — flits whose link traversal completes this cycle are
   appended to their reserved downstream VC buffers.
2. **Traffic generation** — the traffic model emits new packets into the
   per-endpoint source queues; routes are assigned from the pre-computed
   shortest paths.
3. **Injection** — source queues feed flits into free local-port VCs
   (one flit per cycle per switch, more for multi-endpoint memory dies).
4. **MAC update** — the wireless fabric advances its channel arbitration
   and transceiver power states.
5. **Switch allocation and traversal** — every switch arbitrates its output
   ports among the VCs requesting them (round-robin), moves the winning
   flits onto links / the wireless channel / the ejection port, performs
   credit-equivalent space reservation downstream, and charges energy.

A watchdog aborts the run if no flit makes progress for a configurable
number of cycles while traffic is still in flight, so routing or protocol
bugs surface as loud errors instead of silent hangs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..energy import EnergyAccountant
from ..routing.base import BaseRouter
from ..topology.graph import TopologyGraph
from ..traffic.base import TrafficModel, TrafficRequest
from .config import NetworkConfig
from .flit import Flit
from .network import Network
from .packet import Packet
from .stats import SimulationResult
from .switch import Switch
from .virtual_channel import VirtualChannel


class SimulationStallError(RuntimeError):
    """Raised when no flit has moved for ``watchdog_cycles`` cycles."""


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and robustness parameters of one simulation."""

    cycles: int = 3000
    warmup_cycles: int = 300
    watchdog_cycles: int = 4000
    max_source_queue_packets: int = 16
    raise_on_stall: bool = True

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if not 0 <= self.warmup_cycles < self.cycles:
            raise ValueError("warmup_cycles must be in [0, cycles)")
        if self.watchdog_cycles <= 0:
            raise ValueError("watchdog_cycles must be positive")
        if self.max_source_queue_packets <= 0:
            raise ValueError("max_source_queue_packets must be positive")


class Simulator:
    """Cycle-accurate simulation of one architecture under one traffic model."""

    def __init__(
        self,
        topology: TopologyGraph,
        router: BaseRouter,
        traffic: TrafficModel,
        network_config: Optional[NetworkConfig] = None,
        simulation_config: Optional[SimulationConfig] = None,
    ) -> None:
        self.topology = topology
        self.router = router
        self.traffic = traffic
        self.network_config = network_config or NetworkConfig()
        self.simulation_config = simulation_config or SimulationConfig()

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Execute the configured number of cycles and return the results."""
        config = self.simulation_config
        net_config = self.network_config
        self.traffic.reset()

        network = Network(self.topology, net_config)
        accountant = EnergyAccountant(
            technology=net_config.technology,
            include_static=net_config.include_static_energy,
        )
        fabric = network.wireless_fabric
        if fabric is not None:
            fabric.bind_accountant(accountant)

        result = SimulationResult(
            cycles=config.cycles,
            warmup_cycles=config.warmup_cycles,
            num_cores=len(self.topology.cores),
            flit_width_bits=net_config.technology.flit_width_bits,
            clock_frequency_hz=net_config.technology.clock_frequency_hz,
            nominal_packet_length_flits=net_config.packet_length_flits,
            include_static_energy=net_config.include_static_energy,
        )

        state = _RunState(network, accountant, result, config, net_config, self)
        switches = [network.switches[sid] for sid in sorted(network.switches)]
        injecting_switches = [s for s in switches if s.endpoints]

        for cycle in range(config.cycles):
            state.cycle = cycle
            state.process_arrivals(cycle)
            state.generate_traffic(cycle)
            for switch in injecting_switches:
                state.inject(switch, cycle)
            if fabric is not None:
                fabric.update(cycle)
            for switch in switches:
                state.allocate(switch, cycle)
            state.check_watchdog(cycle)
            if state.stalled:
                break

        accountant.record_static(
            cycles=state.cycle + 1,
            total_switch_static_mw=network.total_switch_static_power_mw,
        )
        if fabric is not None:
            accountant.add_transceiver_static_energy(
                fabric.total_transceiver_static_energy_pj()
            )
            result.mac_statistics = fabric.mac_statistics()
            result.transceiver_sleep_fraction = fabric.average_sleep_fraction()

        result.energy = accountant.breakdown
        result.stalled = state.stalled
        if result.num_cores and config.cycles:
            result.offered_load_packets_per_core_per_cycle = result.packets_offered / (
                result.num_cores * config.cycles
            )
        return result


class _RunState:
    """Mutable per-run state of the engine (kept separate from the facade)."""

    def __init__(
        self,
        network: Network,
        accountant: EnergyAccountant,
        result: SimulationResult,
        config: SimulationConfig,
        net_config: NetworkConfig,
        simulator: Simulator,
    ) -> None:
        self.network = network
        self.accountant = accountant
        self.result = result
        self.config = config
        self.net_config = net_config
        self.simulator = simulator
        self.cycle = 0
        self.stalled = False
        self.last_progress_cycle = 0
        self.next_packet_id = 0
        self.source_queues: Dict[int, Deque[Packet]] = {
            endpoint_id: deque() for endpoint_id in network.endpoint_switch
        }
        self.arrivals: Dict[int, List[Tuple[VirtualChannel, Flit]]] = {}
        self.switch_energy_pj = network.switch_dynamic_energy_pj_per_flit

    # ------------------------------------------------------------------
    # Phase 1: arrivals.
    # ------------------------------------------------------------------

    def process_arrivals(self, cycle: int) -> None:
        due = self.arrivals.pop(cycle, None)
        if not due:
            return
        for vc, flit in due:
            vc.deliver(flit)
        self.last_progress_cycle = cycle

    # ------------------------------------------------------------------
    # Phase 2: traffic generation.
    # ------------------------------------------------------------------

    def generate_traffic(self, cycle: int) -> None:
        for request in self.simulator.traffic.generate(cycle):
            self.enqueue_request(request, cycle)

    def enqueue_request(self, request: TrafficRequest, cycle: int) -> None:
        """Turn a traffic request into a routed packet in its source queue."""
        self.result.packets_offered += 1
        queue = self.source_queues.get(request.src_endpoint)
        if queue is None:
            raise ValueError(f"unknown source endpoint {request.src_endpoint}")
        if len(queue) >= self.config.max_source_queue_packets:
            return  # finite source queue: the request is dropped at the source
        src_switch = self.network.switch_for_endpoint(request.src_endpoint)
        dst_switch = self.network.switch_for_endpoint(request.dst_endpoint)
        if src_switch.switch_id == dst_switch.switch_id:
            route = [src_switch.switch_id]
        else:
            route = self.simulator.router.route(
                src_switch.switch_id, dst_switch.switch_id
            )
        length = request.length_flits or self.net_config.packet_length_flits
        packet = Packet(
            packet_id=self.next_packet_id,
            src_endpoint=request.src_endpoint,
            dst_endpoint=request.dst_endpoint,
            src_switch=src_switch.switch_id,
            dst_switch=dst_switch.switch_id,
            length_flits=length,
            generation_cycle=cycle,
            route=route,
            is_memory_access=request.is_memory_access,
            is_reply=request.is_reply,
            measured=cycle >= self.config.warmup_cycles,
            traffic_class=request.traffic_class,
        )
        self.next_packet_id += 1
        queue.append(packet)
        self.result.packets_generated += 1

    # ------------------------------------------------------------------
    # Phase 3: injection.
    # ------------------------------------------------------------------

    def inject(self, switch: Switch, cycle: int) -> None:
        budget = switch.injection_width
        local = switch.local_input
        # Continue serialising packets already owning a local VC.
        for vc in local.vcs:
            if budget == 0:
                return
            packet = vc.source_packet
            if packet is None:
                continue
            if len(vc.buffer) + vc.in_flight >= vc.capacity:
                continue
            flit = packet.make_flit(vc.source_flits_emitted)
            vc.buffer.append(flit)
            vc.source_flits_emitted += 1
            self.result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if vc.source_flits_emitted >= packet.length_flits:
                vc.source_packet = None
                vc.source_flits_emitted = 0
        if budget == 0:
            return
        # Start injecting new packets from the attached endpoints.
        for endpoint_id in switch.endpoints:
            if budget == 0:
                return
            queue = self.source_queues.get(endpoint_id)
            if not queue:
                continue
            vc = local.find_free_vc()
            if vc is None:
                return
            packet = queue.popleft()
            packet.injection_cycle = cycle
            vc.allocated_packet_id = packet.packet_id
            vc.source_packet = packet
            vc.source_flits_emitted = 0
            flit = packet.make_flit(0)
            vc.buffer.append(flit)
            vc.source_flits_emitted = 1
            self.result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if vc.source_flits_emitted >= packet.length_flits:
                vc.source_packet = None
                vc.source_flits_emitted = 0

    # ------------------------------------------------------------------
    # Phase 5: switch allocation and traversal.
    # ------------------------------------------------------------------

    def allocate(self, switch: Switch, cycle: int) -> None:
        requests: Dict[object, List[VirtualChannel]] = {}
        for port in switch.input_ports.values():
            for vc in port.vcs:
                if not vc.buffer:
                    continue
                if vc.current_output is None:
                    self._assign_output(switch, vc)
                requests.setdefault(vc.current_output, []).append(vc)
        if not requests:
            return
        for output, vcs in requests.items():
            if output.is_ejection:
                self._serve_ejection(switch, output, vcs, cycle)
                continue
            if not output.is_available(cycle):
                continue
            eligible = [vc for vc in vcs if self._can_send(switch, vc, output, cycle)]
            if not eligible:
                continue
            winner = switch.select_round_robin(output, eligible)
            self._send(switch, winner, output, cycle)

    def _assign_output(self, switch: Switch, vc: VirtualChannel) -> None:
        flit = vc.buffer[0]
        packet = flit.packet
        if not flit.is_head:
            raise RuntimeError(
                f"VC {vc!r} has no routing state but its front flit is not a head"
            )
        if switch.switch_id == packet.dst_switch:
            vc.current_output = switch.ejection_port
            vc.downstream_port = None
            vc.downstream_switch = None
            return
        expected = packet.route[packet.head_hop]
        if expected != switch.switch_id:
            raise RuntimeError(
                f"packet {packet.packet_id} head expected at switch {expected} "
                f"but found at {switch.switch_id}"
            )
        next_switch = packet.route[packet.head_hop + 1]
        output = switch.output_towards(next_switch)
        vc.current_output = output
        vc.downstream_switch = next_switch
        if output.is_wireless:
            vc.downstream_port = self.network.wireless_fabric.wireless_input_port(
                next_switch
            )
        else:
            vc.downstream_port = output.downstream_port

    def _serve_ejection(self, switch: Switch, output, vcs, cycle: int) -> None:
        budget = output.width
        candidates = [vc for vc in vcs if vc.buffer]
        while budget > 0 and candidates:
            winner = switch.select_round_robin(output, candidates)
            self._eject(switch, winner, cycle)
            candidates.remove(winner)
            budget -= 1

    def _can_send(self, switch: Switch, vc: VirtualChannel, output, cycle: int) -> bool:
        flit = vc.buffer[0]
        packet = flit.packet
        downstream = vc.downstream_port
        if downstream is None:
            return False
        target = downstream.find_vc_for_packet(packet.packet_id)
        if target is None:
            if not flit.is_head:
                return False
            target = downstream.find_free_vc()
            if target is None:
                return False
        if not target.has_space():
            return False
        if output.is_wireless:
            fabric = self.network.wireless_fabric
            if fabric is None or not fabric.may_send(
                switch.switch_id, packet, vc.downstream_switch, flit
            ):
                return False
        return True

    def _send(self, switch: Switch, vc: VirtualChannel, output, cycle: int) -> None:
        front = vc.buffer[0]
        packet = front.packet
        downstream = vc.downstream_port
        downstream_switch = vc.downstream_switch
        target = downstream.find_vc_for_packet(packet.packet_id)
        if target is None:
            target = downstream.find_free_vc()
        if target is None or not target.has_space():
            raise RuntimeError("send() called without a valid downstream VC")
        flit = vc.pop()
        target.reserve(packet.packet_id, flit.is_head)
        arrival_cycle = cycle + output.link.latency_cycles
        self.arrivals.setdefault(arrival_cycle, []).append((target, flit))
        output.occupy(cycle)

        self.accountant.record_switch_traversal(packet, self.switch_energy_pj)
        self.accountant.record_link_traversal(
            packet, output.link.energy_pj_per_flit, wireless=output.is_wireless
        )
        self.result.flit_hops += 1
        if output.is_wireless:
            self.result.wireless_flit_hops += 1
            self.network.wireless_fabric.on_flit_sent(
                switch.switch_id, packet, downstream_switch, flit, cycle
            )
        if flit.is_head:
            packet.head_hop += 1
        self.last_progress_cycle = cycle

    def _eject(self, switch: Switch, vc: VirtualChannel, cycle: int) -> None:
        front = vc.buffer[0]
        packet = front.packet
        flit = vc.pop()
        self.accountant.record_switch_traversal(packet, self.switch_energy_pj)
        packet.record_ejection(flit, cycle)
        if cycle >= self.config.warmup_cycles:
            self.result.flits_ejected_measured += 1
        self.last_progress_cycle = cycle
        if not flit.is_tail:
            return
        self.result.packets_delivered += 1
        if packet.measured:
            self.result.packets_delivered_measured += 1
            self.result.latencies_cycles.append(packet.latency_cycles)
            if packet.network_latency_cycles is not None:
                self.result.network_latencies_cycles.append(
                    packet.network_latency_cycles
                )
            self.result.packet_energies_pj.append(packet.energy_pj)
            self.result.packet_hops.append(packet.hop_count)
        for reply in self.simulator.traffic.on_packet_delivered(packet, cycle):
            self.enqueue_request(reply, cycle)

    # ------------------------------------------------------------------
    # Watchdog.
    # ------------------------------------------------------------------

    def check_watchdog(self, cycle: int) -> None:
        if cycle - self.last_progress_cycle < self.config.watchdog_cycles:
            return
        in_flight = (
            self.network.total_buffered_flits() > 0
            or any(self.arrivals.values())
            or any(self.source_queues.values())
        )
        if not in_flight:
            self.last_progress_cycle = cycle
            return
        message = (
            f"no flit progress for {self.config.watchdog_cycles} cycles at cycle "
            f"{cycle} with traffic still in flight (possible deadlock)"
        )
        if self.config.raise_on_stall:
            raise SimulationStallError(message)
        self.stalled = True
