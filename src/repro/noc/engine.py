"""The cycle-accurate simulation engine (public facade).

The actual per-cycle work lives in the phase-structured
:mod:`repro.noc.kernel`; this module keeps the stable public surface —
:class:`Simulator`, :class:`SimulationConfig` and
:class:`SimulationStallError` — and owns the per-run plumbing around one
kernel execution: building the :class:`~repro.noc.network.Network`,
binding the fabrics to the run's :class:`~repro.energy.EnergyAccountant`,
and settling the end-of-run accounting (static energy, fabric statistics,
wall-clock self-throughput) into the :class:`SimulationResult`.
"""

from __future__ import annotations

import time
from typing import Optional, TYPE_CHECKING

from ..energy import EnergyAccountant
from ..routing.base import BaseRouter
from ..topology.graph import TopologyGraph
from ..traffic.base import TrafficModel
from .config import NetworkConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import FaultPlan
from .checkpoint import (
    CheckpointEngineMismatchError,
    CheckpointError,
    KernelCheckpoint,
)
from .kernel import (
    ENGINES,
    METRICS_MODES,
    SCHEDULERS,
    KernelState,
    SimulationConfig,
    SimulationKernel,
    SimulationStallError,
)
from .network import Network
from .stats import SimulationResult

__all__ = [
    "ENGINES",
    "METRICS_MODES",
    "SCHEDULERS",
    "CheckpointEngineMismatchError",
    "CheckpointError",
    "KernelCheckpoint",
    "SimulationConfig",
    "SimulationStallError",
    "Simulator",
]


class Simulator:
    """Cycle-accurate simulation of one architecture under one traffic model."""

    def __init__(
        self,
        topology: TopologyGraph,
        router: BaseRouter,
        traffic: TrafficModel,
        network_config: Optional[NetworkConfig] = None,
        simulation_config: Optional[SimulationConfig] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        self.topology = topology
        self.router = router
        self.traffic = traffic
        self.network_config = network_config or NetworkConfig()
        self.simulation_config = simulation_config or SimulationConfig()
        #: Optional deterministic fault plan (see :mod:`repro.faults`); an
        #: empty or absent plan leaves the run bit-identical to a simulator
        #: without the fault subsystem.
        self.fault_plan = fault_plan
        #: Optional instrumentation hook called with the freshly built
        #: :class:`~repro.noc.network.Network` after the fabrics are bound
        #: to the energy accountant and before the kernel is constructed —
        #: the one safe window to wrap fabric callbacks (the MAC
        #: grant-exclusivity probes of the scenario fuzzer and the wireless
        #: plane tests).  ``None`` (the default) leaves the run untouched.
        self.instrument = None
        #: Optional checkpoint consumer: a callable receiving a
        #: :class:`~repro.noc.checkpoint.KernelCheckpoint` every
        #: ``simulation_config.checkpoint_every_cycles`` executed cycles
        #: (e.g. ``CheckpointStore.sink_for(key)`` to persist to disk).
        #: ``None`` (the default) disables checkpoint capture even when
        #: the config knob is set.
        self.checkpoint_sink = None

    def run(self, resume_from: Optional[KernelCheckpoint] = None) -> SimulationResult:
        """Execute the configured number of cycles and return the results.

        With ``resume_from``, the freshly configured run is discarded in
        favour of the checkpoint's restored kernel graph: the simulation
        continues at ``resume_from.cycle + 1`` and the end-of-run
        accounting settles into the *restored* result, producing output
        bit-identical to an uninterrupted run (fingerprint-tested in
        ``tests/test_checkpoint.py``).  The configured topology, traffic
        and fault plan must of course describe the same run the checkpoint
        came from; the engine request is validated (a vector checkpoint
        under a scalar request raises
        :class:`~repro.noc.checkpoint.CheckpointEngineMismatchError`).
        """
        if resume_from is not None:
            return self._resume(resume_from)
        config = self.simulation_config
        net_config = self.network_config
        self.traffic.reset()

        network = Network(self.topology, net_config)
        accountant = EnergyAccountant(
            technology=net_config.technology,
            include_static=net_config.include_static_energy,
        )
        for fabric in network.fabrics:
            fabric.bind_accountant(accountant)
        if self.instrument is not None:
            self.instrument(network)

        result = SimulationResult(
            cycles=config.cycles,
            warmup_cycles=config.warmup_cycles,
            num_cores=len(self.topology.cores),
            flit_width_bits=net_config.technology.flit_width_bits,
            clock_frequency_hz=net_config.technology.clock_frequency_hz,
            nominal_packet_length_flits=net_config.packet_length_flits,
            include_static_energy=net_config.include_static_energy,
            metrics_mode=config.metrics,
        )

        injector = None
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            from ..faults.injector import FaultInjector

            injector = FaultInjector(self.fault_plan, network, self.router, result)

        started = time.perf_counter()
        # The kernel instantiates its own scheduler from the configuration —
        # a single construction path shared by every caller (CLI, benches,
        # tests), so no facade-side duplicate can drift.
        kernel = SimulationKernel(
            network=network,
            router=self.router,
            traffic=self.traffic,
            accountant=accountant,
            result=result,
            config=config,
            net_config=net_config,
            fault_injector=injector,
        )
        try:
            state = kernel.run(checkpoint_hook=self.checkpoint_sink)
        finally:
            if injector is not None:
                # The topology and router outlive this run; a faulted run
                # must leave no trace on the next one.
                injector.restore()
        return self._settle(state, started)

    def _resume(self, checkpoint: KernelCheckpoint) -> SimulationResult:
        """Continue a checkpointed run to completion (see :meth:`run`)."""
        kernel = SimulationKernel.resume(
            checkpoint, engine=self.simulation_config.engine
        )
        injector = kernel.fault_injector
        started = time.perf_counter()
        try:
            state = kernel.run(
                start_cycle=checkpoint.cycle + 1,
                checkpoint_hook=self.checkpoint_sink,
            )
        finally:
            if injector is not None:
                # The restored graph carries its own private topology and
                # router copies, but restoring them keeps the injector's
                # lifecycle identical to a fresh run's.
                injector.restore()
        return self._settle(state, started)

    @staticmethod
    def _settle(state: KernelState, started: float) -> SimulationResult:
        """End-of-run accounting, off the state's own network/accountant.

        Shared by the fresh and the resumed path: on a resume the network,
        accountant and result objects come out of the checkpoint, not out
        of this simulator's constructor arguments.
        """
        config = state.config
        result = state.result
        accountant = state.accountant
        network = state.network
        result.wall_clock_seconds = time.perf_counter() - started

        result.flits_residual_end = state.residual_flits()
        accountant.record_static(
            cycles=state.cycle + 1,
            total_switch_static_mw=network.total_switch_static_power_mw,
        )
        for fabric in network.fabrics:
            fabric.finalize(result, accountant)

        result.energy = accountant.breakdown
        result.stalled = state.stalled
        result.engine_used = state.engine_name
        if config.profile_phases and getattr(state, "profile_alloc", False):
            # Vector-engine runs split the allocation row so per-event
            # tail costs are visible from the CLI: array dispatch
            # (snapshot/grouping/eligibility) vs the per-event section
            # (group loop, bulk epilogue, delivery replay).
            result.phase_seconds["allocation/dispatch"] = state.alloc_dispatch_seconds
            result.phase_seconds["allocation/events"] = state.alloc_event_seconds
        if result.num_cores and config.cycles:
            result.offered_load_packets_per_core_per_cycle = result.packets_offered / (
                result.num_cores * config.cycles
            )
        return result
