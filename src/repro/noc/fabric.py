"""The unified fabric interface: wired links and the wireless channel.

A :class:`Fabric` is the transmission medium behind a set of output ports.
The simulation kernel talks to every medium through the same questions —
*where does this hop land?* (:meth:`Fabric.resolve_downstream`), *may this
flit go now?* (:meth:`Fabric.grants`), *a flit just went*
(:meth:`Fabric.notify_sent`), *advance your per-cycle state*
(:meth:`Fabric.update`) and *settle your end-of-run accounting*
(:meth:`Fabric.finalize`) — so the kernel never special-cases the wireless
channel inline and the MAC protocols never reach into the kernel.

The hot-path methods (:meth:`grants`, :meth:`notify_sent`) are
handle-based: they take the globally unique packet id and the head/tail
booleans the kernel already derived from the packet pool, so no flit or
packet object exists on the send path.  The legacy object-based spellings
(:meth:`may_send`, :meth:`on_flit_sent`) remain as thin wrappers for unit
tests and external callers.  Two class flags let the kernel skip the calls
entirely where they would be no-ops: ``always_grants`` (no admission
control right now — true for an unfailed wired fabric) and
``tracks_sends`` (the medium needs the sent notification — only the
wireless fabric does).

Two implementations exist:

* :class:`WiredFabric` — point-to-point links with a fixed downstream port;
  every send is allowed unless fault injection failed the hop, nothing
  needs per-cycle updates.
* :class:`WirelessFabric` — the shared-medium state of the deployed
  wireless interfaces: channel assignment, one MAC instance per channel,
  and the transceiver power states.  The destination (and therefore the
  downstream input port) differs per packet, and sends are gated by the
  owning MAC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..energy import EnergyAccountant
from ..wireless.channel import assign_channels
from ..wireless.mac import (
    ControlPacketMac,
    MacAdapter,
    MacProtocol,
    PendingTransmission,
    TokenMac,
)
from ..wireless.transceiver import Transceiver, TransceiverSpec, TransceiverState
from .pool import PacketPool
from .port import InputPort, OutputPort

if TYPE_CHECKING:  # pragma: no cover
    from .config import NetworkConfig
    from .stats import SimulationResult
    from .switch import Switch


class FabricError(ValueError):
    """Raised when a fabric is built or addressed inconsistently."""


class Fabric:
    """One transmission medium shared by a set of output ports."""

    #: Whether traversals over this fabric are wireless (drives energy
    #: attribution and the per-figure wireless-hop counters).
    is_wireless: bool = False

    #: Whether the kernel must call :meth:`update` every cycle.  Media with
    #: no time-dependent state (wired links) opt out so the kernel's fabric
    #: phase stays free for them.
    needs_update: bool = False

    #: Whether :meth:`grants` can currently refuse a send.  While ``False``
    #: the kernel skips the call entirely (the pristine wired fast path);
    #: fabrics flip it when admission control becomes live (a failed link,
    #: or always for the MAC-arbitrated wireless medium).
    always_grants: bool = True

    #: Whether the kernel must call :meth:`notify_sent` for every flit that
    #: goes onto this medium.
    tracks_sends: bool = False

    def bind_accountant(self, accountant: EnergyAccountant) -> None:
        """Attach the energy accountant of the current simulation run."""

    def bind_pool(self, pool: PacketPool) -> None:
        """Attach the packet pool of the current simulation run."""

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        """The input port a hop over ``output`` towards ``dst_switch_id`` lands on."""
        raise NotImplementedError

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Whether the medium grants this flit transmission right now."""
        return True

    def notify_sent(
        self,
        src_switch_id: int,
        packet_id: int,
        dst_switch_id: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notification that a flit went onto the medium this cycle."""

    # Legacy object-based spellings (unit tests, external callers).

    def may_send(self, src_switch_id: int, packet, dst_switch_id: int, flit) -> bool:
        """Object-API wrapper around :meth:`grants`."""
        return self.grants(src_switch_id, packet.packet_id, dst_switch_id, flit.is_head)

    def on_flit_sent(
        self, src_switch_id: int, packet, dst_switch_id: int, flit, cycle: int
    ) -> None:
        """Object-API wrapper around :meth:`notify_sent`."""
        self.notify_sent(src_switch_id, packet.packet_id, dst_switch_id, flit.is_tail, cycle)

    def update(self, cycle: int) -> None:
        """Advance per-cycle medium state (MAC arbitration, power states)."""

    def finalize(self, result: "SimulationResult", accountant: EnergyAccountant) -> None:
        """Settle end-of-run statistics and static energy into the result."""


class WiredFabric(Fabric):
    """Point-to-point wired links: fixed downstream, always grantable.

    Fault injection can take individual links out of service: a failed link
    blocks *head* flits (so no new packet enters it and routing recovery can
    redirect them) while body flits of packets already committed to the hop
    drain through — wormhole switching cannot truncate a packet mid-flight
    without dropping flits, so failures are packet-atomic and every injected
    flit still reaches an ejection port.
    """

    def __init__(self) -> None:
        #: Directed (src switch, dst switch) hops currently failed.
        self.failed_pairs: Set[Tuple[int, int]] = set()
        #: Kernel fast-path flag: True until the first link failure, so the
        #: pristine-fabric inner loop never calls :meth:`grants`.
        self.always_grants = True

    def fail_link(self, a: int, b: int) -> None:
        """Take the (bidirectional) link between two switches out of service."""
        self.failed_pairs.add((a, b))
        self.failed_pairs.add((b, a))
        self.always_grants = False

    def clear_failures(self) -> None:
        """Return every failed hop to service (end-of-run restore)."""
        self.failed_pairs.clear()
        self.always_grants = True

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        downstream = output.downstream_port
        if downstream is None:
            raise FabricError(
                f"wired output port {output.key!r} of switch "
                f"{output.switch.switch_id} has no downstream port"
            )
        return downstream

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Grant unless the hop is failed and the flit would commit a packet."""
        if not self.failed_pairs or not is_head:
            return True
        return (src_switch_id, dst_switch_id) not in self.failed_pairs


class WirelessFabric(Fabric, MacAdapter):
    """Shared-medium state of the deployed wireless interfaces."""

    is_wireless = True
    needs_update = True
    always_grants = False
    tracks_sends = True

    def __init__(
        self,
        switches: List["Switch"],
        config: "NetworkConfig",
    ) -> None:
        if not switches:
            raise FabricError("wireless fabric needs at least one WI switch")
        self._config = config
        wireless_cfg = config.wireless
        self._switches: Dict[int, "Switch"] = {s.switch_id: s for s in switches}
        ordered_ids = sorted(self._switches)
        self._accountant: Optional[EnergyAccountant] = None
        self._pool: Optional[PacketPool] = None
        self._flit_hops = 0
        #: WIs whose transceiver has died (fault injection).  A dead WI
        #: reports no pending traffic, accepts nothing, grants no new
        #: packets and is permanently power-gated; in-flight bursts drain
        #: (transceiver failures are packet-atomic, like link failures).
        self.dead_wis: Set[int] = set()

        spec = TransceiverSpec(
            data_rate_gbps=config.technology.wireless_data_rate_gbps,
            energy_pj_per_bit=config.technology.wireless_energy_pj_per_bit,
            idle_power_mw=config.technology.wireless_idle_power_mw,
            sleep_power_mw=config.technology.wireless_sleep_power_mw,
        )
        self.transceivers: Dict[int, Transceiver] = {
            wi_id: Transceiver(
                wi_id=wi_id,
                spec=spec,
                power_gating=wireless_cfg.sleepy_receivers
                and wireless_cfg.mac == "control_packet",
            )
            for wi_id in ordered_ids
        }

        self.channel_plans = assign_channels(ordered_ids, wireless_cfg.num_channels)
        self.macs: List[MacProtocol] = []
        self._mac_of: Dict[int, MacProtocol] = {}
        for plan in self.channel_plans:
            if not plan.wi_switch_ids:
                continue
            mac = self._make_mac(plan.channel_id, list(plan.wi_switch_ids))
            self.macs.append(mac)
            for wi_id in plan.wi_switch_ids:
                self._mac_of[wi_id] = mac

    def _make_mac(self, channel_id: int, wi_ids: List[int]) -> MacProtocol:
        wireless_cfg = self._config.wireless
        if wireless_cfg.mac == "token":
            return TokenMac(
                channel_id,
                wi_ids,
                adapter=self,
                token_pass_latency_cycles=wireless_cfg.token_pass_latency_cycles,
                max_hold_cycles=4 * self._config.packet_length_flits
                * wireless_cfg.cycles_per_flit
                + 64,
            )
        return ControlPacketMac(
            channel_id,
            wi_ids,
            adapter=self,
            control_packet_cycles=wireless_cfg.control_packet_cycles,
            control_packet_bits=wireless_cfg.control_packet_bits,
            max_tuples=wireless_cfg.max_control_tuples,
            cycles_per_flit=wireless_cfg.cycles_per_flit,
        )

    # ------------------------------------------------------------------
    # MacAdapter interface.
    # ------------------------------------------------------------------

    def pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        """Traffic waiting for the wireless port of one WI switch."""
        if wi_switch_id in self.dead_wis:
            return []
        pool = self._pool
        if pool is None:
            raise FabricError(
                "wireless fabric has no packet pool bound; the kernel must "
                "call bind_pool() before the first MAC update"
            )
        switch = self._switches[wi_switch_id]
        entries = []
        pool_pid = pool.pid
        pool_length = pool.length_flits
        for vc, dst_switch, handle, buffered, remaining in switch.wireless_pending(pool):
            length = pool_length[handle]
            entries.append(
                PendingTransmission(
                    dst_switch=dst_switch,
                    packet_id=pool_pid[handle],
                    buffered_flits=buffered,
                    packet_length_flits=length,
                    front_is_head=remaining == length,
                    remaining_flits=remaining,
                )
            )
        return entries

    def record_control_energy(self, energy_pj: float) -> None:
        """Charge MAC control/token overhead to the current run's accountant."""
        if self._accountant is not None:
            self._accountant.record_mac_control(energy_pj)

    def acceptable_flits(
        self, dst_switch: int, packet_id: int, is_head: bool
    ) -> int:
        """Flits the destination WI can take over the coming burst.

        The receiver drains its buffer into the destination chip's mesh
        while the burst is in the air, so a transmission may announce one
        extra buffer window on top of the space that is free right now.
        """
        if dst_switch in self.dead_wis:
            return 0
        switch = self._switches.get(dst_switch)
        if switch is None or switch.wireless_input is None:
            return 0
        port = switch.wireless_input
        owned = port.find_vc_for_packet(packet_id)
        if owned is not None:
            return max(0, owned.capacity - owned.occupancy) + owned.capacity
        if not is_head:
            return 0
        free = port.find_free_vc()
        if free is None:
            return 0
        return 2 * free.capacity

    # ------------------------------------------------------------------
    # Fabric interface (used by the kernel).
    # ------------------------------------------------------------------

    def bind_accountant(self, accountant: EnergyAccountant) -> None:
        """Attach the energy accountant of the current simulation run."""
        self._accountant = accountant

    def bind_pool(self, pool: PacketPool) -> None:
        """Attach the packet pool of the current simulation run."""
        self._pool = pool

    @property
    def wi_switch_ids(self) -> List[int]:
        """Ids of all WI switches, in sequence order."""
        return sorted(self._switches)

    def wireless_input_port(self, dst_switch_id: int) -> InputPort:
        """The wireless input port of a destination WI switch."""
        switch = self._switches.get(dst_switch_id)
        if switch is None or switch.wireless_input is None:
            raise FabricError(f"switch {dst_switch_id} has no wireless interface")
        return switch.wireless_input

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        """Wireless hops land on the destination WI's wireless input port."""
        return self.wireless_input_port(dst_switch_id)

    def fail_transceiver(self, wi_switch_id: int) -> None:
        """Take one WI's transceiver out of service (fault injection)."""
        if wi_switch_id not in self._switches:
            raise FabricError(f"switch {wi_switch_id} has no wireless interface")
        self.dead_wis.add(wi_switch_id)
        self.transceivers[wi_switch_id].set_state(TransceiverState.SLEEPING)

    def update(self, cycle: int) -> None:
        """Advance every channel's MAC and the transceiver power states."""
        for mac in self.macs:
            mac.update(cycle)
        for mac in self.macs:
            transmitter = mac.current_transmitter()
            receivers = mac.intended_receivers() if transmitter is not None else set()
            for wi_id in mac.wi_switch_ids:
                transceiver = self.transceivers[wi_id]
                if wi_id in self.dead_wis:
                    transceiver.set_state(TransceiverState.SLEEPING)
                    transceiver.tick()
                    continue
                if wi_id == transmitter:
                    transceiver.set_state(TransceiverState.TRANSMITTING)
                elif wi_id in receivers:
                    transceiver.set_state(TransceiverState.RECEIVING)
                elif transmitter is not None:
                    transceiver.set_state(TransceiverState.SLEEPING)
                else:
                    transceiver.set_state(TransceiverState.IDLE)
                transceiver.tick()

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Whether the MAC grants this flit transmission right now."""
        if self.dead_wis and is_head:
            if src_switch_id in self.dead_wis or dst_switch_id in self.dead_wis:
                return False
        mac = self._mac_of.get(src_switch_id)
        if mac is None:
            return False
        return mac.may_send(src_switch_id, packet_id, dst_switch_id, is_head)

    def notify_sent(
        self,
        src_switch_id: int,
        packet_id: int,
        dst_switch_id: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notify the owning MAC that a flit went on the air."""
        self._flit_hops += 1
        mac = self._mac_of.get(src_switch_id)
        if mac is not None:
            mac.on_flit_sent(src_switch_id, packet_id, dst_switch_id, is_tail, cycle)

    def finalize(self, result: "SimulationResult", accountant: EnergyAccountant) -> None:
        """Charge transceiver static energy and publish the MAC statistics."""
        accountant.add_transceiver_static_energy(self.total_transceiver_static_energy_pj())
        result.mac_statistics = self.mac_statistics()
        result.transceiver_sleep_fraction = self.average_sleep_fraction()
        result.wireless_flit_hops = self._flit_hops

    def total_transceiver_static_energy_pj(self) -> float:
        """Static energy of all transceivers over the accounted cycles."""
        cycle_time = self._config.technology.cycle_time_s
        return sum(t.static_energy_pj(cycle_time) for t in self.transceivers.values())

    def mac_statistics(self) -> Dict[int, Dict[str, int]]:
        """Per-channel MAC counters."""
        return {mac.channel_id: mac.stats.as_dict() for mac in self.macs}

    def average_sleep_fraction(self) -> float:
        """Mean fraction of cycles the transceivers spent power-gated."""
        transceivers = list(self.transceivers.values())
        if not transceivers:
            return 0.0
        return sum(t.sleep_fraction() for t in transceivers) / len(transceivers)
