"""The unified fabric interface: wired links and the wireless channel.

A :class:`Fabric` is the transmission medium behind a set of output ports.
The simulation kernel talks to every medium through the same questions —
*where does this hop land?* (:meth:`Fabric.resolve_downstream`), *may this
flit go now?* (:meth:`Fabric.grants`), *a flit just went*
(:meth:`Fabric.notify_sent`), *advance your per-cycle state*
(:meth:`Fabric.update`) and *settle your end-of-run accounting*
(:meth:`Fabric.finalize`) — so the kernel never special-cases the wireless
channel inline and the MAC protocols never reach into the kernel.

The hot-path methods (:meth:`grants`, :meth:`notify_sent`) are
handle-based: they take the globally unique packet id and the head/tail
booleans the kernel already derived from the packet pool, so no flit or
packet object exists on the send path — and they are the *only* public
spellings; the historical object-based wrappers live in
:mod:`repro.testing.legacy`.  Two class flags let the kernel skip the
calls entirely where they would be no-ops: ``always_grants`` (no
admission control right now — true for an unfailed wired fabric) and
``tracks_sends`` (the medium needs the sent notification — only the
wireless fabric does).

Two implementations exist:

* :class:`WiredFabric` — point-to-point links with a fixed downstream port;
  every send is allowed unless fault injection failed the hop, nothing
  needs per-cycle updates.
* :class:`WirelessFabric` — the shared-medium state of the deployed
  wireless interfaces: channel assignment, one MAC instance per channel
  (built by name from the MAC registry), and the transceiver power states.
  The destination (and therefore the downstream input port) differs per
  packet, and sends are gated by the owning MAC.

The wireless fabric doubles as the MAC protocols'
:class:`~repro.wireless.mac.MacDataPlane`: :meth:`WirelessFabric.scan_pending`
fills preallocated scratch arrays straight from the packet pool's parallel
arrays and the per-WI occupied-VC ordinal sets — no dataclass, tuple or
list is created per cycle.  Tests that want dataclass rows use
:func:`repro.testing.legacy.pending_transmissions`; the wrapper-parity
test matrix proves the object path and the hot path produce bit-identical
simulations for every registered MAC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..energy import EnergyAccountant
from ..wireless.channel import assign_channels
from ..wireless.mac import (
    MacBuildContext,
    MacDataPlane,
    MacProtocol,
    create_mac,
    mac_spec,
)
from ..wireless.transceiver import Transceiver, TransceiverSpec, TransceiverState
from .pool import FLIT_INDEX_BITS, FLIT_INDEX_MASK, PacketPool
from .port import InputPort, OutputPort

if TYPE_CHECKING:  # pragma: no cover
    from .config import NetworkConfig
    from .stats import SimulationResult
    from .switch import Switch


class FabricError(ValueError):
    """Raised when a fabric is built or addressed inconsistently."""


class Fabric:
    """One transmission medium shared by a set of output ports."""

    #: Whether traversals over this fabric are wireless (drives energy
    #: attribution and the per-figure wireless-hop counters).
    is_wireless: bool = False

    #: Whether the kernel must call :meth:`update` every cycle.  Media with
    #: no time-dependent state (wired links) opt out so the kernel's fabric
    #: phase stays free for them.
    needs_update: bool = False

    #: Whether :meth:`grants` can currently refuse a send.  While ``False``
    #: the kernel skips the call entirely (the pristine wired fast path);
    #: fabrics flip it when admission control becomes live (a failed link,
    #: or always for the MAC-arbitrated wireless medium).
    always_grants: bool = True

    #: Whether the kernel must call :meth:`notify_sent` for every flit that
    #: goes onto this medium.
    tracks_sends: bool = False

    def bind_accountant(self, accountant: EnergyAccountant) -> None:
        """Attach the energy accountant of the current simulation run."""

    def bind_pool(self, pool: PacketPool) -> None:
        """Attach the packet pool of the current simulation run."""

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        """The input port a hop over ``output`` towards ``dst_switch_id`` lands on."""
        raise NotImplementedError

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Whether the medium grants this flit transmission right now."""
        return True

    def notify_sent(
        self,
        src_switch_id: int,
        packet_id: int,
        dst_switch_id: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notification that a flit went onto the medium this cycle."""

    def update(self, cycle: int) -> None:
        """Advance per-cycle medium state (MAC arbitration, power states)."""

    def finalize(self, result: "SimulationResult", accountant: EnergyAccountant) -> None:
        """Settle end-of-run statistics and static energy into the result."""


class WiredFabric(Fabric):
    """Point-to-point wired links: fixed downstream, always grantable.

    Fault injection can take individual links out of service: a failed link
    blocks *head* flits (so no new packet enters it and routing recovery can
    redirect them) while body flits of packets already committed to the hop
    drain through — wormhole switching cannot truncate a packet mid-flight
    without dropping flits, so failures are packet-atomic and every injected
    flit still reaches an ejection port.
    """

    def __init__(self) -> None:
        #: Directed (src switch, dst switch) hops currently failed.
        self.failed_pairs: Set[Tuple[int, int]] = set()
        #: Kernel fast-path flag: True until the first link failure, so the
        #: pristine-fabric inner loop never calls :meth:`grants`.
        self.always_grants = True

    def fail_link(self, a: int, b: int) -> None:
        """Take the (bidirectional) link between two switches out of service."""
        self.failed_pairs.add((a, b))
        self.failed_pairs.add((b, a))
        self.always_grants = False

    def clear_failures(self) -> None:
        """Return every failed hop to service (end-of-run restore)."""
        self.failed_pairs.clear()
        self.always_grants = True

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        downstream = output.downstream_port
        if downstream is None:
            raise FabricError(
                f"wired output port {output.key!r} of switch "
                f"{output.switch.switch_id} has no downstream port"
            )
        return downstream

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Grant unless the hop is failed and the flit would commit a packet."""
        if not self.failed_pairs or not is_head:
            return True
        return (src_switch_id, dst_switch_id) not in self.failed_pairs


class WirelessFabric(Fabric, MacDataPlane):
    """Shared-medium state of the deployed wireless interfaces."""

    is_wireless = True
    needs_update = True
    always_grants = False
    tracks_sends = True

    def __init__(
        self,
        switches: List["Switch"],
        config: "NetworkConfig",
    ) -> None:
        if not switches:
            raise FabricError("wireless fabric needs at least one WI switch")
        self._config = config
        wireless_cfg = config.wireless
        self._switches: Dict[int, "Switch"] = {s.switch_id: s for s in switches}
        ordered_ids = sorted(self._switches)
        self._accountant: Optional[EnergyAccountant] = None
        self._pool: Optional[PacketPool] = None
        self._flit_hops = 0
        #: Per-flit dynamic energy of the shared wireless link (identical on
        #: every WI port; cached for the per-channel energy attribution).
        wireless_link = switches[0].wireless_output
        self._flit_energy_pj = (
            wireless_link.link.energy_pj_per_flit
            if wireless_link is not None and wireless_link.link is not None
            else 0.0
        )
        #: WIs whose transceiver has died (fault injection).  A dead WI
        #: reports no pending traffic, accepts nothing, grants no new
        #: packets and is permanently power-gated; in-flight bursts drain
        #: (transceiver failures are packet-atomic, like link failures).
        self.dead_wis: Set[int] = set()

        #: Scratch arrays of the hot pending scan (:meth:`scan_pending`);
        #: one row per VC with traffic bound for the WI port, reused across
        #: cycles so the scan allocates nothing after warm-up.
        self.pend_dst: List[int] = []
        self.pend_pid: List[int] = []
        self.pend_buffered: List[int] = []
        self.pend_length: List[int] = []
        self.pend_remaining: List[int] = []
        self.pend_head: List[int] = []

        spec = TransceiverSpec(
            data_rate_gbps=config.technology.wireless_data_rate_gbps,
            energy_pj_per_bit=config.technology.wireless_energy_pj_per_bit,
            idle_power_mw=config.technology.wireless_idle_power_mw,
            sleep_power_mw=config.technology.wireless_sleep_power_mw,
        )
        power_gating = (
            wireless_cfg.sleepy_receivers
            and mac_spec(wireless_cfg.mac).supports_sleepy_receivers
        )
        self.transceivers: Dict[int, Transceiver] = {
            wi_id: Transceiver(wi_id=wi_id, spec=spec, power_gating=power_gating)
            for wi_id in ordered_ids
        }

        self.channel_plans = assign_channels(ordered_ids, wireless_cfg.num_channels)
        self.macs: List[MacProtocol] = []
        self._mac_of: Dict[int, MacProtocol] = {}
        #: Per-MAC member transceivers, precompiled so the per-cycle power
        #: update iterates flat lists instead of chasing two dictionaries.
        self._mac_members: List[Tuple[MacProtocol, List[Tuple[int, Transceiver]]]] = []
        for plan in self.channel_plans:
            if not plan.wi_switch_ids:
                continue
            mac = create_mac(
                wireless_cfg.mac,
                MacBuildContext(
                    channel_id=plan.channel_id,
                    wi_switch_ids=list(plan.wi_switch_ids),
                    plane=self,
                    wireless=wireless_cfg,
                    packet_length_flits=config.packet_length_flits,
                ),
            )
            self.macs.append(mac)
            members = []
            for wi_id in plan.wi_switch_ids:
                self._mac_of[wi_id] = mac
                members.append((wi_id, self.transceivers[wi_id]))
            self._mac_members.append((mac, members))

        #: Per-channel energy attribution (settled into
        #: ``SimulationResult.channel_energy_pj`` by :meth:`finalize`).
        self._channel_flit_hops: Dict[int, int] = {
            mac.channel_id: 0 for mac in self.macs
        }
        self._channel_control_pj: Dict[int, float] = {
            mac.channel_id: 0.0 for mac in self.macs
        }

    # ------------------------------------------------------------------
    # MacDataPlane interface (the hot path the MAC protocols read).
    # ------------------------------------------------------------------

    def scan_pending(self, wi_switch_id: int) -> int:
        """Fill the scratch arrays with one WI's wireless-bound traffic.

        Inlines the VC scan on the pool's parallel arrays: for every
        occupied VC of the WI switch (ascending ordinal — the historical
        full-table order) whose current packet leaves over the WI port, one
        scratch row records destination, packet id, buffered flits, packet
        length, flits still to cross the hop, and whether the front flit is
        the packet's head.  Returns the row count; rows of the previous
        scan become invalid.
        """
        if wi_switch_id in self.dead_wis:
            return 0
        pool = self._pool
        if pool is None:
            raise FabricError(
                "wireless fabric has no packet pool bound; the kernel must "
                "call bind_pool() before the first MAC update"
            )
        switch = self._switches[wi_switch_id]
        occupied = switch.occupied
        if not occupied:
            return 0
        pend_dst = self.pend_dst
        pend_pid = self.pend_pid
        pend_buffered = self.pend_buffered
        pend_length = self.pend_length
        pend_remaining = self.pend_remaining
        pend_head = self.pend_head
        pool_pid = pool.pid
        pool_length = pool.length_flits
        pool_route = pool.route
        pool_head_hop = pool.head_hop
        pool_dst_switch = pool.dst_switch
        vc_by_ordinal = switch.vc_by_ordinal
        output_ports = switch.output_ports
        wireless_output = switch.wireless_output
        switch_id = switch.switch_id
        count = 0
        for ordinal in sorted(occupied):
            vc = vc_by_ordinal[ordinal]
            front = vc.buf[vc.head]
            handle = front >> FLIT_INDEX_BITS
            current_output = vc.current_output
            if current_output is None:
                # Head flit not yet processed: peek at the route.
                if switch_id == pool_dst_switch[handle]:
                    continue
                dst = pool_route[handle][pool_head_hop[handle] + 1]
                if output_ports.get(dst) is not None:
                    continue  # wired hop
            elif current_output is wireless_output:
                dst = vc.downstream_switch
            else:
                continue
            if count == len(pend_dst):
                pend_dst.append(0)
                pend_pid.append(0)
                pend_buffered.append(0)
                pend_length.append(0)
                pend_remaining.append(0)
                pend_head.append(0)
            front_index = front & FLIT_INDEX_MASK
            pend_dst[count] = dst
            pend_pid[count] = pool_pid[handle]
            pend_buffered[count] = vc.count
            pend_length[count] = pool_length[handle]
            pend_remaining[count] = pool_length[handle] - front_index
            pend_head[count] = 0 if front_index else 1
            count += 1
        return count

    def record_control_energy(self, energy_pj: float, channel_id: int = -1) -> None:
        """Charge MAC control/token overhead to the current run's accountant."""
        if self._accountant is not None:
            self._accountant.record_mac_control(energy_pj)
        self._channel_control_pj[channel_id] = (
            self._channel_control_pj.get(channel_id, 0.0) + energy_pj
        )

    def acceptable_flits(self, dst_switch: int, packet_id: int, is_head: bool) -> int:
        """Flits the destination WI can take over the coming burst.

        The receiver drains its buffer into the destination chip's mesh
        while the burst is in the air, so a transmission may announce one
        extra buffer window on top of the space that is free right now.
        """
        if dst_switch in self.dead_wis:
            return 0
        switch = self._switches.get(dst_switch)
        if switch is None or switch.wireless_input is None:
            return 0
        port = switch.wireless_input
        owned = port.find_vc_for_packet(packet_id)
        if owned is not None:
            return max(0, owned.capacity - owned.occupancy) + owned.capacity
        if not is_head:
            return 0
        free = port.find_free_vc()
        if free is None:
            return 0
        return 2 * free.capacity

    # ------------------------------------------------------------------
    # Fabric interface (used by the kernel).
    # ------------------------------------------------------------------

    def bind_accountant(self, accountant: EnergyAccountant) -> None:
        """Attach the energy accountant of the current simulation run."""
        self._accountant = accountant

    def bind_pool(self, pool: PacketPool) -> None:
        """Attach the packet pool of the current simulation run."""
        self._pool = pool

    @property
    def wi_switch_ids(self) -> List[int]:
        """Ids of all WI switches, in sequence order."""
        return sorted(self._switches)

    def wireless_input_port(self, dst_switch_id: int) -> InputPort:
        """The wireless input port of a destination WI switch."""
        switch = self._switches.get(dst_switch_id)
        if switch is None or switch.wireless_input is None:
            raise FabricError(f"switch {dst_switch_id} has no wireless interface")
        return switch.wireless_input

    def resolve_downstream(self, output: OutputPort, dst_switch_id: int) -> InputPort:
        """Wireless hops land on the destination WI's wireless input port."""
        return self.wireless_input_port(dst_switch_id)

    def fail_transceiver(self, wi_switch_id: int) -> None:
        """Take one WI's transceiver out of service (fault injection)."""
        if wi_switch_id not in self._switches:
            raise FabricError(f"switch {wi_switch_id} has no wireless interface")
        self.dead_wis.add(wi_switch_id)
        self.transceivers[wi_switch_id].set_state(TransceiverState.SLEEPING)

    def update(self, cycle: int) -> None:
        """Advance every channel's MAC and the transceiver power states."""
        for mac in self.macs:
            mac.update(cycle)
        dead_wis = self.dead_wis
        for mac, members in self._mac_members:
            transmitter = mac.current_transmitter()
            if transmitter is None:
                for wi_id, transceiver in members:
                    if wi_id in dead_wis:
                        transceiver.set_state(TransceiverState.SLEEPING)
                    else:
                        transceiver.set_state(TransceiverState.IDLE)
                    transceiver.tick()
                continue
            for wi_id, transceiver in members:
                if wi_id in dead_wis:
                    transceiver.set_state(TransceiverState.SLEEPING)
                elif wi_id == transmitter:
                    transceiver.set_state(TransceiverState.TRANSMITTING)
                elif mac.is_intended_receiver(wi_id):
                    transceiver.set_state(TransceiverState.RECEIVING)
                else:
                    transceiver.set_state(TransceiverState.SLEEPING)
                transceiver.tick()

    def grants(
        self, src_switch_id: int, packet_id: int, dst_switch_id: int, is_head: bool
    ) -> bool:
        """Whether the owning MAC grants this flit transmission right now."""
        if self.dead_wis and is_head:
            if src_switch_id in self.dead_wis or dst_switch_id in self.dead_wis:
                return False
        mac = self._mac_of.get(src_switch_id)
        if mac is None:
            return False
        return mac.grants(src_switch_id, packet_id, dst_switch_id, is_head)

    def notify_sent(
        self,
        src_switch_id: int,
        packet_id: int,
        dst_switch_id: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notify the owning MAC that a flit went on the air."""
        self._flit_hops += 1
        mac = self._mac_of.get(src_switch_id)
        if mac is not None:
            self._channel_flit_hops[mac.channel_id] += 1
            mac.notify_sent(src_switch_id, packet_id, dst_switch_id, is_tail, cycle)

    def finalize(self, result: "SimulationResult", accountant: EnergyAccountant) -> None:
        """Charge transceiver static energy and publish the MAC statistics."""
        accountant.add_transceiver_static_energy(self.total_transceiver_static_energy_pj())
        for mac in self.macs:
            mac.finalize_stats()
        result.mac_statistics = self.mac_statistics()
        result.transceiver_sleep_fraction = self.average_sleep_fraction()
        result.wireless_flit_hops = self._flit_hops
        result.channel_energy_pj = self.channel_energy_breakdown()

    def total_transceiver_static_energy_pj(self) -> float:
        """Static energy of all transceivers over the accounted cycles."""
        cycle_time = self._config.technology.cycle_time_s
        return sum(t.static_energy_pj(cycle_time) for t in self.transceivers.values())

    def mac_statistics(self) -> Dict[int, Dict[str, int]]:
        """Per-channel MAC counters."""
        return {mac.channel_id: mac.stats.as_dict() for mac in self.macs}

    def channel_energy_breakdown(self) -> Dict[int, Dict[str, float]]:
        """Per-channel energy attribution [pJ].

        One entry per active channel (plus ``-1`` for control energy
        recorded without a channel by legacy callers, if any): the data
        energy of the flits that crossed the channel, the MAC
        control/token overhead, and the static energy of the channel's
        transceivers.  Each component sums exactly to its aggregate in the
        run's :class:`~repro.energy.accounting.EnergyBreakdown`
        (``wireless_pj``, ``mac_control_pj``, ``transceiver_static_pj``) —
        the reconciliation the fig8 experiment and the wireless-plane tests
        assert.
        """
        cycle_time = self._config.technology.cycle_time_s
        channel_static: Dict[int, float] = {mac.channel_id: 0.0 for mac in self.macs}
        for plan in self.channel_plans:
            if plan.channel_id not in channel_static:
                continue
            channel_static[plan.channel_id] = sum(
                self.transceivers[wi_id].static_energy_pj(cycle_time)
                for wi_id in plan.wi_switch_ids
            )
        breakdown: Dict[int, Dict[str, float]] = {}
        channels = set(self._channel_flit_hops) | set(self._channel_control_pj)
        for channel_id in sorted(channels):
            breakdown[channel_id] = {
                "wireless_pj": (
                    self._channel_flit_hops.get(channel_id, 0) * self._flit_energy_pj
                ),
                "mac_control_pj": self._channel_control_pj.get(channel_id, 0.0),
                "transceiver_static_pj": channel_static.get(channel_id, 0.0),
            }
        return breakdown

    def average_sleep_fraction(self) -> float:
        """Mean fraction of cycles the transceivers spent power-gated."""
        transceivers = list(self.transceivers.values())
        if not transceivers:
            return 0.0
        return sum(t.sleep_fraction() for t in transceivers) / len(transceivers)
