"""Flow-control units (flits).

Wormhole switching breaks every packet into flits [16]: a head flit that
carries the routing information and reserves resources hop by hop, body
flits that follow the reserved path, and a tail flit that releases it.  The
simulator moves individual flits between virtual-channel buffers every
cycle, so the flit object is deliberately tiny (``__slots__``) — at a
64-flit packet size the simulator creates hundreds of thousands of them per
run.
"""

from __future__ import annotations

from enum import IntEnum
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .packet import Packet


class FlitType(IntEnum):
    """Position of a flit within its packet."""

    HEAD = 0
    BODY = 1
    TAIL = 2
    HEAD_TAIL = 3  # single-flit packets


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "index", "flit_type")

    def __init__(self, packet: "Packet", index: int, flit_type: FlitType) -> None:
        self.packet = packet
        self.index = index
        self.flit_type = flit_type

    @property
    def is_head(self) -> bool:
        """Whether this flit opens the packet (reserves the path)."""
        return self.flit_type in (FlitType.HEAD, FlitType.HEAD_TAIL)

    @property
    def is_tail(self) -> bool:
        """Whether this flit closes the packet (releases the path)."""
        return self.flit_type in (FlitType.TAIL, FlitType.HEAD_TAIL)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Flit(packet={self.packet.packet_id}, index={self.index}, "
            f"type={self.flit_type.name})"
        )


def flit_type_for(index: int, packet_length: int) -> FlitType:
    """Flit type for position ``index`` of a packet of ``packet_length`` flits."""
    if packet_length <= 0:
        raise ValueError(f"packet_length must be positive, got {packet_length}")
    if index < 0 or index >= packet_length:
        raise ValueError(f"index {index} outside packet of length {packet_length}")
    if packet_length == 1:
        return FlitType.HEAD_TAIL
    if index == 0:
        return FlitType.HEAD
    if index == packet_length - 1:
        return FlitType.TAIL
    return FlitType.BODY
