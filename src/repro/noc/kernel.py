"""The phase-structured simulation kernel.

Mirrors the simulator described in Section IV of the paper: it
"characterizes the multichip architecture and models the progress of the
flits over the switches and links per cycle accounting for those flits that
reach the destination as well as those that are stalled".

Each simulated cycle executes five explicit phases, in order:

1. :class:`ArrivalPhase` — flits whose fabric traversal completes this
   cycle are appended to their reserved downstream VC buffers.
2. :class:`GenerationPhase` — the traffic model emits new packets into the
   per-endpoint source queues; routes are assigned from the pre-computed
   shortest paths.
3. :class:`InjectionPhase` — source queues feed flits into free local-port
   VCs (one flit per cycle per switch, more for multi-endpoint memory dies).
4. :class:`FabricPhase` — every fabric with time-dependent state advances
   (the wireless fabric's channel arbitration and transceiver power states).
5. :class:`AllocationPhase` — switches arbitrate their output ports among
   the VCs requesting them (round-robin), move the winning flits onto their
   fabric or the ejection port, perform credit-equivalent space reservation
   downstream, and charge energy.

Runs carrying a non-empty fault plan prepend a :class:`FaultPhase` that
applies due fault events and triggers routing recovery (see
:mod:`repro.faults.injector`) before anything else moves in the cycle;
fault-free runs execute exactly the five phases above.

The injection and allocation phases take their per-cycle work lists from a
:class:`Scheduler`.  The :class:`DenseScheduler` visits every switch every
cycle — a faithful transliteration of the original monolithic engine loop —
while the :class:`ActiveSetScheduler` maintains *wake sets* of switches
that can possibly make progress (buffered flits for allocation, queued or
partially serialised packets for injection) and skips everything else.
Skipped switches are exactly those for which the dense pass would be a
no-op, so the two schedulers are bit-identical (the parity tests in
``tests/test_kernel.py`` prove it); the active-set scheduler is simply
several times faster at the low and mid loads that dominate every figure
sweep.

A watchdog aborts the run if no flit makes progress for a configurable
number of cycles while traffic is still in flight, so routing or protocol
bugs surface as loud errors instead of silent hangs.  The watchdog is
re-anchored at the warm-up boundary and on traffic phase changes (see
:meth:`repro.traffic.base.TrafficModel.phase_token`), so long cold starts
and bursty phase-structured workloads cannot trip it spuriously; a phase
change only re-anchors when some flit has progressed since the previous
anchor, so fast-cycling phases can never mask a genuine deadlock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..energy import EnergyAccountant
from ..routing.base import BaseRouter, RoutingError
from ..traffic.base import TrafficModel, TrafficRequest
from .config import NetworkConfig
from .flit import Flit
from .network import Network
from .packet import Packet
from .stats import SimulationResult
from .switch import Switch
from .virtual_channel import VirtualChannel

#: The scheduler names accepted by :class:`SimulationConfig`.
SCHEDULERS = ("active", "dense")


class SimulationStallError(RuntimeError):
    """Raised when no flit has moved for ``watchdog_cycles`` cycles."""


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and robustness parameters of one simulation."""

    cycles: int = 3000
    warmup_cycles: int = 300
    watchdog_cycles: int = 4000
    max_source_queue_packets: int = 16
    raise_on_stall: bool = True
    #: Per-cycle work-list strategy: ``"active"`` (wake sets, the default)
    #: or ``"dense"`` (visit every switch every cycle, the reference
    #: behaviour of the original engine).  Results are bit-identical.
    scheduler: str = "active"

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if not 0 <= self.warmup_cycles < self.cycles:
            raise ValueError("warmup_cycles must be in [0, cycles)")
        if self.watchdog_cycles <= 0:
            raise ValueError("watchdog_cycles must be positive")
        if self.max_source_queue_packets <= 0:
            raise ValueError("max_source_queue_packets must be positive")
        if self.scheduler not in SCHEDULERS:
            known = ", ".join(SCHEDULERS)
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; known: {known}"
            )


# ----------------------------------------------------------------------
# Schedulers.
# ----------------------------------------------------------------------


class Scheduler:
    """Decides which switches each phase visits in a given cycle.

    The kernel notifies the scheduler of every event that can wake a
    switch (a flit buffered into one of its VCs, a packet queued at one of
    its endpoints) and of every opportunity to let one sleep again (a
    visited switch that drained, an injector with nothing left to
    serialise).  Candidate lists are always produced in ascending
    switch-id order, matching the dense iteration order, so arbitration
    outcomes are identical under both schedulers.
    """

    name = "scheduler"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        """Attach the (sorted) switch lists of the network being run."""
        raise NotImplementedError

    def allocation_candidates(self) -> Iterable[Switch]:
        """Switches the allocation phase must visit this cycle."""
        raise NotImplementedError

    def injection_candidates(self) -> Iterable[Switch]:
        """Switches the injection phase must visit this cycle."""
        raise NotImplementedError

    def on_flit_buffered(self, switch: Switch) -> None:
        """A flit entered one of ``switch``'s VC buffers."""

    def on_flit_drained(self, switch: Switch) -> None:
        """A flit left one of ``switch``'s VC buffers."""

    def on_packet_queued(self, switch: Switch) -> None:
        """A packet joined a source queue of one of ``switch``'s endpoints."""

    def after_allocation(self, switch: Switch) -> None:
        """The allocation phase finished visiting ``switch`` this cycle."""

    def after_injection(self, switch: Switch, has_work: bool) -> None:
        """The injection phase finished visiting ``switch`` this cycle."""

    def on_fault(self, switch: Switch) -> None:
        """A fault-recovery pass touched ``switch`` (topology changed).

        Schedulers that skip idle switches must re-examine it: a head flit
        that was blocked on a failed component may have been rerouted onto a
        sendable output, so the switch needs a fresh visit even though no
        buffer or queue event fired.
        """


class DenseScheduler(Scheduler):
    """Visit every switch every cycle (the original engine's behaviour)."""

    name = "dense"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        self._switches = switches
        self._injecting = injecting

    def allocation_candidates(self) -> Iterable[Switch]:
        return self._switches

    def injection_candidates(self) -> Iterable[Switch]:
        return self._injecting


class ActiveSetScheduler(Scheduler):
    """Visit only switches that can possibly make progress.

    A switch is *allocation-active* while any of its VC buffers holds a
    flit, and *injection-active* while any attached endpoint has queued
    packets or a local VC is mid-serialisation.  Both conditions are
    exactly the preconditions under which the dense pass can mutate state,
    so skipping inactive switches never changes a simulation outcome —
    only the wall-clock cost of reaching it.
    """

    name = "active"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        self._switch_of = {s.switch_id: s for s in switches}
        self._buffered: Dict[int, int] = {s.switch_id: 0 for s in switches}
        self._alloc_active: set = set()
        self._inject_active: set = set()

    def allocation_candidates(self) -> Iterable[Switch]:
        switch_of = self._switch_of
        return [switch_of[sid] for sid in sorted(self._alloc_active)]

    def injection_candidates(self) -> Iterable[Switch]:
        switch_of = self._switch_of
        return [switch_of[sid] for sid in sorted(self._inject_active)]

    def on_flit_buffered(self, switch: Switch) -> None:
        sid = switch.switch_id
        self._buffered[sid] += 1
        self._alloc_active.add(sid)

    def on_flit_drained(self, switch: Switch) -> None:
        self._buffered[switch.switch_id] -= 1

    def on_packet_queued(self, switch: Switch) -> None:
        self._inject_active.add(switch.switch_id)

    def after_allocation(self, switch: Switch) -> None:
        if self._buffered[switch.switch_id] == 0:
            self._alloc_active.discard(switch.switch_id)

    def after_injection(self, switch: Switch, has_work: bool) -> None:
        if not has_work:
            self._inject_active.discard(switch.switch_id)

    def on_fault(self, switch: Switch) -> None:
        sid = switch.switch_id
        if self._buffered.get(sid, 0) > 0:
            self._alloc_active.add(sid)
        # Let the next injection pass re-derive whether the switch has
        # source work; an extra visit self-corrects via after_injection.
        self._inject_active.add(sid)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by its :class:`SimulationConfig` name."""
    if name == "dense":
        return DenseScheduler()
    if name == "active":
        return ActiveSetScheduler()
    known = ", ".join(SCHEDULERS)
    raise ValueError(f"unknown scheduler {name!r}; known: {known}")


# ----------------------------------------------------------------------
# Kernel state: everything the phases mutate.
# ----------------------------------------------------------------------


class KernelState:
    """Mutable per-run state shared by the kernel's phases."""

    def __init__(
        self,
        network: Network,
        router: BaseRouter,
        traffic: TrafficModel,
        accountant: EnergyAccountant,
        result: SimulationResult,
        config: SimulationConfig,
        net_config: NetworkConfig,
        scheduler: Scheduler,
    ) -> None:
        self.network = network
        self.router = router
        self.traffic = traffic
        self.accountant = accountant
        self.result = result
        self.config = config
        self.net_config = net_config
        self.scheduler = scheduler
        self.cycle = 0
        self.stalled = False
        self.last_progress_cycle = 0
        self.next_packet_id = 0
        #: Whether this run carries a fault plan (set by the kernel).  Only
        #: then may traffic generation encounter unreachable destinations,
        #: which are dropped with explicit accounting instead of raising.
        self.faults_active = False
        self.source_queues: Dict[int, Deque[Packet]] = {
            endpoint_id: deque() for endpoint_id in network.endpoint_switch
        }
        self.arrivals: Dict[int, List[Tuple[VirtualChannel, Flit]]] = {}
        self.switch_energy_pj = network.switch_dynamic_energy_pj_per_flit

    # ------------------------------------------------------------------
    # Phase 1: arrivals.
    # ------------------------------------------------------------------

    def process_arrivals(self, cycle: int) -> None:
        due = self.arrivals.pop(cycle, None)
        if not due:
            return
        scheduler = self.scheduler
        for vc, flit in due:
            vc.deliver(flit)
            scheduler.on_flit_buffered(vc.port.switch)
        self.last_progress_cycle = cycle

    # ------------------------------------------------------------------
    # Phase 2: traffic generation.
    # ------------------------------------------------------------------

    def generate_traffic(self, cycle: int) -> None:
        for request in self.traffic.generate(cycle):
            self.enqueue_request(request, cycle)

    def enqueue_request(self, request: TrafficRequest, cycle: int) -> None:
        """Turn a traffic request into a routed packet in its source queue."""
        self.result.packets_offered += 1
        queue = self.source_queues.get(request.src_endpoint)
        if queue is None:
            raise ValueError(f"unknown source endpoint {request.src_endpoint}")
        if len(queue) >= self.config.max_source_queue_packets:
            return  # finite source queue: the request is dropped at the source
        src_switch = self.network.switch_for_endpoint(request.src_endpoint)
        dst_switch = self.network.switch_for_endpoint(request.dst_endpoint)
        if src_switch.switch_id == dst_switch.switch_id:
            route = [src_switch.switch_id]
        else:
            try:
                route = self.router.route(src_switch.switch_id, dst_switch.switch_id)
            except RoutingError:
                if not self.faults_active:
                    raise
                # Fault-induced partition: the destination island is
                # unreachable, so the request is dropped *with accounting*.
                # It counts as generated so delivery_ratio weighs this loss
                # path the same as a packet purged after queueing.
                self.result.packets_generated += 1
                self.result.packets_dropped_unroutable += 1
                return
        length = request.length_flits or self.net_config.packet_length_flits
        packet = Packet(
            packet_id=self.next_packet_id,
            src_endpoint=request.src_endpoint,
            dst_endpoint=request.dst_endpoint,
            src_switch=src_switch.switch_id,
            dst_switch=dst_switch.switch_id,
            length_flits=length,
            generation_cycle=cycle,
            route=route,
            is_memory_access=request.is_memory_access,
            is_reply=request.is_reply,
            measured=cycle >= self.config.warmup_cycles,
            traffic_class=request.traffic_class,
        )
        self.next_packet_id += 1
        queue.append(packet)
        self.result.packets_generated += 1
        self.scheduler.on_packet_queued(src_switch)

    # ------------------------------------------------------------------
    # Phase 3: injection.
    # ------------------------------------------------------------------

    def inject(self, switch: Switch, cycle: int) -> None:
        budget = switch.injection_width
        local = switch.local_input
        # Continue serialising packets already owning a local VC.
        for vc in local.vcs:
            if budget == 0:
                return
            packet = vc.source_packet
            if packet is None:
                continue
            if len(vc.buffer) + vc.in_flight >= vc.capacity:
                continue
            flit = packet.make_flit(vc.source_flits_emitted)
            vc.buffer.append(flit)
            self.scheduler.on_flit_buffered(switch)
            vc.source_flits_emitted += 1
            self.result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if vc.source_flits_emitted >= packet.length_flits:
                vc.source_packet = None
                vc.source_flits_emitted = 0
        if budget == 0:
            return
        # Start injecting new packets from the attached endpoints.
        for endpoint_id in switch.endpoints:
            if budget == 0:
                return
            queue = self.source_queues.get(endpoint_id)
            if not queue:
                continue
            vc = local.find_free_vc()
            if vc is None:
                return
            packet = queue.popleft()
            packet.injection_cycle = cycle
            vc.allocated_packet_id = packet.packet_id
            vc.source_packet = packet
            vc.source_flits_emitted = 0
            flit = packet.make_flit(0)
            vc.buffer.append(flit)
            self.scheduler.on_flit_buffered(switch)
            vc.source_flits_emitted = 1
            self.result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if vc.source_flits_emitted >= packet.length_flits:
                vc.source_packet = None
                vc.source_flits_emitted = 0

    def has_injection_work(self, switch: Switch) -> bool:
        """Whether the switch still has anything for the injection phase."""
        for vc in switch.local_input.vcs:
            if vc.source_packet is not None:
                return True
        for endpoint_id in switch.endpoints:
            if self.source_queues.get(endpoint_id):
                return True
        return False

    # ------------------------------------------------------------------
    # Phase 5: switch allocation and traversal.
    # ------------------------------------------------------------------

    def allocate(self, switch: Switch, cycle: int) -> None:
        requests: Dict[object, List[VirtualChannel]] = {}
        for port in switch.input_ports.values():
            for vc in port.vcs:
                if not vc.buffer:
                    continue
                if vc.current_output is None:
                    self._assign_output(switch, vc)
                requests.setdefault(vc.current_output, []).append(vc)
        if not requests:
            return
        for output, vcs in requests.items():
            if output.is_ejection:
                self._serve_ejection(switch, output, vcs, cycle)
                continue
            if not output.is_available(cycle):
                continue
            eligible = [vc for vc in vcs if self._can_send(switch, vc, output, cycle)]
            if not eligible:
                continue
            winner = switch.select_round_robin(output, eligible)
            self._send(switch, winner, output, cycle)

    def _assign_output(self, switch: Switch, vc: VirtualChannel) -> None:
        flit = vc.buffer[0]
        packet = flit.packet
        if not flit.is_head:
            raise RuntimeError(
                f"VC {vc!r} has no routing state but its front flit is not a head"
            )
        if switch.switch_id == packet.dst_switch:
            vc.current_output = switch.ejection_port
            vc.downstream_port = None
            vc.downstream_switch = None
            return
        expected = packet.route[packet.head_hop]
        if expected != switch.switch_id:
            raise RuntimeError(
                f"packet {packet.packet_id} head expected at switch {expected} "
                f"but found at {switch.switch_id}"
            )
        next_switch = packet.route[packet.head_hop + 1]
        output = switch.output_towards(next_switch)
        vc.current_output = output
        vc.downstream_switch = next_switch
        vc.downstream_port = output.fabric.resolve_downstream(output, next_switch)

    def _serve_ejection(self, switch: Switch, output, vcs, cycle: int) -> None:
        budget = output.width
        candidates = [vc for vc in vcs if vc.buffer]
        while budget > 0 and candidates:
            winner = switch.select_round_robin(output, candidates)
            self._eject(switch, winner, cycle)
            candidates.remove(winner)
            budget -= 1

    def _can_send(self, switch: Switch, vc: VirtualChannel, output, cycle: int) -> bool:
        flit = vc.buffer[0]
        packet = flit.packet
        downstream = vc.downstream_port
        if downstream is None:
            return False
        target = downstream.find_vc_for_packet(packet.packet_id)
        if target is None:
            if not flit.is_head:
                return False
            target = downstream.find_free_vc()
            if target is None:
                return False
        if not target.has_space():
            return False
        return output.fabric.may_send(
            switch.switch_id, packet, vc.downstream_switch, flit
        )

    def _send(self, switch: Switch, vc: VirtualChannel, output, cycle: int) -> None:
        front = vc.buffer[0]
        packet = front.packet
        downstream = vc.downstream_port
        downstream_switch = vc.downstream_switch
        target = downstream.find_vc_for_packet(packet.packet_id)
        if target is None:
            target = downstream.find_free_vc()
        if target is None or not target.has_space():
            raise RuntimeError("send() called without a valid downstream VC")
        flit = vc.pop()
        self.scheduler.on_flit_drained(switch)
        target.reserve(packet.packet_id, flit.is_head)
        arrival_cycle = cycle + output.link.latency_cycles
        self.arrivals.setdefault(arrival_cycle, []).append((target, flit))
        output.occupy(cycle)

        fabric = output.fabric
        self.accountant.record_switch_traversal(packet, self.switch_energy_pj)
        self.accountant.record_link_traversal(
            packet, output.link.energy_pj_per_flit, wireless=fabric.is_wireless
        )
        self.result.flit_hops += 1
        fabric.on_flit_sent(switch.switch_id, packet, downstream_switch, flit, cycle)
        if flit.is_head:
            packet.head_hop += 1
        self.last_progress_cycle = cycle

    def _eject(self, switch: Switch, vc: VirtualChannel, cycle: int) -> None:
        front = vc.buffer[0]
        packet = front.packet
        flit = vc.pop()
        self.scheduler.on_flit_drained(switch)
        self.accountant.record_switch_traversal(packet, self.switch_energy_pj)
        packet.record_ejection(flit, cycle)
        self.result.flits_ejected_total += 1
        if cycle >= self.config.warmup_cycles:
            self.result.flits_ejected_measured += 1
        self.last_progress_cycle = cycle
        if not flit.is_tail:
            return
        self.result.packets_delivered += 1
        if packet.measured:
            self.result.packets_delivered_measured += 1
            self.result.latencies_cycles.append(packet.latency_cycles)
            if packet.network_latency_cycles is not None:
                self.result.network_latencies_cycles.append(
                    packet.network_latency_cycles
                )
            self.result.packet_energies_pj.append(packet.energy_pj)
            self.result.packet_hops.append(packet.hop_count)
        for reply in self.traffic.on_packet_delivered(packet, cycle):
            self.enqueue_request(reply, cycle)

    # ------------------------------------------------------------------
    # Watchdog.
    # ------------------------------------------------------------------

    def anchor_watchdog(self, cycle: int) -> None:
        """Restart the stall countdown (warm-up boundary, phase change)."""
        if cycle > self.last_progress_cycle:
            self.last_progress_cycle = cycle

    def check_watchdog(self, cycle: int) -> None:
        if cycle - self.last_progress_cycle < self.config.watchdog_cycles:
            return
        in_flight = (
            self.network.total_buffered_flits() > 0
            or any(self.arrivals.values())
            or any(self.source_queues.values())
        )
        if not in_flight:
            self.last_progress_cycle = cycle
            return
        message = (
            f"no flit progress for {self.config.watchdog_cycles} cycles at cycle "
            f"{cycle} with traffic still in flight (possible deadlock)"
        )
        if self.config.raise_on_stall:
            raise SimulationStallError(message)
        self.stalled = True


# ----------------------------------------------------------------------
# Phases.
# ----------------------------------------------------------------------


class Phase:
    """One step of the per-cycle pipeline."""

    name = "phase"

    def __init__(self, state: KernelState) -> None:
        self.state = state

    def run(self, cycle: int) -> None:
        raise NotImplementedError


class FaultPhase(Phase):
    """Apply due fault events and recover routing around them.

    Present only when the run carries a non-empty fault plan, so fault-free
    simulations execute exactly the same five-phase pipeline (and produce
    bit-identical results) as before the fault subsystem existed.  Runs
    first in the cycle: a component that dies at cycle *c* is gone before
    any flit moves in cycle *c*.
    """

    name = "faults"

    def __init__(self, state: KernelState, injector) -> None:
        super().__init__(state)
        self.injector = injector

    def run(self, cycle: int) -> None:
        self.injector.advance(cycle, self.state)


class ArrivalPhase(Phase):
    """Deliver flits whose fabric traversal completes this cycle."""

    name = "arrival"

    def run(self, cycle: int) -> None:
        self.state.process_arrivals(cycle)


class GenerationPhase(Phase):
    """Let the traffic model emit new packets into the source queues."""

    name = "generation"

    def run(self, cycle: int) -> None:
        self.state.generate_traffic(cycle)


class InjectionPhase(Phase):
    """Serialise queued packets into free local-port VCs."""

    name = "injection"

    def run(self, cycle: int) -> None:
        state = self.state
        scheduler = state.scheduler
        for switch in scheduler.injection_candidates():
            state.inject(switch, cycle)
            scheduler.after_injection(switch, state.has_injection_work(switch))


class FabricPhase(Phase):
    """Advance every fabric with time-dependent state (MAC, transceivers)."""

    name = "fabric"

    def __init__(self, state: KernelState) -> None:
        super().__init__(state)
        self._fabrics = [f for f in state.network.fabrics if f.needs_update]

    def run(self, cycle: int) -> None:
        for fabric in self._fabrics:
            fabric.update(cycle)


class AllocationPhase(Phase):
    """Arbitrate output ports and move winning flits onto their fabric."""

    name = "allocation"

    def run(self, cycle: int) -> None:
        state = self.state
        scheduler = state.scheduler
        for switch in scheduler.allocation_candidates():
            state.allocate(switch, cycle)
            scheduler.after_allocation(switch)


# ----------------------------------------------------------------------
# The kernel.
# ----------------------------------------------------------------------


class SimulationKernel:
    """Drives the five per-cycle phases over one network instance."""

    def __init__(
        self,
        network: Network,
        router: BaseRouter,
        traffic: TrafficModel,
        accountant: EnergyAccountant,
        result: SimulationResult,
        config: SimulationConfig,
        net_config: NetworkConfig,
        scheduler: Optional[Scheduler] = None,
        fault_injector=None,
    ) -> None:
        self.scheduler = scheduler or make_scheduler(config.scheduler)
        switches = [network.switches[sid] for sid in sorted(network.switches)]
        injecting = [s for s in switches if s.endpoints]
        self.scheduler.bind(switches, injecting)
        self.state = KernelState(
            network=network,
            router=router,
            traffic=traffic,
            accountant=accountant,
            result=result,
            config=config,
            net_config=net_config,
            scheduler=self.scheduler,
        )
        self.phases: List[Phase] = [
            ArrivalPhase(self.state),
            GenerationPhase(self.state),
            InjectionPhase(self.state),
            FabricPhase(self.state),
            AllocationPhase(self.state),
        ]
        if fault_injector is not None:
            self.state.faults_active = True
            self.phases.insert(0, FaultPhase(self.state, fault_injector))

    def run(self) -> KernelState:
        """Execute the configured number of cycles and return the state."""
        state = self.state
        config = state.config
        phases = self.phases
        phase_token = state.traffic.phase_token()
        # Progress level at the last phase-change anchor.  A phase change
        # only re-anchors the watchdog when some flit made progress since
        # the previous anchor: a workload whose phases are shorter than
        # ``watchdog_cycles`` must not be able to mask a genuine deadlock
        # by re-anchoring forever while nothing moves.
        anchored_progress = 0
        for cycle in range(config.cycles):
            state.cycle = cycle
            if cycle == config.warmup_cycles:
                state.anchor_watchdog(cycle)
            for phase in phases:
                phase.run(cycle)
            token = state.traffic.phase_token()
            if token != phase_token:
                phase_token = token
                if state.last_progress_cycle > anchored_progress:
                    state.anchor_watchdog(cycle)
                    anchored_progress = state.last_progress_cycle
            state.check_watchdog(cycle)
            if state.stalled:
                break
        return state
