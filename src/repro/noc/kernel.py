"""The phase-structured simulation kernel.

Mirrors the simulator described in Section IV of the paper: it
"characterizes the multichip architecture and models the progress of the
flits over the switches and links per cycle accounting for those flits that
reach the destination as well as those that are stalled".

Each simulated cycle executes five explicit phases, in order:

1. :class:`ArrivalPhase` — flits whose fabric traversal completes this
   cycle are appended to their reserved downstream VC buffers.
2. :class:`GenerationPhase` — the traffic model emits new packets into the
   per-endpoint source queues; routes are assigned from the pre-computed
   shortest paths.
3. :class:`InjectionPhase` — source queues feed flits into free local-port
   VCs (one flit per cycle per switch, more for multi-endpoint memory dies).
4. :class:`FabricPhase` — every fabric with time-dependent state advances
   (the wireless fabric's channel arbitration and transceiver power states).
5. :class:`AllocationPhase` — switches arbitrate their output ports among
   the VCs requesting them (round-robin), move the winning flits onto their
   fabric or the ejection port, perform credit-equivalent space reservation
   downstream, and charge energy.

Runs carrying a non-empty fault plan prepend a :class:`FaultPhase` that
applies due fault events and triggers routing recovery (see
:mod:`repro.faults.injector`) before anything else moves in the cycle;
fault-free runs execute exactly the five phases above.

The data plane is array-backed (see :mod:`repro.noc.pool`): packets live in
a :class:`~repro.noc.pool.PacketPool` of parallel arrays addressed by
integer handles, flits are packed ``(handle, index)`` integers, VC buffers
are fixed-capacity rings of those integers, and per-packet routes are
compiled once into dense per-hop output-port tables.  The hot phase bodies
below inline the ring and pool arithmetic — no flit or packet object is
created, hashed, or attribute-chased anywhere on the per-flit path.  The
legacy object API remains at the boundary: traffic delivery callbacks
receive a :class:`~repro.noc.pool.PacketView`.

The injection and allocation phases take their per-cycle work lists from a
:class:`Scheduler`.  The :class:`DenseScheduler` visits every switch every
cycle — a faithful transliteration of the original monolithic engine loop —
while the :class:`ActiveSetScheduler` maintains *wake sets* of switches
that can possibly make progress (buffered flits for allocation, queued or
partially serialised packets for injection) and skips everything else.
Skipped switches are exactly those for which the dense pass would be a
no-op, so the two schedulers are bit-identical (the parity tests in
``tests/test_kernel.py`` prove it); the active-set scheduler is simply
several times faster at the low and mid loads that dominate every figure
sweep.

A watchdog aborts the run if no flit makes progress for a configurable
number of cycles while traffic is still in flight, so routing or protocol
bugs surface as loud errors instead of silent hangs.  The watchdog is
re-anchored at the warm-up boundary and on traffic phase changes (see
:meth:`repro.traffic.base.TrafficModel.phase_token`), so long cold starts
and bursty phase-structured workloads cannot trip it spuriously; a phase
change only re-anchors when some flit has progressed since the previous
anchor, so fast-cycling phases can never mask a genuine deadlock.
"""

from __future__ import annotations

import pickle
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..energy import EnergyAccountant
from ..routing.base import BaseRouter, RoutingError
from ..traffic.base import TrafficModel, TrafficRequest
from .checkpoint import (
    CheckpointEngineMismatchError,
    KernelCheckpoint,
    graph_pickling_limit,
)
from .config import NetworkConfig
from .network import Network
from .pool import FLIT_INDEX_BITS, FLIT_INDEX_MASK, PacketPool, PacketView
from .stats import SimulationResult
from .switch import Switch
from .virtual_channel import VirtualChannel

#: The scheduler names accepted by :class:`SimulationConfig`.
SCHEDULERS = ("active", "dense")

#: The execution-engine names accepted by :class:`SimulationConfig`.
ENGINES = ("scalar", "vector")

#: The per-packet metrics storage modes accepted by :class:`SimulationConfig`.
METRICS_MODES = ("sampled", "streaming")


class SimulationStallError(RuntimeError):
    """Raised when no flit has moved for ``watchdog_cycles`` cycles."""


@dataclass(frozen=True)
class SimulationConfig:
    """Run-length and robustness parameters of one simulation."""

    cycles: int = 3000
    warmup_cycles: int = 300
    watchdog_cycles: int = 4000
    max_source_queue_packets: int = 16
    raise_on_stall: bool = True
    #: Per-cycle work-list strategy: ``"active"`` (wake sets, the default)
    #: or ``"dense"`` (visit every switch every cycle, the reference
    #: behaviour of the original engine).  Results are bit-identical.
    scheduler: str = "active"
    #: Execution engine: ``"scalar"`` (the per-switch Python loops, the
    #: bit-identical reference) or ``"vector"`` (the NumPy SoA fast path of
    #: :mod:`repro.noc.vector`).  The vector engine applies to wired,
    #: fault-free runs; wireless or faulted configurations transparently
    #: fall back to the scalar phases, so results are bit-identical either
    #: way (the ``scheduler`` knob is inert while the fast path is active).
    engine: str = "scalar"
    #: Per-packet sample storage: ``"sampled"`` (exact per-packet lists,
    #: the default) or ``"streaming"`` (constant-memory accumulators, see
    #: :mod:`repro.metrics.streaming`).
    metrics: str = "sampled"
    #: When set, the kernel times each phase per cycle and publishes the
    #: accumulated per-phase wall clock as ``SimulationResult.phase_seconds``
    #: (see the experiment CLI's ``--profile``).  Off by default: the timed
    #: loop costs two clock reads per phase per cycle.
    profile_phases: bool = False
    #: Take a resumable :class:`~repro.noc.checkpoint.KernelCheckpoint`
    #: every N executed cycles (0, the default, disables checkpointing).
    #: The knob never changes simulation results — checkpoints are captured
    #: at cycle boundaries and delivered to the caller's hook (see
    #: ``Simulator.checkpoint_sink``); it is deliberately not part of the
    #: task cache key.
    checkpoint_every_cycles: int = 0

    def __post_init__(self) -> None:
        if self.cycles <= 0:
            raise ValueError("cycles must be positive")
        if not 0 <= self.warmup_cycles < self.cycles:
            raise ValueError("warmup_cycles must be in [0, cycles)")
        if self.watchdog_cycles <= 0:
            raise ValueError("watchdog_cycles must be positive")
        if self.max_source_queue_packets <= 0:
            raise ValueError("max_source_queue_packets must be positive")
        if self.scheduler not in SCHEDULERS:
            known = ", ".join(SCHEDULERS)
            raise ValueError(f"unknown scheduler {self.scheduler!r}; known: {known}")
        if self.engine not in ENGINES:
            known = ", ".join(ENGINES)
            raise ValueError(f"unknown engine {self.engine!r}; known: {known}")
        if self.metrics not in METRICS_MODES:
            known = ", ".join(METRICS_MODES)
            raise ValueError(f"unknown metrics mode {self.metrics!r}; known: {known}")
        if self.checkpoint_every_cycles < 0:
            raise ValueError("checkpoint_every_cycles must be >= 0")


# ----------------------------------------------------------------------
# Schedulers.
# ----------------------------------------------------------------------


class Scheduler:
    """Decides which switches each phase visits in a given cycle.

    The kernel notifies the scheduler of every event that can wake a
    switch (a flit buffered into one of its VCs, a packet queued at one of
    its endpoints) and of every opportunity to let one sleep again (a
    visited switch that drained, an injector with nothing left to
    serialise).  Candidate lists are always produced in ascending
    switch-id order, matching the dense iteration order, so arbitration
    outcomes are identical under both schedulers.
    """

    name = "scheduler"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        """Attach the (sorted) switch lists of the network being run."""
        raise NotImplementedError

    def allocation_candidates(self) -> Iterable[Switch]:
        """Switches the allocation phase must visit this cycle."""
        raise NotImplementedError

    def injection_candidates(self) -> Iterable[Switch]:
        """Switches the injection phase must visit this cycle."""
        raise NotImplementedError

    def on_flit_buffered(self, switch: Switch) -> None:
        """A flit entered one of ``switch``'s VC buffers.

        There is no per-flit drain notification: buffer occupancy is read
        from the switch's ``occupied`` VC set (maintained by the kernel's
        ring operations) when the visit finishes (:meth:`after_allocation`),
        so draining costs the schedulers nothing per flit.
        """

    def on_packet_queued(self, switch: Switch) -> None:
        """A packet joined a source queue of one of ``switch``'s endpoints."""

    def after_allocation(self, switch: Switch) -> None:
        """The allocation phase finished visiting ``switch`` this cycle."""

    def after_injection(self, switch: Switch, has_work: bool) -> None:
        """The injection phase finished visiting ``switch`` this cycle."""

    def on_fault(self, switch: Switch) -> None:
        """A fault-recovery pass touched ``switch`` (topology changed).

        Schedulers that skip idle switches must re-examine it: a head flit
        that was blocked on a failed component may have been rerouted onto a
        sendable output, so the switch needs a fresh visit even though no
        buffer or queue event fired.
        """


class DenseScheduler(Scheduler):
    """Visit every switch every cycle (the original engine's behaviour)."""

    name = "dense"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        self._switches = switches
        self._injecting = injecting

    def allocation_candidates(self) -> Iterable[Switch]:
        return self._switches

    def injection_candidates(self) -> Iterable[Switch]:
        return self._injecting


class ActiveSetScheduler(Scheduler):
    """Visit only switches that can possibly make progress.

    A switch is *allocation-active* while any of its VC buffers holds a
    flit, and *injection-active* while any attached endpoint has queued
    packets or a local VC is mid-serialisation.  Both conditions are
    exactly the preconditions under which the dense pass can mutate state,
    so skipping inactive switches never changes a simulation outcome —
    only the wall-clock cost of reaching it.
    """

    name = "active"

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        self._switch_of = {s.switch_id: s for s in switches}
        self._alloc_active: set = set()
        self._inject_active: set = set()

    def allocation_candidates(self) -> Iterable[Switch]:
        switch_of = self._switch_of
        return [switch_of[sid] for sid in sorted(self._alloc_active)]

    def injection_candidates(self) -> Iterable[Switch]:
        switch_of = self._switch_of
        return [switch_of[sid] for sid in sorted(self._inject_active)]

    def on_flit_buffered(self, switch: Switch) -> None:
        self._alloc_active.add(switch.switch_id)

    def on_packet_queued(self, switch: Switch) -> None:
        self._inject_active.add(switch.switch_id)

    def after_allocation(self, switch: Switch) -> None:
        # The switch's occupied-VC set is authoritative: empty means the
        # dense pass would find nothing here either, so the switch sleeps.
        if not switch.occupied:
            self._alloc_active.discard(switch.switch_id)

    def after_injection(self, switch: Switch, has_work: bool) -> None:
        if not has_work:
            self._inject_active.discard(switch.switch_id)

    def on_fault(self, switch: Switch) -> None:
        if switch.occupied:
            self._alloc_active.add(switch.switch_id)
        # Let the next injection pass re-derive whether the switch has
        # source work; an extra visit self-corrects via after_injection.
        self._inject_active.add(switch.switch_id)


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by its :class:`SimulationConfig` name."""
    if name == "dense":
        return DenseScheduler()
    if name == "active":
        return ActiveSetScheduler()
    known = ", ".join(SCHEDULERS)
    raise ValueError(f"unknown scheduler {name!r}; known: {known}")


# ----------------------------------------------------------------------
# Kernel state: everything the phases mutate.
# ----------------------------------------------------------------------


class KernelState:
    """Mutable per-run state shared by the kernel's phases.

    Owns the run's :class:`~repro.noc.pool.PacketPool`; source queues hold
    packet handles, arrival events hold ``(target VC, flit integer)``
    pairs, and the phase bodies below manipulate the VC rings and pool
    arrays directly.
    """

    #: Which engine's phases read this state class.  The vector engine's
    #: :class:`~repro.noc.vector.VectorKernelState` overrides this; the
    #: checkpoint layer records it so a snapshot can refuse an engine that
    #: cannot continue it.
    engine_name = "scalar"

    def __init__(
        self,
        network: Network,
        router: BaseRouter,
        traffic: TrafficModel,
        accountant: EnergyAccountant,
        result: SimulationResult,
        config: SimulationConfig,
        net_config: NetworkConfig,
        scheduler: Scheduler,
        pool_backend: str = "list",
    ) -> None:
        self.network = network
        self.router = router
        self.traffic = traffic
        self.accountant = accountant
        self.result = result
        self.config = config
        self.net_config = net_config
        self.scheduler = scheduler
        self.pool = PacketPool(backend=pool_backend)
        self.cycle = 0
        self.stalled = False
        self.last_progress_cycle = 0
        #: Progress level at the last traffic-phase-change watchdog anchor.
        #: Lives on the state (not as a run-loop local) so a checkpointed
        #: run resumes with the same anchoring decisions as an
        #: uninterrupted one.
        self.anchored_progress = 0
        self.next_packet_id = 0
        #: Whether this run carries a fault plan (set by the kernel).  Only
        #: then may traffic generation encounter unreachable destinations,
        #: which are dropped with explicit accounting instead of raising.
        self.faults_active = False
        self.source_queues: Dict[int, Deque[int]] = {
            endpoint_id: deque() for endpoint_id in network.endpoint_switch
        }
        self.arrivals: Dict[int, List[Tuple[VirtualChannel, int]]] = {}
        self.switch_energy_pj = network.switch_dynamic_energy_pj_per_flit
        # Hot-loop caches.  The pooled arrays are stable list objects (the
        # pool grows them in place with ``extend``) and the breakdown is a
        # run-constant object behind an accountant property, so caching the
        # references here keeps the per-visit preludes to one attribute
        # load each.  Only valid for the list pool backend: NumPy growth
        # reallocates, so the vector engine (the sole numpy-pool user)
        # never touches these caches and re-reads ``self.pool`` instead.
        pool = self.pool
        self._pid = pool.pid
        self._length_flits = pool.length_flits
        self._head_hop = pool.head_hop
        self._energy = pool.energy_pj
        self.breakdown = accountant.breakdown

    # ------------------------------------------------------------------
    # Phase 1: arrivals.
    # ------------------------------------------------------------------

    def process_arrivals(self, cycle: int) -> None:
        due = self.arrivals.pop(cycle, None)
        if not due:
            return
        scheduler = self.scheduler
        for vc, flit in due:
            # Inline VirtualChannel.deliver on the ring.
            if vc.in_flight <= 0:
                raise RuntimeError("deliver() without a matching reserve()")
            vc.in_flight -= 1
            count = vc.count
            vc.buf[(vc.head + count) % vc.capacity] = flit
            vc.count = count + 1
            switch = vc.port.switch
            if not count:
                switch.occupied.add(vc.ordinal)
            scheduler.on_flit_buffered(switch)
        self.last_progress_cycle = cycle

    # ------------------------------------------------------------------
    # Phase 2: traffic generation.
    # ------------------------------------------------------------------

    def generate_traffic(self, cycle: int) -> None:
        for request in self.traffic.generate(cycle):
            self.enqueue_request(request, cycle)

    def enqueue_request(self, request: TrafficRequest, cycle: int) -> None:
        """Turn a traffic request into a routed, pooled packet record."""
        self.result.packets_offered += 1
        queue = self.source_queues.get(request.src_endpoint)
        if queue is None:
            raise ValueError(f"unknown source endpoint {request.src_endpoint}")
        if len(queue) >= self.config.max_source_queue_packets:
            return  # finite source queue: the request is dropped at the source
        src_switch = self.network.switch_for_endpoint(request.src_endpoint)
        dst_switch = self.network.switch_for_endpoint(request.dst_endpoint)
        if src_switch.switch_id == dst_switch.switch_id:
            route = [src_switch.switch_id]
        else:
            try:
                route = self.router.route(src_switch.switch_id, dst_switch.switch_id)
            except RoutingError:
                if not self.faults_active:
                    raise
                # Fault-induced partition: the destination island is
                # unreachable, so the request is dropped *with accounting*.
                # It counts as generated so delivery_ratio weighs this loss
                # path the same as a packet purged after queueing.
                self.result.packets_generated += 1
                self.result.packets_dropped_unroutable += 1
                return
        length = request.length_flits or self.net_config.packet_length_flits
        handle = self.pool.alloc(
            pid=self.next_packet_id,
            src_endpoint=request.src_endpoint,
            dst_endpoint=request.dst_endpoint,
            src_switch=src_switch.switch_id,
            dst_switch=dst_switch.switch_id,
            length_flits=length,
            generation_cycle=cycle,
            route=route,
            is_memory_access=request.is_memory_access,
            is_reply=request.is_reply,
            measured=cycle >= self.config.warmup_cycles,
            traffic_class=request.traffic_class,
        )
        self.next_packet_id += 1
        self.compile_route_ports(handle)
        queue.append(handle)
        self.result.packets_generated += 1
        self.scheduler.on_packet_queued(src_switch)

    def compile_route_ports(self, handle: int) -> None:
        """Compile a pooled packet's route into its per-hop output ports.

        ``route_ports[i]`` is the output port at switch ``route[i]`` towards
        ``route[i + 1]``, so the allocation inner loop indexes a dense list
        instead of resolving the neighbour dictionary per head flit.  Fault
        recovery re-calls this after splicing a packet's route.
        """
        route = self.pool.route[handle]
        switches = self.network.switches
        self.pool.route_ports[handle] = [
            switches[route[i]].output_towards(route[i + 1])
            for i in range(len(route) - 1)
        ]

    def recompile_route_ports(self) -> None:
        """Rebuild the compiled per-hop output-port tables of every live packet.

        A :meth:`~repro.noc.pool.PacketPool.restore` drops the
        ``route_ports`` column (it holds object references into one network
        instance); this pass re-derives it from the restored routes, the
        same way fault recovery does after splicing a route.
        """
        route_ports = self.pool.route_ports
        for handle in self.pool.live_handles():
            if route_ports[handle] is None and self.pool.route[handle] is not None:
                self.compile_route_ports(handle)

    # ------------------------------------------------------------------
    # Phase 3: injection.
    # ------------------------------------------------------------------

    def inject(self, switch: Switch, cycle: int) -> None:
        pool = self.pool
        pool_length = pool.length_flits
        scheduler = self.scheduler
        result = self.result
        budget = switch.injection_width
        local = switch.local_input
        # Continue serialising packets already owning a local VC.
        for vc in local.vcs:
            if budget == 0:
                return
            handle = vc.source_packet
            if handle is None:
                continue
            count = vc.count
            if count + vc.in_flight >= vc.capacity:
                continue
            index = vc.source_flits_emitted
            vc.buf[(vc.head + count) % vc.capacity] = (handle << FLIT_INDEX_BITS) | index
            vc.count = count + 1
            if not count:
                switch.occupied.add(vc.ordinal)
            scheduler.on_flit_buffered(switch)
            vc.source_flits_emitted = index + 1
            result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if index + 1 >= pool_length[handle]:
                vc.source_packet = None
                vc.source_flits_emitted = 0
        if budget == 0:
            return
        # Start injecting new packets from the attached endpoints.
        source_queues = self.source_queues
        for endpoint_id in switch.endpoints:
            if budget == 0:
                return
            queue = source_queues.get(endpoint_id)
            if not queue:
                continue
            vc = local.find_free_vc()
            if vc is None:
                return
            handle = queue.popleft()
            pool.injection_cycle[handle] = cycle
            vc.allocated_packet_id = pool.pid[handle]
            vc.source_packet = handle
            # A free VC is empty by definition, so this is a 0 -> 1 flit
            # transition: the VC joins the occupied set.
            vc.buf[vc.head] = handle << FLIT_INDEX_BITS
            vc.count = 1
            switch.occupied.add(vc.ordinal)
            scheduler.on_flit_buffered(switch)
            vc.source_flits_emitted = 1
            result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if pool_length[handle] <= 1:
                vc.source_packet = None
                vc.source_flits_emitted = 0

    def has_injection_work(self, switch: Switch) -> bool:
        """Whether the switch still has anything for the injection phase."""
        for vc in switch.local_input.vcs:
            if vc.source_packet is not None:
                return True
        source_queues = self.source_queues
        for endpoint_id in switch.endpoints:
            if source_queues.get(endpoint_id):
                return True
        return False

    # ------------------------------------------------------------------
    # Phase 5: switch allocation and traversal.
    # ------------------------------------------------------------------

    def allocate(self, switch: Switch, cycle: int) -> None:
        """Arbitrate this switch's output ports and move the winning flits.

        One inlined pass over the compiled VC table: request collection
        (per-output scratch lists instead of a hashed dict), downstream VC
        lookup, flow-control and fabric admission, round-robin winner
        selection, and the send itself (ring pop, downstream reservation,
        arrival scheduling, energy attribution) all happen here on packed
        flit integers and pool arrays.  The structure and ordering mirror
        the historical ``_can_send``/``_send`` helpers exactly — the
        per-output processing order is first-request order, eligibility is
        evaluated in VC-table order, and every float is accumulated in the
        same sequence — so results are bit-identical to the object-based
        engine, several times faster.
        """
        occupied = switch.occupied
        if not occupied:
            return
        req_outputs = None
        assign = self._assign_output
        vc_by_ordinal = switch.vc_by_ordinal
        for ordinal in sorted(occupied):
            vc = vc_by_ordinal[ordinal]
            output = vc.current_output
            if output is None:
                output = assign(switch, vc)
            scratch = output.request_scratch
            if not scratch:
                if req_outputs is None:
                    req_outputs = [output]
                else:
                    req_outputs.append(output)
            scratch.append(vc)
        if req_outputs is None:
            return
        pool_pid = self._pid
        pool_length = self._length_flits
        pool_head_hop = self._head_hop
        pool_energy = self._energy
        breakdown = self.breakdown
        arrivals = self.arrivals
        switch_energy = self.switch_energy_pj
        result = self.result
        rr_modulus = switch.rr_modulus
        switch_id = switch.switch_id
        try:
            for output in req_outputs:
                vcs = output.request_scratch
                if output.is_ejection:
                    self._serve_ejection(switch, output, vcs, cycle)
                    continue
                if output.busy_until > cycle:
                    continue
                fabric = output.fabric
                check_grant = not fabric.always_grants
                eligible = None
                for vc in vcs:
                    downstream = vc.downstream_port
                    if downstream is None:
                        continue
                    flit = vc.buf[vc.head]
                    handle = flit >> FLIT_INDEX_BITS
                    pid = pool_pid[handle]
                    target = None
                    for tvc in downstream.vcs:
                        if tvc.allocated_packet_id == pid:
                            target = tvc
                            break
                    if target is None:
                        if flit & FLIT_INDEX_MASK:
                            continue  # body flit without an owned VC downstream
                        for tvc in downstream.vcs:
                            if (
                                tvc.allocated_packet_id is None
                                and tvc.count == 0
                                and tvc.in_flight == 0
                            ):
                                target = tvc
                                break
                        if target is None:
                            continue
                    if target.count + target.in_flight >= target.capacity:
                        continue
                    if check_grant and not fabric.grants(
                        switch_id,
                        pid,
                        vc.downstream_switch,
                        not flit & FLIT_INDEX_MASK,
                    ):
                        continue
                    vc.send_target = target
                    if eligible is None:
                        eligible = [vc]
                    else:
                        eligible.append(vc)
                if eligible is None:
                    continue
                # Round-robin winner (inline Switch.select_round_robin).
                if len(eligible) == 1:
                    winner = eligible[0]
                else:
                    pointer = output.rr_pointer
                    winner = None
                    best_rank = rr_modulus
                    for vc in eligible:
                        rank = (vc.ordinal - pointer) % rr_modulus
                        if rank < best_rank:
                            winner = vc
                            best_rank = rank
                output.rr_pointer = (winner.ordinal + 1) % rr_modulus
                # Send the winner's front flit (inline ring pop + reserve).
                target = winner.send_target
                downstream_switch = winner.downstream_switch
                head = winner.head
                flit = winner.buf[head]
                winner.head = (head + 1) % winner.capacity
                winner.count -= 1
                if not winner.count:
                    occupied.discard(winner.ordinal)
                handle = flit >> FLIT_INDEX_BITS
                index = flit & FLIT_INDEX_MASK
                is_head = index == 0
                is_tail = index == pool_length[handle] - 1
                if is_tail:
                    winner.allocated_packet_id = None
                    winner.current_output = None
                    winner.downstream_port = None
                    winner.downstream_switch = None
                pid = pool_pid[handle]
                owner = target.allocated_packet_id
                if is_head:
                    if owner is not None and owner != pid:
                        raise RuntimeError(
                            f"VC already allocated to packet {owner}, cannot "
                            f"accept head of packet {pid}"
                        )
                    target.allocated_packet_id = pid
                elif owner != pid:
                    raise RuntimeError(f"body flit of packet {pid} sent to VC owned by {owner}")
                target.in_flight += 1
                link = output.link
                arrival_cycle = cycle + link.latency_cycles
                entry = arrivals.get(arrival_cycle)
                if entry is None:
                    arrivals[arrival_cycle] = [(target, flit)]
                else:
                    entry.append((target, flit))
                output.busy_until = cycle + link.cycles_per_flit
                breakdown.switch_dynamic_pj += switch_energy
                pool_energy[handle] += switch_energy
                link_energy = link.energy_pj_per_flit
                if fabric.is_wireless:
                    breakdown.wireless_pj += link_energy
                else:
                    breakdown.link_pj += link_energy
                pool_energy[handle] += link_energy
                result.flit_hops += 1
                if fabric.tracks_sends:
                    fabric.notify_sent(switch_id, pid, downstream_switch, is_tail, cycle)
                if is_head:
                    pool_head_hop[handle] += 1
                self.last_progress_cycle = cycle
        finally:
            for output in req_outputs:
                output.request_scratch.clear()

    def _assign_output(self, switch: Switch, vc: VirtualChannel):
        """Route the head flit at the front of ``vc`` (first visit only)."""
        pool = self.pool
        flit = vc.buf[vc.head]
        handle = flit >> FLIT_INDEX_BITS
        if flit & FLIT_INDEX_MASK:
            raise RuntimeError(f"VC {vc!r} has no routing state but its front flit is not a head")
        if switch.switch_id == pool.dst_switch[handle]:
            output = switch.ejection_port
            vc.current_output = output
            vc.downstream_port = None
            vc.downstream_switch = None
            return output
        hop = pool.head_hop[handle]
        route = pool.route[handle]
        expected = route[hop]
        if expected != switch.switch_id:
            raise RuntimeError(
                f"packet {pool.pid[handle]} head expected at switch {expected} "
                f"but found at {switch.switch_id}"
            )
        output = pool.route_ports[handle][hop]
        next_switch = route[hop + 1]
        vc.current_output = output
        vc.downstream_switch = next_switch
        downstream = output.downstream_port
        if downstream is None:
            downstream = output.fabric.resolve_downstream(output, next_switch)
        vc.downstream_port = downstream
        return output

    def _serve_ejection(self, switch: Switch, output, vcs, cycle: int) -> None:
        budget = output.width
        candidates = [vc for vc in vcs if vc.count]
        while budget > 0 and candidates:
            winner = switch.select_round_robin(output, candidates)
            self._eject(switch, winner, cycle)
            candidates.remove(winner)
            budget -= 1

    def _eject(self, switch: Switch, vc: VirtualChannel, cycle: int) -> None:
        pool = self.pool
        head = vc.head
        flit = vc.buf[head]
        vc.head = (head + 1) % vc.capacity
        vc.count -= 1
        if not vc.count:
            switch.occupied.discard(vc.ordinal)
        handle = flit >> FLIT_INDEX_BITS
        index = flit & FLIT_INDEX_MASK
        is_tail = index == pool.length_flits[handle] - 1
        if is_tail:
            vc.release()
        switch_energy = self.switch_energy_pj
        self.breakdown.switch_dynamic_pj += switch_energy
        pool.energy_pj[handle] += switch_energy
        pool.flits_ejected[handle] += 1
        result = self.result
        result.flits_ejected_total += 1
        if cycle >= self.config.warmup_cycles:
            result.flits_ejected_measured += 1
        self.last_progress_cycle = cycle
        if not is_tail:
            return
        pool.ejection_cycle[handle] = cycle
        result.packets_delivered += 1
        if pool.measured[handle]:
            result.packets_delivered_measured += 1
            injection = pool.injection_cycle[handle]
            result.record_delivery(
                cycle - pool.generation_cycle[handle],
                None if injection is None else cycle - injection,
                pool.energy_pj[handle],
                len(pool.route[handle]) - 1,
            )
        for reply in self.traffic.on_packet_delivered(PacketView(pool, handle), cycle):
            self.enqueue_request(reply, cycle)
        pool.free(handle)

    # ------------------------------------------------------------------
    # Watchdog / accounting helpers.
    # ------------------------------------------------------------------

    def residual_flits(self) -> int:
        """Flits still buffered or mid-traversal (end-of-run conservation)."""
        return self.network.total_buffered_flits() + sum(
            len(entries) for entries in self.arrivals.values()
        )

    def anchor_watchdog(self, cycle: int) -> None:
        """Restart the stall countdown (warm-up boundary, phase change)."""
        if cycle > self.last_progress_cycle:
            self.last_progress_cycle = cycle

    def check_watchdog(self, cycle: int) -> None:
        if cycle - self.last_progress_cycle < self.config.watchdog_cycles:
            return
        in_flight = (
            self.network.total_buffered_flits() > 0
            or any(self.arrivals.values())
            or any(self.source_queues.values())
        )
        if not in_flight:
            self.last_progress_cycle = cycle
            return
        message = (
            f"no flit progress for {self.config.watchdog_cycles} cycles at cycle "
            f"{cycle} with traffic still in flight (possible deadlock)"
        )
        if self.config.raise_on_stall:
            raise SimulationStallError(message)
        self.stalled = True

    # ------------------------------------------------------------------
    # Checkpoint/restore.
    # ------------------------------------------------------------------

    def snapshot(self) -> bytes:
        """Serialise the complete mutable state graph of this run.

        Everything a cycle mutates is reachable from the state — the pool
        arrays, VC rings, port arbitration state, scheduler wake sets,
        traffic RNGs, the accountant and the result — and pickle's memo
        preserves the aliasing between them (the hot caches stay views of
        the pool's columns), so :meth:`restore` yields a state that
        continues bit-identically.  Only valid at a cycle boundary: phase
        scratch lists must be empty, which the kernel guarantees between
        cycles.
        """
        with graph_pickling_limit(len(self.network.switches)):
            return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, payload: bytes) -> "KernelState":
        """Deserialise a :meth:`snapshot` taken by exactly this state class.

        Restoring a vector-engine snapshot through the scalar class (or
        vice versa) raises
        :class:`~repro.noc.checkpoint.CheckpointEngineMismatchError`: the
        two engines maintain different run state, so the other engine's
        phases could not continue it bit-identically.
        """
        state = pickle.loads(payload)
        if type(state) is not cls:
            raise CheckpointEngineMismatchError(
                f"snapshot holds a {type(state).__name__} "
                f"({getattr(state, 'engine_name', '?')} engine), "
                f"cannot restore it as {cls.__name__}"
            )
        return state


# ----------------------------------------------------------------------
# Phases.
# ----------------------------------------------------------------------


class Phase:
    """One step of the per-cycle pipeline."""

    name = "phase"

    def __init__(self, state: KernelState) -> None:
        self.state = state

    def run(self, cycle: int) -> None:
        raise NotImplementedError


class FaultPhase(Phase):
    """Apply due fault events and recover routing around them.

    Present only when the run carries a non-empty fault plan, so fault-free
    simulations execute exactly the same five-phase pipeline (and produce
    bit-identical results) as before the fault subsystem existed.  Runs
    first in the cycle: a component that dies at cycle *c* is gone before
    any flit moves in cycle *c*.
    """

    name = "faults"

    def __init__(self, state: KernelState, injector) -> None:
        super().__init__(state)
        self.injector = injector

    def run(self, cycle: int) -> None:
        self.injector.advance(cycle, self.state)


class ArrivalPhase(Phase):
    """Deliver flits whose fabric traversal completes this cycle."""

    name = "arrival"

    def run(self, cycle: int) -> None:
        self.state.process_arrivals(cycle)


class GenerationPhase(Phase):
    """Let the traffic model emit new packets into the source queues."""

    name = "generation"

    def run(self, cycle: int) -> None:
        self.state.generate_traffic(cycle)


class InjectionPhase(Phase):
    """Serialise queued packets into free local-port VCs."""

    name = "injection"

    def run(self, cycle: int) -> None:
        state = self.state
        scheduler = state.scheduler
        for switch in scheduler.injection_candidates():
            state.inject(switch, cycle)
            scheduler.after_injection(switch, state.has_injection_work(switch))


class FabricPhase(Phase):
    """Advance every fabric with time-dependent state (MAC, transceivers)."""

    name = "fabric"

    def __init__(self, state: KernelState) -> None:
        super().__init__(state)
        self._fabrics = [f for f in state.network.fabrics if f.needs_update]

    def run(self, cycle: int) -> None:
        for fabric in self._fabrics:
            fabric.update(cycle)


class AllocationPhase(Phase):
    """Arbitrate output ports and move winning flits onto their fabric."""

    name = "allocation"

    def run(self, cycle: int) -> None:
        state = self.state
        scheduler = state.scheduler
        for switch in scheduler.allocation_candidates():
            state.allocate(switch, cycle)
            scheduler.after_allocation(switch)


# ----------------------------------------------------------------------
# The kernel.
# ----------------------------------------------------------------------


class SimulationKernel:
    """Drives the five per-cycle phases over one network instance."""

    def __init__(
        self,
        network: Network,
        router: BaseRouter,
        traffic: TrafficModel,
        accountant: EnergyAccountant,
        result: SimulationResult,
        config: SimulationConfig,
        net_config: NetworkConfig,
        scheduler: Optional[Scheduler] = None,
        fault_injector=None,
    ) -> None:
        #: Whether the NumPy fast path actually drives this run.  The
        #: vector engine covers wired fault-free configurations; wireless
        #: fabrics and fault plans fall back to the scalar phases (which
        #: are bit-identical by construction, so the fallback is purely a
        #: performance decision).
        self.vector_active = (
            config.engine == "vector"
            and fault_injector is None
            and scheduler is None
            and all(
                not fabric.is_wireless and fabric.always_grants
                for fabric in network.fabrics
            )
        )
        #: The run's fault injector (``None`` on fault-free runs).  Kept as
        #: an attribute so a restored kernel's caller can reach it for the
        #: end-of-run topology restore, exactly like a fresh run's.
        self.fault_injector = fault_injector
        switches = [network.switches[sid] for sid in sorted(network.switches)]
        injecting = [s for s in switches if s.endpoints]
        if self.vector_active:
            from .vector import InjectionTracker, VectorKernelState, vector_phases

            self.scheduler = InjectionTracker()
            self.scheduler.bind(switches, injecting)
            self.state = VectorKernelState(
                network=network,
                router=router,
                traffic=traffic,
                accountant=accountant,
                result=result,
                config=config,
                net_config=net_config,
                scheduler=self.scheduler,
            )
            for fabric in network.fabrics:
                fabric.bind_pool(self.state.pool)
            self.phases: List[Phase] = vector_phases(self.state)
            return
        self.scheduler = scheduler or make_scheduler(config.scheduler)
        self.scheduler.bind(switches, injecting)
        self.state = KernelState(
            network=network,
            router=router,
            traffic=traffic,
            accountant=accountant,
            result=result,
            config=config,
            net_config=net_config,
            scheduler=self.scheduler,
        )
        for fabric in network.fabrics:
            fabric.bind_pool(self.state.pool)
        self.phases = [
            ArrivalPhase(self.state),
            GenerationPhase(self.state),
            InjectionPhase(self.state),
            FabricPhase(self.state),
            AllocationPhase(self.state),
        ]
        if fault_injector is not None:
            self.state.faults_active = True
            self.phases.insert(0, FaultPhase(self.state, fault_injector))

    @property
    def engine_name(self) -> str:
        """The engine actually driving this run (after any fallback)."""
        return "vector" if self.vector_active else "scalar"

    def snapshot(self) -> KernelCheckpoint:
        """Capture a resumable checkpoint of the whole run at this cycle.

        The payload is the pickled kernel graph (phases, scheduler, state
        and — through the state — the network, pool, traffic, accountant
        and result), so nothing outside the checkpoint is needed to
        continue; see :mod:`repro.noc.checkpoint` for the guarantees.
        """
        with graph_pickling_limit(len(self.state.network.switches)):
            payload = pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)
        return KernelCheckpoint(
            engine=self.engine_name,
            cycle=self.state.cycle,
            payload=payload,
        )

    @classmethod
    def resume(cls, checkpoint: KernelCheckpoint, engine: str = "scalar") -> "SimulationKernel":
        """Reconstruct a kernel from a checkpoint, validating the engine.

        ``engine`` is the caller's configured engine request.  A scalar
        checkpoint is acceptable under either request (the vector engine
        falls back to the scalar phases transparently, bit-identically);
        a vector checkpoint under an explicit scalar request raises
        :class:`~repro.noc.checkpoint.CheckpointEngineMismatchError`.
        Continue with :meth:`run` at ``checkpoint.cycle + 1``.
        """
        if checkpoint.engine == "vector" and engine != "vector":
            raise CheckpointEngineMismatchError(
                "checkpoint was taken by the vector engine; the scalar "
                "phases cannot continue it bit-identically (request "
                'engine="vector" to resume it)'
            )
        return pickle.loads(checkpoint.payload)

    def run(
        self,
        start_cycle: int = 0,
        checkpoint_hook: Optional[Callable[[KernelCheckpoint], None]] = None,
    ) -> KernelState:
        """Execute cycles ``start_cycle .. cycles-1`` and return the state.

        ``start_cycle`` is 0 for a fresh run and ``checkpoint.cycle + 1``
        when continuing a restored kernel.  When ``checkpoint_hook`` is
        given and ``config.checkpoint_every_cycles`` is set, the hook
        receives a fresh :meth:`snapshot` after every N executed cycles
        (at the cycle boundary, after the watchdog ran); the final cycle
        is not checkpointed — the run is already done.
        """
        state = self.state
        config = state.config
        phases = self.phases
        profile = config.profile_phases
        phase_seconds = state.result.phase_seconds
        if profile:
            for phase in phases:
                phase_seconds.setdefault(phase.name, 0.0)
        phase_runs = [phase.run for phase in phases]
        phase_token = state.traffic.phase_token()
        every = config.checkpoint_every_cycles if checkpoint_hook is not None else 0
        for cycle in range(start_cycle, config.cycles):
            state.cycle = cycle
            if cycle == config.warmup_cycles:
                state.anchor_watchdog(cycle)
            if profile:
                for phase in phases:
                    started = perf_counter()
                    phase.run(cycle)
                    phase_seconds[phase.name] += perf_counter() - started
            else:
                for run in phase_runs:
                    run(cycle)
            token = state.traffic.phase_token()
            if token != phase_token:
                phase_token = token
                # A phase change only re-anchors the watchdog when some
                # flit made progress since the previous anchor: a workload
                # whose phases are shorter than ``watchdog_cycles`` must
                # not be able to mask a genuine deadlock by re-anchoring
                # forever while nothing moves.
                if state.last_progress_cycle > state.anchored_progress:
                    state.anchor_watchdog(cycle)
                    state.anchored_progress = state.last_progress_cycle
            state.check_watchdog(cycle)
            if state.stalled:
                break
            if every and (cycle + 1) % every == 0 and cycle + 1 < config.cycles:
                checkpoint_hook(self.snapshot())
        return state
