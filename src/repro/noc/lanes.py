"""Multi-lane batched co-simulation: N sweep points in one vector cycle loop.

The vector engine (:mod:`repro.noc.vector`) is bit-identical to the scalar
reference but loses to it at sweep loads: ~30 NumPy dispatches per cycle
over ~50 allocation candidates cannot amortise the per-dispatch overhead.
The lever is batch size (ROADMAP), and every real sweep submits many tasks
that differ only in seed and injection rate over the same topology — so
this module fuses K such runs ("lanes") into ONE SoA state whose arrays
carry a leading lane axis, flattened: fused VC row ``lane * rows + gid``,
fused input port ``lane * in_ports + port``, fused output port
``lane * outs + out``.  One ``flatnonzero`` / gather / grouped-argmin
dispatch per cycle then serves every lane at once.

Exactness (each lane bit-identical to its solo run, hence to solo scalar):

* lanes never share an output port, so allocation groups are per-lane and
  the fused ``process_order`` (ascending first-candidate position over the
  lane-major candidate array) visits lane 0's groups in solo order, then
  lane 1's, and so on — per-lane group order, rank arithmetic and float
  accumulation order are exactly the solo ones;
* ``switch_of_l`` stays lane-local (route entries and ``dst_switch`` are
  lane-local switch ids), while every array index is fused — the only
  override the allocation core needs is :meth:`_assign_output_vec`;
* per-lane mutable run objects (result, traffic, source queues, energy
  breakdown, config, watchdog progress) are context-swapped into the base
  class's attribute slots around the inherited injection bodies, while the
  per-cycle epilogue's order-sensitive replays (energy breakdown, tail
  delivery) are overridden to segment the lane-contiguous event stream per
  lane — so the allocation core of :class:`VectorKernelState`, including
  its bulk array epilogue, is inherited verbatim;
* packet pids are per-lane (they collide across lanes) but every indexed
  structure (``alloc_l`` ownership, the ``rev_vc_l``/``rev_out_l`` claim
  index, the arrival wheel) is keyed on fused port/VC ids, which are
  lane-disjoint; pool handles are shared and opaque.

Lanes terminate independently (ragged cycle counts, per-lane stall): a
finished lane is settled (static energy, residual flits, offered load) and
zeroed in place so the shared loop keeps serving the rest.  Pool handles
still buffered by a retired lane are intentionally left allocated until
the batch ends — the pool dies with the batch.

The entry point is :func:`run_batched`, fed by the batch planner in
:mod:`repro.parallel.runner`; ineligible batches raise
:class:`BatchIneligibleError` and the caller falls back to solo runs.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Dict, List, Optional, Sequence

import numpy

from ..energy import EnergyAccountant
from ..traffic.base import TrafficRequest
from .kernel import SimulationStallError
from .network import Network
from .pool import FLIT_INDEX_BITS, FLIT_INDEX_MASK, PacketView
from .stats import SimulationResult
from .vector import InjectionTracker, VectorKernelState, _SwitchTables

__all__ = ["BatchIneligibleError", "LaneBatchedState", "run_batched"]


class BatchIneligibleError(ValueError):
    """Raised when a task batch cannot be lane-fused (caller runs solo)."""


class _Lane:
    """Per-lane mutable run state (everything one solo run would own)."""

    __slots__ = (
        "index",
        "traffic",
        "accountant",
        "result",
        "config",
        "source_queues",
        "breakdown",
        "next_packet_id",
        "last_progress_cycle",
        "anchored_progress",
        "phase_token",
        "stalled",
        "retired",
        "end_cycle",
    )


class LaneBatchedState(VectorKernelState):
    """A :class:`VectorKernelState` fused over K independent lanes.

    Construction first builds the single-lane tables through the parent
    constructor (against the shared network, with lane 0's run objects),
    then tiles every static table and dynamic array K times.  The
    single-run attribute slots (``result``, ``traffic``, ``source_queues``,
    ``breakdown``, ``config``, ``last_progress_cycle``) become *context
    registers*: thin wrappers load the acting lane's objects into them
    before delegating to the inherited phase bodies.
    """

    engine_name = "vector-batched"

    def __init__(
        self,
        lanes: Sequence[_Lane],
        network: Network,
        router,
        net_config,
        scheduler: InjectionTracker,
    ) -> None:
        lane0 = lanes[0]
        super().__init__(
            network=network,
            router=router,
            traffic=lane0.traffic,
            accountant=lane0.accountant,
            result=lane0.result,
            config=lane0.config,
            net_config=net_config,
            scheduler=scheduler,
        )
        n = len(lanes)
        rows = len(self.cap_l)
        in_ports = len(network.input_port_table)
        outs = len(self.out_is_ej)
        self.lanes: List[_Lane] = list(lanes)
        self.rows_per_lane = rows
        self.in_ports_per_lane = in_ports
        self.outs_per_lane = outs
        self.num_switches_per_lane = len(network.switches)
        # ---- tile the static per-VC tables (lane-major) ----------------
        port0 = self.port_of_l
        base0 = self.in_vc_base
        self.cap_l = self.cap_l * n
        self.ordinal_l = self.ordinal_l * n
        #: Deliberately lane-LOCAL: compared against route entries and
        #: ``dst_switch``, which are lane-local switch ids.
        self.switch_of_l = self.switch_of_l * n
        self.port_of_l = [
            lane * in_ports + port for lane in range(n) for port in port0
        ]
        self.in_vc_base = [
            lane * rows + base for lane in range(n) for base in base0
        ]
        self.port_nvcs = self.port_nvcs * n
        self.vc_cap = numpy.asarray(self.cap_l, dtype=numpy.int64)
        self.ordinal_np = numpy.asarray(self.ordinal_l, dtype=numpy.int64)
        # ---- tile the static per-output tables -------------------------
        down0 = self.out_down_port
        self.out_is_ej = self.out_is_ej * n
        self.out_down_port = [
            -1 if down < 0 else lane * in_ports + down
            for lane in range(n)
            for down in down0
        ]
        self.out_latency = numpy.tile(self.out_latency, n)
        self.out_cpf = numpy.tile(self.out_cpf, n)
        self.out_energy = numpy.tile(self.out_energy, n)
        self.out_width = self.out_width * n
        self.out_rr_mod = self.out_rr_mod * n
        self.out_rr_mod_np = numpy.asarray(self.out_rr_mod, dtype=numpy.int64)
        self.busy_until = numpy.zeros(outs * n, dtype=numpy.int64)
        self.rr_ptr_np = numpy.zeros(outs * n, dtype=numpy.int64)
        # ---- tile the per-switch injection tables ----------------------
        fused_sw: Dict[int, _SwitchTables] = {}
        for lane in range(n):
            gid_base = lane * rows
            out_base = lane * outs
            sid_base = lane * self.num_switches_per_lane
            for sid, tables in self.sw.items():
                fused = _SwitchTables.__new__(_SwitchTables)
                fused.ej_port_id = out_base + tables.ej_port_id
                fused.local_gids = [gid_base + gid for gid in tables.local_gids]
                fused.endpoints = tables.endpoints  # lane-local ids, shareable
                fused.injection_width = tables.injection_width
                fused_sw[sid_base + sid] = fused
        self.sw = fused_sw
        # ---- re-size the dynamic SoA state -----------------------------
        total = rows * n
        maxcap = self.buf2d.shape[1] if rows else 1
        self.vc_count = numpy.zeros(total, dtype=numpy.int64)
        self.vc_head = numpy.zeros(total, dtype=numpy.int64)
        self.vc_in_flight = numpy.zeros(total, dtype=numpy.int64)
        self.alloc_l = [-1] * total
        self.occ_delta = [0] * total
        self.vc_out = numpy.full(total, -1, dtype=numpy.int64)
        self.vc_tgt = numpy.full(total, -1, dtype=numpy.int64)
        self.buf2d = numpy.zeros((total, maxcap), dtype=numpy.int64)
        self.source_handle = [None] * total
        self.source_emitted = [0] * total
        #: Single-lane all-free mask template, used to reset a retired
        #: lane's port masks in place.
        self._lane_free_mask = list(self.free_mask)
        self.free_mask = self.free_mask * n
        self.rev_vc_l = [-1] * total
        self.rev_out_l = [-1] * total
        # The arrival wheel built by the parent constructor carries over
        # unchanged: the slot count depends only on the (shared) link
        # latencies, the slot arrays grow on demand, and entries are fused
        # gids either way.
        #: Aggregate allocation-split profiling is opt-in per batch (the
        #: ``profile_allocation`` flag of :func:`run_batched`); eligible
        #: lane configs never set ``profile_phases``.
        self.profile_alloc = False
        # Poison the single-run context registers: every phase body must
        # run behind a lane swap, so a read outside one fails loudly.
        self.result = None
        self.traffic = None
        self.source_queues = None
        self.breakdown = None
        self.config = None
        self._active_lane: Optional[_Lane] = None

    # ------------------------------------------------------------------
    # Fused index helpers and real overrides.
    # ------------------------------------------------------------------

    def _assign_output_vec(self, gid: int) -> None:
        """Route the head flit of fused row ``gid`` (lane-offset ports)."""
        pool = self.pool
        flit = int(self.buf2d[gid, int(self.vc_head[gid])])
        handle = flit >> FLIT_INDEX_BITS
        if flit & FLIT_INDEX_MASK:
            raise RuntimeError(
                f"VC gid {gid} has no routing state but its front flit is not a head"
            )
        lane = gid // self.rows_per_lane
        switch_id = self.switch_of_l[gid]  # lane-local
        if switch_id == int(pool.dst_switch[handle]):
            fused_sid = lane * self.num_switches_per_lane + switch_id
            self.vc_out[gid] = self.sw[fused_sid].ej_port_id
            return
        hop = int(pool.head_hop[handle])
        route = pool.route[handle]
        if route[hop] != switch_id:
            raise RuntimeError(
                f"packet {int(pool.pid[handle])} head expected at switch "
                f"{route[hop]} but found at {switch_id}"
            )
        self.vc_out[gid] = (
            lane * self.outs_per_lane + pool.route_ports[handle][hop].port_id
        )

    def process_arrivals(self, cycle: int) -> None:
        slot = cycle % self.wheel_size
        count = self.wheel_count[slot]
        if not count:
            return
        rows = self.rows_per_lane
        touched = numpy.unique(self.wheel_targets[slot][:count] // rows).tolist()
        super().process_arrivals(cycle)
        lanes = self.lanes
        for index in touched:
            lanes[index].last_progress_cycle = cycle

    def _note_pops(self, pop_gids: List[int], cycle: int) -> None:
        rows = self.rows_per_lane
        lanes = self.lanes
        for index in {gid // rows for gid in pop_gids}:
            lanes[index].last_progress_cycle = cycle

    def _note_hops(self, new_inflight: List[int]) -> None:
        rows = self.rows_per_lane
        lanes = self.lanes
        for target in new_inflight:
            lanes[target // rows].result.flit_hops += 1

    def check_watchdog(self, cycle: int) -> None:
        rows = self.rows_per_lane
        vc_count = self.vc_count
        for lane in self.lanes:
            if lane.retired:
                continue
            config = lane.config
            if cycle - lane.last_progress_cycle < config.watchdog_cycles:
                continue
            base = lane.index * rows
            end = base + rows
            in_flight = bool(vc_count[base:end].any()) or any(
                lane.source_queues.values()
            )
            if not in_flight and self.wheel_pending:
                for slot in range(self.wheel_size):
                    count = self.wheel_count[slot]
                    if not count:
                        continue
                    targets = self.wheel_targets[slot][:count]
                    if bool(((targets >= base) & (targets < end)).any()):
                        in_flight = True
                        break
            if not in_flight:
                lane.last_progress_cycle = cycle
                continue
            message = (
                f"no flit progress for {config.watchdog_cycles} cycles at cycle "
                f"{cycle} with traffic still in flight (possible deadlock) "
                f"[lane {lane.index}]"
            )
            if config.raise_on_stall:
                raise SimulationStallError(message)
            lane.stalled = True

    # ------------------------------------------------------------------
    # Context-swap wrappers around the inherited phase bodies.
    # ------------------------------------------------------------------

    def inject_vec(self, switch_id: int, cycle: int) -> None:
        lane = self.lanes[switch_id // self.num_switches_per_lane]
        self.result = lane.result
        self.source_queues = lane.source_queues
        self.last_progress_cycle = lane.last_progress_cycle
        super().inject_vec(switch_id, cycle)
        lane.last_progress_cycle = self.last_progress_cycle

    def has_injection_work_vec(self, switch_id: int) -> bool:
        lane = self.lanes[switch_id // self.num_switches_per_lane]
        self.source_queues = lane.source_queues
        return super().has_injection_work_vec(switch_id)

    def _note_ejects(self, gid: int, count: int, cycle: int) -> None:
        lane = self.lanes[gid // self.rows_per_lane]
        result = lane.result
        result.flits_ejected_total += count
        if cycle >= lane.config.warmup_cycles:
            result.flits_ejected_measured += count
        lane.last_progress_cycle = cycle

    def _replay_breakdown(self, ev_gid, ev_out, link_values) -> None:
        # The fused event stream is lane-contiguous (groups are per-lane
        # and process in lane-major order), so segmenting it by lane and
        # replaying each segment onto that lane's accumulators reproduces
        # every lane's solo accumulation order exactly.  The segmentation
        # below does not *assume* contiguity (accumulators are written
        # back before the lane changes), it just runs fastest with it.
        rows = self.rows_per_lane
        lanes = self.lanes
        switch_energy = self.switch_energy_pj
        n = len(ev_gid)
        i = 0
        k = 0
        while i < n:
            index = ev_gid[i] // rows
            breakdown = lanes[index].breakdown
            switch_acc = breakdown.switch_dynamic_pj
            link_acc = breakdown.link_pj
            while i < n and ev_gid[i] // rows == index:
                switch_acc += switch_energy
                if ev_out[i] >= 0:
                    link_acc += link_values[k]
                    k += 1
                i += 1
            breakdown.switch_dynamic_pj = switch_acc
            breakdown.link_pj = link_acc

    def _replay_tails(self, tail_gids, tail_handles, cycle: int) -> None:
        pool = self.pool
        rows = self.rows_per_lane
        lanes = self.lanes
        for gid, handle in zip(tail_gids, tail_handles):
            lane = lanes[gid // rows]
            self._active_lane = lane
            result = lane.result
            pool.ejection_cycle[handle] = cycle
            result.packets_delivered += 1
            if bool(pool.measured[handle]):
                result.packets_delivered_measured += 1
                injection = int(pool.injection_cycle[handle])
                result.record_delivery(
                    cycle - int(pool.generation_cycle[handle]),
                    cycle - injection if injection >= 0 else None,
                    float(pool.energy_pj[handle]),
                    len(pool.route[handle]) - 1,
                )
            for reply in lane.traffic.on_packet_delivered(
                PacketView(pool, handle), cycle
            ):
                self.enqueue_lane(lane, reply, cycle)
            pool.free(handle)
            lane.last_progress_cycle = cycle

    def enqueue_request(self, request: TrafficRequest, cycle: int) -> None:
        # Delivery-callback replies re-enter through here; route them to
        # the lane whose ejection triggered the callback.
        self.enqueue_lane(self._active_lane, request, cycle)

    # ------------------------------------------------------------------
    # Per-lane traffic generation (the lane spelling of enqueue_request).
    # ------------------------------------------------------------------

    def enqueue_lane(self, lane: _Lane, request: TrafficRequest, cycle: int) -> None:
        """Turn a lane's traffic request into a routed, pooled packet."""
        lane.result.packets_offered += 1
        queue = lane.source_queues.get(request.src_endpoint)
        if queue is None:
            raise ValueError(f"unknown source endpoint {request.src_endpoint}")
        if len(queue) >= lane.config.max_source_queue_packets:
            return  # finite source queue: the request is dropped at the source
        network = self.network
        src_switch = network.switch_for_endpoint(request.src_endpoint)
        dst_switch = network.switch_for_endpoint(request.dst_endpoint)
        if src_switch.switch_id == dst_switch.switch_id:
            route = [src_switch.switch_id]
        else:
            # Lane batches are fault-free by construction, so a routing
            # failure is a real bug and propagates (scalar parity).
            route = self.router.route(src_switch.switch_id, dst_switch.switch_id)
        length = request.length_flits or self.net_config.packet_length_flits
        handle = self.pool.alloc(
            pid=lane.next_packet_id,
            src_endpoint=request.src_endpoint,
            dst_endpoint=request.dst_endpoint,
            src_switch=src_switch.switch_id,
            dst_switch=dst_switch.switch_id,
            length_flits=length,
            generation_cycle=cycle,
            route=route,
            is_memory_access=request.is_memory_access,
            is_reply=request.is_reply,
            measured=cycle >= lane.config.warmup_cycles,
            traffic_class=request.traffic_class,
        )
        lane.next_packet_id += 1
        self.compile_route_ports(handle)
        queue.append(handle)
        lane.result.packets_generated += 1
        self.scheduler.active.add(
            lane.index * self.num_switches_per_lane + src_switch.switch_id
        )


# ----------------------------------------------------------------------
# The batched driver loop.
# ----------------------------------------------------------------------


def _settle_lane(state: LaneBatchedState, lane: _Lane, cycle: int, started: float) -> None:
    """End-of-run accounting for one lane, then make its rows inert.

    Mirrors ``Simulator._settle`` field for field; afterwards the lane's
    slice of every array is zeroed so the shared loop never touches it
    again.  Pool handles the lane still held leak until the batch ends.
    """
    rows = state.rows_per_lane
    base = lane.index * rows
    end = base + rows
    result = lane.result
    result.wall_clock_seconds = time.perf_counter() - started

    residual = int(state.vc_count[base:end].sum())
    for slot in range(state.wheel_size):
        count = state.wheel_count[slot]
        if not count:
            continue
        targets = state.wheel_targets[slot][:count]
        keep = (targets < base) | (targets >= end)
        kept = int(keep.sum())
        if kept != count:
            # Compact in place; the fancy-indexed gathers materialise new
            # arrays before the buffers are overwritten.
            kept_targets = targets[keep]
            kept_flits = state.wheel_flits[slot][:count][keep]
            state.wheel_targets[slot][:kept] = kept_targets
            state.wheel_flits[slot][:kept] = kept_flits
            state.wheel_count[slot] = kept
            state.wheel_pending -= count - kept
            residual += count - kept
    result.flits_residual_end = residual

    network = state.network
    lane.accountant.record_static(
        cycles=cycle + 1,
        total_switch_static_mw=network.total_switch_static_power_mw,
    )
    for fabric in network.fabrics:
        fabric.finalize(result, lane.accountant)
    result.energy = lane.breakdown
    result.stalled = lane.stalled
    if result.num_cores and lane.config.cycles:
        result.offered_load_packets_per_core_per_cycle = result.packets_offered / (
            result.num_cores * lane.config.cycles
        )

    # Lane goes inert: zero its array slices, clear its queues, drop its
    # tracker switches and purge its keyed entries.
    state.vc_count[base:end] = 0
    state.vc_head[base:end] = 0
    state.vc_in_flight[base:end] = 0
    state.vc_out[base:end] = -1
    state.vc_tgt[base:end] = -1
    state.buf2d[base:end] = 0
    for gid in range(base, end):
        state.alloc_l[gid] = -1
        state.occ_delta[gid] = 0
        state.source_handle[gid] = None
        state.source_emitted[gid] = 0
        # Claims are lane-internal (ports are lane-disjoint), so clearing
        # the lane's own rows empties its reverse claim index.
        state.rev_vc_l[gid] = -1
        state.rev_out_l[gid] = -1
    port_base = lane.index * state.in_ports_per_lane
    for offset, mask in enumerate(state._lane_free_mask):
        state.free_mask[port_base + offset] = mask
    for queue in lane.source_queues.values():
        queue.clear()
    sid_base = lane.index * state.num_switches_per_lane
    tracker_active = state.scheduler.active
    for sid in range(sid_base, sid_base + state.num_switches_per_lane):
        tracker_active.discard(sid)
    lane.retired = True
    lane.end_cycle = cycle


def run_batched(
    simulators: Sequence, *, profile_allocation: bool = False
) -> List[SimulationResult]:
    """Co-simulate N configured :class:`~repro.noc.engine.Simulator`\\ s.

    Every simulator must describe a wired, fault-free, un-instrumented run
    over the same network configuration and topology shape; anything else
    raises :class:`BatchIneligibleError` (callers fall back to solo runs).
    Returns one :class:`SimulationResult` per simulator, in order — each
    bit-identical to ``simulators[i].run()`` (and therefore to the scalar
    engine), with ``engine_used`` stamped ``"vector-batched"``.

    ``profile_allocation`` times the fused allocation phase's array
    dispatch and per-event epilogue separately and publishes the batch
    aggregates as ``allocation/dispatch`` / ``allocation/events`` rows of
    every lane result's ``phase_seconds`` (a comparison-exempt field, so
    parity is unaffected).  It is the batch spelling of the solo engines'
    ``profile_phases`` split — full per-phase profiling stays ineligible
    for batching because its timing wraps each lane's whole cycle loop.
    """
    if not simulators:
        raise BatchIneligibleError("empty batch")
    base = simulators[0]
    net_config = base.network_config
    for sim in simulators:
        if sim.fault_plan is not None and not sim.fault_plan.is_empty:
            raise BatchIneligibleError("faulted runs cannot be lane-batched")
        if sim.instrument is not None:
            raise BatchIneligibleError("instrumented runs cannot be lane-batched")
        if sim.checkpoint_sink is not None:
            raise BatchIneligibleError("checkpointed runs cannot be lane-batched")
        if sim.simulation_config.profile_phases:
            raise BatchIneligibleError("profiled runs cannot be lane-batched")
        if sim.network_config != net_config:
            raise BatchIneligibleError("lanes must share one network configuration")
        shape = (
            len(sim.topology.cores),
            len(sim.topology.switches),
            len(sim.topology.links),
            len(sim.topology.endpoints),
            type(sim.router),
        )
        base_shape = (
            len(base.topology.cores),
            len(base.topology.switches),
            len(base.topology.links),
            len(base.topology.endpoints),
            type(base.router),
        )
        if shape != base_shape:
            raise BatchIneligibleError("lanes must share one topology shape")

    started = time.perf_counter()
    for sim in simulators:
        sim.traffic.reset()
    network = Network(base.topology, net_config)
    for fabric in network.fabrics:
        if fabric.is_wireless or not fabric.always_grants:
            raise BatchIneligibleError(
                "lane batching covers wired, always-granting fabrics"
            )

    lanes: List[_Lane] = []
    for index, sim in enumerate(simulators):
        config = sim.simulation_config
        accountant = EnergyAccountant(
            technology=net_config.technology,
            include_static=net_config.include_static_energy,
        )
        result = SimulationResult(
            cycles=config.cycles,
            warmup_cycles=config.warmup_cycles,
            num_cores=len(sim.topology.cores),
            flit_width_bits=net_config.technology.flit_width_bits,
            clock_frequency_hz=net_config.technology.clock_frequency_hz,
            nominal_packet_length_flits=net_config.packet_length_flits,
            include_static_energy=net_config.include_static_energy,
            metrics_mode=config.metrics,
        )
        result.engine_used = "vector-batched"
        lane = _Lane()
        lane.index = index
        lane.traffic = sim.traffic
        lane.accountant = accountant
        lane.result = result
        lane.config = config
        lane.source_queues = {eid: deque() for eid in network.endpoint_switch}
        lane.breakdown = accountant.breakdown
        lane.next_packet_id = 0
        lane.last_progress_cycle = 0
        lane.anchored_progress = 0
        lane.phase_token = sim.traffic.phase_token()
        lane.stalled = False
        lane.retired = False
        lane.end_cycle = -1
        lanes.append(lane)

    tracker = InjectionTracker()
    state = LaneBatchedState(
        lanes=lanes,
        network=network,
        router=base.router,
        net_config=net_config,
        scheduler=tracker,
    )
    state.profile_alloc = bool(profile_allocation)
    for fabric in network.fabrics:
        fabric.bind_pool(state.pool)
    # N lanes carry ~N solo runs' worth of live packets; pre-sizing skips
    # several whole-pool NumPy reallocation steps during the ramp-up.
    state.pool.reserve(256 * len(lanes))

    live = len(lanes)
    total_cycles = max(lane.config.cycles for lane in lanes)
    for cycle in range(total_cycles):
        state.cycle = cycle
        # Phase 1: arrivals (one fused scatter, per-lane progress credit).
        state.process_arrivals(cycle)
        # Phase 2: per-lane traffic generation (+ warm-up watchdog anchor,
        # equivalent to the kernel's pre-phase anchor: both orders leave
        # last_progress_cycle == cycle when either fires).
        for lane in lanes:
            if lane.retired:
                continue
            if (
                cycle == lane.config.warmup_cycles
                and cycle > lane.last_progress_cycle
            ):
                lane.last_progress_cycle = cycle
            for request in lane.traffic.generate(cycle):
                state.enqueue_lane(lane, request, cycle)
        # Phase 3: injection over the fused switches with source work.
        for switch_id in sorted(tracker.active):
            state.inject_vec(switch_id, cycle)
            if not state.has_injection_work_vec(switch_id):
                tracker.active.discard(switch_id)
        # Phase 4 (fabric) is structurally empty on wired configurations.
        # Phase 5: one fused allocation pass over every lane's candidates.
        state.allocate_all(cycle)
        # Per-lane traffic-phase watchdog anchoring (kernel.run parity).
        for lane in lanes:
            if lane.retired:
                continue
            token = lane.traffic.phase_token()
            if token != lane.phase_token:
                lane.phase_token = token
                if lane.last_progress_cycle > lane.anchored_progress:
                    if cycle > lane.last_progress_cycle:
                        lane.last_progress_cycle = cycle
                    lane.anchored_progress = lane.last_progress_cycle
        state.check_watchdog(cycle)
        # Ragged termination: settle lanes that stalled or ran their last
        # configured cycle; survivors keep the shared loop.
        for lane in lanes:
            if lane.retired:
                continue
            if lane.stalled or cycle + 1 >= lane.config.cycles:
                _settle_lane(state, lane, cycle, started)
                live -= 1
        if not live:
            break
    if profile_allocation:
        for lane in lanes:
            lane.result.phase_seconds["allocation/dispatch"] = (
                state.alloc_dispatch_seconds
            )
            lane.result.phase_seconds["allocation/events"] = (
                state.alloc_event_seconds
            )
    return [lane.result for lane in lanes]
