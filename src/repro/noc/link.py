"""Per-link characterisation consumed by the cycle-accurate simulator.

Every physical link kind of the topology is reduced to three figures the
simulator needs each time a flit crosses it: how many cycles the channel is
occupied per flit (throughput), how many cycles later the flit arrives at the
downstream buffer (latency, including the downstream switch pipeline), and
how much dynamic energy the traversal costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy import SerialIoModel, Technology, WideIoModel, WireModel
from ..energy.technology import (
    DEFAULT_TECHNOLOGY,
    INTERPOSER_LINK_EXTRA_LATENCY_CYCLES,
    SWITCH_PIPELINE_STAGES,
)
from ..topology.graph import LinkKind, LinkSpec


@dataclass(frozen=True)
class LinkCharacteristics:
    """Simulation-facing description of one link direction."""

    kind: LinkKind
    cycles_per_flit: int
    latency_cycles: int
    energy_pj_per_flit: float
    length_mm: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles_per_flit < 1:
            raise ValueError("cycles_per_flit must be at least 1")
        if self.latency_cycles < 1:
            raise ValueError("latency_cycles must be at least 1")
        if self.energy_pj_per_flit < 0:
            raise ValueError("energy_pj_per_flit must be non-negative")

    @property
    def is_wireless(self) -> bool:
        """Whether this link is realised by the shared wireless channel."""
        return self.kind == LinkKind.WIRELESS


@dataclass(frozen=True)
class WirelessLinkSettings:
    """Calibration of the wireless channel's simulator-facing service rate.

    ``cycles_per_flit`` is the number of clock cycles the channel is occupied
    per transferred flit.  The physical transceiver sustains 16 Gb/s, i.e.
    5 network cycles per 32-bit flit; the authors' simulator (like the WiNoC
    simulators it builds on [6][7][11]) services the wireless port at flit
    granularity, so the default here is 1.  See DESIGN.md section 4.
    """

    cycles_per_flit: int = 1
    extra_latency_cycles: int = 1


def characterize_link(
    spec: LinkSpec,
    technology: Technology = DEFAULT_TECHNOLOGY,
    wireless: WirelessLinkSettings = WirelessLinkSettings(),
    switch_pipeline_stages: int = SWITCH_PIPELINE_STAGES,
) -> LinkCharacteristics:
    """Characterise a topology link for the simulator.

    The latency figure includes the downstream switch pipeline
    (``switch_pipeline_stages``) so a hop's zero-load cost is fully captured
    by the link the flit crosses to get there.
    """
    pipeline = max(1, switch_pipeline_stages)
    if spec.kind == LinkKind.MESH or spec.kind == LinkKind.TSV:
        wire = WireModel(technology).characterize(spec.length_mm)
        return LinkCharacteristics(
            kind=spec.kind,
            cycles_per_flit=1,
            latency_cycles=pipeline + wire.latency_cycles,
            energy_pj_per_flit=wire.energy_pj_per_flit
            if spec.kind == LinkKind.MESH
            else technology.flit_energy_pj(technology.tsv_energy_pj_per_bit),
            length_mm=spec.length_mm,
        )
    if spec.kind == LinkKind.INTERPOSER:
        energy = technology.flit_energy_pj(technology.interposer_link_energy_pj_per_bit)
        return LinkCharacteristics(
            kind=spec.kind,
            cycles_per_flit=1,
            latency_cycles=pipeline + 1 + INTERPOSER_LINK_EXTRA_LATENCY_CYCLES,
            energy_pj_per_flit=energy,
            length_mm=spec.length_mm,
        )
    if spec.kind == LinkKind.SERIAL_IO:
        io = SerialIoModel(technology).characterize()
        return LinkCharacteristics(
            kind=spec.kind,
            cycles_per_flit=io.cycles_per_flit,
            latency_cycles=pipeline + 1 + io.extra_latency_cycles,
            energy_pj_per_flit=io.energy_pj_per_flit,
            length_mm=spec.length_mm,
        )
    if spec.kind == LinkKind.WIDE_IO:
        io = WideIoModel(technology).characterize()
        return LinkCharacteristics(
            kind=spec.kind,
            cycles_per_flit=io.cycles_per_flit,
            latency_cycles=pipeline + 1 + io.extra_latency_cycles,
            energy_pj_per_flit=io.energy_pj_per_flit,
            length_mm=spec.length_mm,
        )
    if spec.kind == LinkKind.WIRELESS:
        energy = technology.flit_energy_pj(technology.wireless_energy_pj_per_bit)
        return LinkCharacteristics(
            kind=spec.kind,
            cycles_per_flit=wireless.cycles_per_flit,
            latency_cycles=pipeline + 1 + wireless.extra_latency_cycles,
            energy_pj_per_flit=energy,
            length_mm=spec.length_mm,
        )
    raise ValueError(f"unknown link kind {spec.kind!r}")
