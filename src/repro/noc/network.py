"""Instantiation of the simulator network from a topology graph.

``Network`` turns the structural :class:`~repro.topology.graph.TopologyGraph`
into live simulator objects: one :class:`~repro.noc.switch.Switch` per
topology switch, characterised links wired between their ports, and — when
the topology deploys wireless interfaces — a :class:`WirelessFabric` that
owns the shared-medium state (channel assignment, MAC instances, transceiver
power states).

A ``Network`` is cheap to build and holds mutable per-run state (buffers,
arbitration pointers, transceiver residency counters), so the simulation
engine constructs a fresh one for every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..energy import EnergyAccountant, SwitchPowerModel
from ..topology.graph import LinkKind, LinkSpec, SwitchKind, TopologyGraph
from ..wireless.channel import assign_channels
from ..wireless.mac import (
    ControlPacketMac,
    MacAdapter,
    MacProtocol,
    PendingTransmission,
    TokenMac,
)
from ..wireless.transceiver import Transceiver, TransceiverSpec, TransceiverState
from .config import NetworkConfig
from .flit import Flit
from .link import LinkCharacteristics, WirelessLinkSettings, characterize_link
from .packet import Packet
from .port import InputPort
from .switch import Switch


class NetworkBuildError(ValueError):
    """Raised when the topology cannot be instantiated as a network."""


class WirelessFabric(MacAdapter):
    """Shared-medium state of the deployed wireless interfaces."""

    def __init__(
        self,
        switches: List[Switch],
        config: NetworkConfig,
    ) -> None:
        if not switches:
            raise NetworkBuildError("wireless fabric needs at least one WI switch")
        self._config = config
        wireless_cfg = config.wireless
        self._switches: Dict[int, Switch] = {s.switch_id: s for s in switches}
        ordered_ids = sorted(self._switches)
        self._accountant: Optional[EnergyAccountant] = None

        spec = TransceiverSpec(
            data_rate_gbps=config.technology.wireless_data_rate_gbps,
            energy_pj_per_bit=config.technology.wireless_energy_pj_per_bit,
            idle_power_mw=config.technology.wireless_idle_power_mw,
            sleep_power_mw=config.technology.wireless_sleep_power_mw,
        )
        self.transceivers: Dict[int, Transceiver] = {
            wi_id: Transceiver(
                wi_id=wi_id,
                spec=spec,
                power_gating=wireless_cfg.sleepy_receivers
                and wireless_cfg.mac == "control_packet",
            )
            for wi_id in ordered_ids
        }

        self.channel_plans = assign_channels(ordered_ids, wireless_cfg.num_channels)
        self.macs: List[MacProtocol] = []
        self._mac_of: Dict[int, MacProtocol] = {}
        for plan in self.channel_plans:
            if not plan.wi_switch_ids:
                continue
            mac = self._make_mac(plan.channel_id, list(plan.wi_switch_ids))
            self.macs.append(mac)
            for wi_id in plan.wi_switch_ids:
                self._mac_of[wi_id] = mac

    def _make_mac(self, channel_id: int, wi_ids: List[int]) -> MacProtocol:
        wireless_cfg = self._config.wireless
        if wireless_cfg.mac == "token":
            return TokenMac(
                channel_id,
                wi_ids,
                adapter=self,
                token_pass_latency_cycles=wireless_cfg.token_pass_latency_cycles,
                max_hold_cycles=4 * self._config.packet_length_flits
                * wireless_cfg.cycles_per_flit
                + 64,
            )
        return ControlPacketMac(
            channel_id,
            wi_ids,
            adapter=self,
            control_packet_cycles=wireless_cfg.control_packet_cycles,
            control_packet_bits=wireless_cfg.control_packet_bits,
            max_tuples=wireless_cfg.max_control_tuples,
            cycles_per_flit=wireless_cfg.cycles_per_flit,
        )

    # ------------------------------------------------------------------
    # MacAdapter interface.
    # ------------------------------------------------------------------

    def pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        """Traffic waiting for the wireless port of one WI switch."""
        switch = self._switches[wi_switch_id]
        entries = []
        for vc, dst_switch, packet_id, buffered, remaining in switch.wireless_pending():
            front = vc.front()
            entries.append(
                PendingTransmission(
                    dst_switch=dst_switch,
                    packet_id=packet_id,
                    buffered_flits=buffered,
                    packet_length_flits=front.packet.length_flits,
                    front_is_head=front.is_head,
                    remaining_flits=remaining,
                )
            )
        return entries

    def record_control_energy(self, energy_pj: float) -> None:
        """Charge MAC control/token overhead to the current run's accountant."""
        if self._accountant is not None:
            self._accountant.record_mac_control(energy_pj)

    def acceptable_flits(
        self, dst_switch: int, packet_id: int, is_head: bool
    ) -> int:
        """Flits the destination WI can take over the coming burst.

        The receiver drains its buffer into the destination chip's mesh
        while the burst is in the air, so a transmission may announce one
        extra buffer window on top of the space that is free right now.
        """
        switch = self._switches.get(dst_switch)
        if switch is None or switch.wireless_input is None:
            return 0
        port = switch.wireless_input
        owned = port.find_vc_for_packet(packet_id)
        if owned is not None:
            return max(0, owned.capacity - owned.occupancy) + owned.capacity
        if not is_head:
            return 0
        free = port.find_free_vc()
        if free is None:
            return 0
        return 2 * free.capacity

    # ------------------------------------------------------------------
    # Engine-facing interface.
    # ------------------------------------------------------------------

    def bind_accountant(self, accountant: EnergyAccountant) -> None:
        """Attach the energy accountant of the current simulation run."""
        self._accountant = accountant

    @property
    def wi_switch_ids(self) -> List[int]:
        """Ids of all WI switches, in sequence order."""
        return sorted(self._switches)

    def wireless_input_port(self, dst_switch_id: int) -> InputPort:
        """The wireless input port of a destination WI switch."""
        switch = self._switches.get(dst_switch_id)
        if switch is None or switch.wireless_input is None:
            raise NetworkBuildError(
                f"switch {dst_switch_id} has no wireless interface"
            )
        return switch.wireless_input

    def update(self, cycle: int) -> None:
        """Advance every channel's MAC and the transceiver power states."""
        for mac in self.macs:
            mac.update(cycle)
        for mac in self.macs:
            transmitter = mac.current_transmitter()
            receivers = mac.intended_receivers() if transmitter is not None else set()
            for wi_id in mac.wi_switch_ids:
                transceiver = self.transceivers[wi_id]
                if wi_id == transmitter:
                    transceiver.set_state(TransceiverState.TRANSMITTING)
                elif wi_id in receivers:
                    transceiver.set_state(TransceiverState.RECEIVING)
                elif transmitter is not None:
                    transceiver.set_state(TransceiverState.SLEEPING)
                else:
                    transceiver.set_state(TransceiverState.IDLE)
                transceiver.tick()

    def may_send(self, src_switch_id: int, packet: Packet, dst_switch_id: int, flit: Flit) -> bool:
        """Whether the MAC grants this flit transmission right now."""
        mac = self._mac_of.get(src_switch_id)
        if mac is None:
            return False
        return mac.may_send(src_switch_id, packet.packet_id, dst_switch_id, flit.is_head)

    def on_flit_sent(
        self, src_switch_id: int, packet: Packet, dst_switch_id: int, flit: Flit, cycle: int
    ) -> None:
        """Notify the owning MAC that a flit went on the air."""
        mac = self._mac_of.get(src_switch_id)
        if mac is not None:
            mac.on_flit_sent(
                src_switch_id, packet.packet_id, dst_switch_id, flit.is_tail, cycle
            )

    def total_transceiver_static_energy_pj(self) -> float:
        """Static energy of all transceivers over the accounted cycles."""
        cycle_time = self._config.technology.cycle_time_s
        return sum(t.static_energy_pj(cycle_time) for t in self.transceivers.values())

    def mac_statistics(self) -> Dict[int, Dict[str, int]]:
        """Per-channel MAC counters."""
        return {mac.channel_id: mac.stats.as_dict() for mac in self.macs}

    def average_sleep_fraction(self) -> float:
        """Mean fraction of cycles the transceivers spent power-gated."""
        transceivers = list(self.transceivers.values())
        if not transceivers:
            return 0.0
        return sum(t.sleep_fraction() for t in transceivers) / len(transceivers)


class Network:
    """The instantiated simulator network."""

    def __init__(self, topology: TopologyGraph, config: NetworkConfig) -> None:
        topology.validate()
        self.topology = topology
        self.config = config
        self.switches: Dict[int, Switch] = {}
        self.endpoint_switch: Dict[int, Switch] = {}
        self._power_model = SwitchPowerModel(config.technology)
        self._static_power_mw = 0.0

        self._build_switches()
        self._build_wired_links()
        self.wireless_fabric = self._build_wireless()
        self._profile_power()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_switches(self) -> None:
        for spec in self.topology.switches:
            endpoints = self.topology.endpoints_at(spec.switch_id)
            buffer_depth = (
                self.config.wi_buffer_depth
                if spec.has_wireless
                else self.config.buffer_depth_flits
            )
            switch = Switch(
                spec,
                num_vcs=self.config.virtual_channels,
                buffer_depth=buffer_depth,
                injection_width=max(
                    self.config.injection_width_flits,
                    self.config.injection_width_flits * max(1, len(endpoints))
                    if spec.kind == SwitchKind.MEMORY
                    else self.config.injection_width_flits,
                ),
                ejection_width=max(1, len(endpoints))
                * self.config.ejection_width_per_endpoint,
            )
            switch.endpoints = [e.endpoint_id for e in endpoints]
            self.switches[spec.switch_id] = switch
            for endpoint in endpoints:
                self.endpoint_switch[endpoint.endpoint_id] = switch

    def _build_wired_links(self) -> None:
        for link in self.topology.links:
            if link.kind == LinkKind.WIRELESS:
                continue
            characteristics = characterize_link(
                link,
                technology=self.config.technology,
                switch_pipeline_stages=self.config.switch_pipeline_stages,
            )
            src_switch = self.switches[link.src]
            dst_switch = self.switches[link.dst]
            src_in, src_out = src_switch.add_wired_port(link.dst, characteristics)
            dst_in, dst_out = dst_switch.add_wired_port(link.src, characteristics)
            src_out.downstream_port = dst_in
            dst_out.downstream_port = src_in

    def _build_wireless(self) -> Optional[WirelessFabric]:
        wireless_specs = self.topology.wireless_switches
        if not wireless_specs:
            return None
        settings = WirelessLinkSettings(
            cycles_per_flit=self.config.wireless.cycles_per_flit,
            extra_latency_cycles=self.config.wireless.extra_latency_cycles,
        )
        pseudo_link = LinkSpec(
            link_id=-1, src=-1, dst=-2, kind=LinkKind.WIRELESS, length_mm=0.0
        )
        characteristics = characterize_link(
            pseudo_link,
            technology=self.config.technology,
            wireless=settings,
            switch_pipeline_stages=self.config.switch_pipeline_stages,
        )
        wi_switches = []
        for spec in wireless_specs:
            switch = self.switches[spec.switch_id]
            switch.add_wireless_port(characteristics, buffer_depth=self.config.wi_buffer_depth)
            wi_switches.append(switch)
        return WirelessFabric(wi_switches, self.config)

    def _profile_power(self) -> None:
        total = 0.0
        for switch in self.switches.values():
            profile = self._power_model.profile(
                num_ports=max(1, len(switch.output_ports)),
                virtual_channels=self.config.virtual_channels,
                buffer_depth_flits=switch.buffer_depth,
            )
            total += profile.static_power_mw
        self._static_power_mw = total

    # ------------------------------------------------------------------
    # Queries used by the engine and by experiments.
    # ------------------------------------------------------------------

    @property
    def switch_dynamic_energy_pj_per_flit(self) -> float:
        """Per-flit dynamic energy of one switch traversal."""
        return self.config.technology.switch_dynamic_energy_pj_per_flit

    @property
    def total_switch_static_power_mw(self) -> float:
        """Summed static power of all switches in the system."""
        return self._static_power_mw

    def switch_for_endpoint(self, endpoint_id: int) -> Switch:
        """The switch an endpoint is attached to."""
        try:
            return self.endpoint_switch[endpoint_id]
        except KeyError:
            raise NetworkBuildError(f"unknown endpoint {endpoint_id}") from None

    def total_buffered_flits(self) -> int:
        """Flits currently buffered anywhere in the network."""
        return sum(switch.buffered_flits() for switch in self.switches.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        wireless = (
            len(self.wireless_fabric.wi_switch_ids) if self.wireless_fabric else 0
        )
        return (
            f"Network(switches={len(self.switches)}, "
            f"endpoints={len(self.endpoint_switch)}, wireless_interfaces={wireless})"
        )
