"""Instantiation of the simulator network from a topology graph.

``Network`` turns the structural :class:`~repro.topology.graph.TopologyGraph`
into live simulator objects: one :class:`~repro.noc.switch.Switch` per
topology switch, characterised links wired between their ports, and one
:class:`~repro.noc.fabric.Fabric` per transmission medium — a
:class:`~repro.noc.fabric.WiredFabric` behind every wired output port and,
when the topology deploys wireless interfaces, a
:class:`~repro.noc.fabric.WirelessFabric` that owns the shared-medium state
(channel assignment, MAC instances, transceiver power states).  Every
output port carries a reference to its fabric, so the simulation kernel
addresses all media uniformly.

A ``Network`` is cheap to build and holds mutable per-run state (buffers,
arbitration pointers, transceiver residency counters), so the simulation
engine constructs a fresh one for every run.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..energy import SwitchPowerModel
from ..topology.graph import LinkKind, LinkSpec, SwitchKind, TopologyGraph
from .config import NetworkConfig
from .fabric import Fabric, WiredFabric, WirelessFabric
from .link import WirelessLinkSettings, characterize_link
from .switch import Switch


class NetworkBuildError(ValueError):
    """Raised when the topology cannot be instantiated as a network."""


class Network:
    """The instantiated simulator network."""

    def __init__(self, topology: TopologyGraph, config: NetworkConfig) -> None:
        topology.validate()
        self.topology = topology
        self.config = config
        self.switches: Dict[int, Switch] = {}
        self.endpoint_switch: Dict[int, Switch] = {}
        self._power_model = SwitchPowerModel(config.technology)
        self._static_power_mw = 0.0

        self.wired_fabric = WiredFabric()
        self._build_switches()
        self._build_wired_links()
        self.wireless_fabric: Optional[WirelessFabric] = self._build_wireless()
        #: Dense network-wide port tables, indexed by ``port_id`` (assigned
        #: in ascending switch-id order, construction order within a
        #: switch).  The kernel and the fault injector address ports through
        #: these indices; the per-switch keyed dictionaries remain for
        #: construction and neighbour lookup.
        self.input_port_table: List = []
        self.output_port_table: List = []
        self._compile_port_tables()
        self._profile_power()

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def _build_switches(self) -> None:
        for spec in self.topology.switches:
            endpoints = self.topology.endpoints_at(spec.switch_id)
            buffer_depth = (
                self.config.wi_buffer_depth
                if spec.has_wireless
                else self.config.buffer_depth_flits
            )
            switch = Switch(
                spec,
                num_vcs=self.config.virtual_channels,
                buffer_depth=buffer_depth,
                injection_width=max(
                    self.config.injection_width_flits,
                    self.config.injection_width_flits * max(1, len(endpoints))
                    if spec.kind == SwitchKind.MEMORY
                    else self.config.injection_width_flits,
                ),
                ejection_width=max(1, len(endpoints))
                * self.config.ejection_width_per_endpoint,
            )
            switch.endpoints = [e.endpoint_id for e in endpoints]
            self.switches[spec.switch_id] = switch
            for endpoint in endpoints:
                self.endpoint_switch[endpoint.endpoint_id] = switch

    def _build_wired_links(self) -> None:
        for link in self.topology.links:
            if link.kind == LinkKind.WIRELESS:
                continue
            characteristics = characterize_link(
                link,
                technology=self.config.technology,
                switch_pipeline_stages=self.config.switch_pipeline_stages,
            )
            src_switch = self.switches[link.src]
            dst_switch = self.switches[link.dst]
            src_in, src_out = src_switch.add_wired_port(link.dst, characteristics)
            dst_in, dst_out = dst_switch.add_wired_port(link.src, characteristics)
            src_out.downstream_port = dst_in
            dst_out.downstream_port = src_in
            src_out.fabric = self.wired_fabric
            dst_out.fabric = self.wired_fabric

    def _build_wireless(self) -> Optional[WirelessFabric]:
        wireless_specs = self.topology.wireless_switches
        if not wireless_specs:
            return None
        settings = WirelessLinkSettings(
            cycles_per_flit=self.config.wireless.cycles_per_flit,
            extra_latency_cycles=self.config.wireless.extra_latency_cycles,
        )
        pseudo_link = LinkSpec(link_id=-1, src=-1, dst=-2, kind=LinkKind.WIRELESS, length_mm=0.0)
        characteristics = characterize_link(
            pseudo_link,
            technology=self.config.technology,
            wireless=settings,
            switch_pipeline_stages=self.config.switch_pipeline_stages,
        )
        wi_switches = []
        for spec in wireless_specs:
            switch = self.switches[spec.switch_id]
            switch.add_wireless_port(characteristics, buffer_depth=self.config.wi_buffer_depth)
            wi_switches.append(switch)
        fabric = WirelessFabric(wi_switches, self.config)
        for switch in wi_switches:
            switch.wireless_output.fabric = fabric
        return fabric

    def _compile_port_tables(self) -> None:
        """Assign dense integer port ids and freeze per-switch tables."""
        for switch_id in sorted(self.switches):
            switch = self.switches[switch_id]
            switch.compile_tables()
            for port in switch.input_port_list:
                port.port_id = len(self.input_port_table)
                self.input_port_table.append(port)
            for port in switch.output_port_list:
                port.port_id = len(self.output_port_table)
                self.output_port_table.append(port)

    def _profile_power(self) -> None:
        total = 0.0
        for switch in self.switches.values():
            profile = self._power_model.profile(
                num_ports=max(1, len(switch.output_ports)),
                virtual_channels=self.config.virtual_channels,
                buffer_depth_flits=switch.buffer_depth,
            )
            total += profile.static_power_mw
        self._static_power_mw = total

    # ------------------------------------------------------------------
    # Queries used by the engine and by experiments.
    # ------------------------------------------------------------------

    @property
    def fabrics(self) -> List[Fabric]:
        """All transmission media of the network, wired fabric first."""
        media: List[Fabric] = [self.wired_fabric]
        if self.wireless_fabric is not None:
            media.append(self.wireless_fabric)
        return media

    @property
    def switch_dynamic_energy_pj_per_flit(self) -> float:
        """Per-flit dynamic energy of one switch traversal."""
        return self.config.technology.switch_dynamic_energy_pj_per_flit

    @property
    def total_switch_static_power_mw(self) -> float:
        """Summed static power of all switches in the system."""
        return self._static_power_mw

    def switch_for_endpoint(self, endpoint_id: int) -> Switch:
        """The switch an endpoint is attached to."""
        try:
            return self.endpoint_switch[endpoint_id]
        except KeyError:
            raise NetworkBuildError(f"unknown endpoint {endpoint_id}") from None

    def total_buffered_flits(self) -> int:
        """Flits currently buffered anywhere in the network."""
        return sum(switch.buffered_flits() for switch in self.switches.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        wireless = len(self.wireless_fabric.wi_switch_ids) if self.wireless_fabric else 0
        return (
            f"Network(switches={len(self.switches)}, "
            f"endpoints={len(self.endpoint_switch)}, wireless_interfaces={wireless})"
        )
