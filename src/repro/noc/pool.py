"""Array-backed packet and flit storage: the simulator's pooled data plane.

The per-cycle inner loop used to allocate one Python object per flit and
chase attribute chains (``flit.packet.dst_switch``) for every move.  At 64
flits per packet a single run creates hundreds of thousands of flit
objects, and the allocator/GC churn dominates the wall clock — the same
object-churn bottleneck that flat, index-addressed cycle-accurate
simulators (e.g. FireSim's host decoupling structures) avoid by design.

This module replaces those objects with two pooled representations:

* :class:`PacketPool` — every packet field lives in a preallocated parallel
  array (plain Python lists, grown in chunks) addressed by an integer
  *handle*.  Handles are recycled through a free list when the tail flit is
  ejected (or the packet is purged by fault recovery), so steady-state runs
  allocate nothing per packet.  A monotonically increasing ``pid`` array
  keeps the globally unique packet id the rest of the system (VC ownership,
  MAC grants, statistics) keys on — handles recycle, pids never do, so no
  identity can alias across a handle's lifetimes.
* :class:`FlitPool` — a flit is fully determined by *(packet handle, flit
  index)*, so flit "records" need no storage at all: a flit handle is the
  two fields packed into one integer (``handle << FLIT_INDEX_BITS | index``).
  Creating a flit is a shift-or; ``is_head``/``is_tail`` are arithmetic on
  the packed index and the pooled packet length.  The simulator moves bare
  integers between ring buffers — no allocation, no GC pressure, no
  attribute chases.

The old object API (:class:`~repro.noc.packet.Packet`,
:class:`~repro.noc.flit.Flit`) survives for unit tests and as the boundary
representation: :class:`PacketView` is a thin read view over one pooled
record with the full legacy attribute surface, handed to traffic-model
callbacks (``on_packet_delivered``) and anything else that still wants an
object.

Handle lifecycle (the conservation contract, property-tested in
``tests/test_pool.py``)::

    alloc (traffic enqueue) ──▶ live (queued / in flight) ──▶ free
                                             │                  ▲
                                             └── tail ejected ──┤
                                             └── purged by fault recovery

    allocated_total == freed_total + live_count   (always)

and every live handle corresponds to a packet that is still queued at a
source, buffered in a VC, or streaming between switches.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy

#: Oldest NumPy this module's array backend is tested against.  The vector
#: engine relies on stable fancy-indexing/``reduceat`` semantics that were
#: settled by this release; failing at import time beats failing mid-run.
NUMPY_MIN_VERSION = (1, 22)


def _check_numpy_version() -> None:
    try:
        parts = tuple(int(p) for p in numpy.__version__.split(".")[:2])
    except ValueError:  # pragma: no cover - exotic dev builds
        return  # unparseable (dev/nightly) versions are assumed new enough
    if parts < NUMPY_MIN_VERSION:
        floor = ".".join(str(p) for p in NUMPY_MIN_VERSION)
        raise ImportError(
            f"repro.noc.pool requires numpy >= {floor}, "
            f"found {numpy.__version__}"
        )


_check_numpy_version()

#: Bits of a flit handle reserved for the flit index within its packet.
FLIT_INDEX_BITS = 12
#: Mask extracting the flit index from a flit handle.
FLIT_INDEX_MASK = (1 << FLIT_INDEX_BITS) - 1
#: Largest packet length the packed flit representation supports.
MAX_PACKET_LENGTH_FLITS = 1 << FLIT_INDEX_BITS

#: Handles are granted in chunks of this many records at a time.
_GROWTH_CHUNK = 256

#: The non-object parallel arrays captured by :meth:`PacketPool.snapshot`
#: (``route``/``route_ports``/``traffic_class`` are object-valued and
#: handled separately — ``route_ports`` holds live OutputPort references
#: and is deliberately *not* part of a snapshot).
_SNAPSHOT_FIELDS = (
    "pid",
    "src_endpoint",
    "dst_endpoint",
    "src_switch",
    "dst_switch",
    "length_flits",
    "generation_cycle",
    "injection_cycle",
    "ejection_cycle",
    "head_hop",
    "energy_pj",
    "flits_ejected",
    "is_memory_access",
    "is_reply",
    "measured",
)


def _empty_int64() -> "numpy.ndarray":
    return numpy.empty(0, dtype=numpy.int64)


def _empty_float64() -> "numpy.ndarray":
    return numpy.empty(0, dtype=numpy.float64)


def _empty_bool() -> "numpy.ndarray":
    return numpy.empty(0, dtype=numpy.bool_)


def _grow_array(array: "numpy.ndarray", chunk: int, fill) -> "numpy.ndarray":
    grown = numpy.empty(len(array) + chunk, dtype=array.dtype)
    grown[: len(array)] = array
    grown[len(array):] = fill
    return grown


class FlitPool:
    """Packed-integer flit handles over one :class:`PacketPool`.

    A flit handle encodes ``(packet_handle, flit_index)`` as
    ``packet_handle << FLIT_INDEX_BITS | flit_index``; the two derived
    fields (head/tail position) are computed from the packed index and the
    pooled packet length, so the pool stores nothing per flit.  The hot
    kernel paths inline the shift/mask arithmetic directly; this class is
    the readable, non-inlined spelling used by colder code and tests.
    """

    __slots__ = ("packets",)

    def __init__(self, packets: "PacketPool") -> None:
        self.packets = packets

    @staticmethod
    def handle(packet_handle: int, index: int) -> int:
        """The flit handle for position ``index`` of a pooled packet."""
        return (packet_handle << FLIT_INDEX_BITS) | index

    @staticmethod
    def packet_of(flit: int) -> int:
        """The packet handle a flit handle belongs to."""
        return flit >> FLIT_INDEX_BITS

    @staticmethod
    def index_of(flit: int) -> int:
        """The position of a flit within its packet."""
        return flit & FLIT_INDEX_MASK

    @staticmethod
    def is_head(flit: int) -> bool:
        """Whether the flit opens its packet (reserves the path)."""
        return (flit & FLIT_INDEX_MASK) == 0

    def is_tail(self, flit: int) -> bool:
        """Whether the flit closes its packet (releases the path)."""
        return (flit & FLIT_INDEX_MASK) == (self.packets.length_flits[flit >> FLIT_INDEX_BITS] - 1)


class PacketPool:
    """Preallocated parallel arrays of packet records, keyed by handle.

    Field names mirror :class:`~repro.noc.packet.Packet` attribute for
    attribute; ``route_ports`` additionally holds the route compiled to the
    dense per-hop output-port table (see
    :meth:`repro.noc.kernel.KernelState.compile_route_ports`), so the
    allocation inner loop never resolves a neighbour dictionary.

    Two backing-store backends share the same handle semantics:

    * ``backend="list"`` (the default) keeps every field in a plain Python
      list — the fastest representation for the scalar engine's one-record-
      at-a-time access pattern (CPython list indexing beats NumPy scalar
      indexing by ~3x).
    * ``backend="numpy"`` keeps the scalar integer/float/bool fields in
      NumPy ``int64``/``float64``/``bool_`` parallel arrays, which the
      vector engine gathers with fancy indexing (zero-copy views over the
      same storage the per-record accessors mutate).  The object-valued
      fields (``route``, ``route_ports``, ``traffic_class``) stay Python
      lists in both backends, and the optional cycle fields use ``-1`` as
      the array spelling of ``None`` (translated back at the
      :class:`PacketView` boundary).

    Growth and recycling are backend-independent: capacity grows by
    ``max(_GROWTH_CHUNK, capacity)`` records (amortised doubling) and the
    new handles join the free list in descending order so allocation hands
    them out ascending.  NumPy growth reallocates (arrays cannot extend in
    place), so callers must re-read the array attributes after any call
    that can allocate — the vector engine's batch passes only gather
    records that existed before the pass, which stale pre-growth views
    still cover.
    """

    __slots__ = (
        "pid",
        "src_endpoint",
        "dst_endpoint",
        "src_switch",
        "dst_switch",
        "length_flits",
        "generation_cycle",
        "injection_cycle",
        "ejection_cycle",
        "route",
        "route_ports",
        "head_hop",
        "energy_pj",
        "flits_ejected",
        "is_memory_access",
        "is_reply",
        "measured",
        "traffic_class",
        "free_list",
        "allocated_total",
        "freed_total",
        "flits",
        "backend",
        "_no_cycle",
    )

    def __init__(self, backend: str = "list") -> None:
        if backend not in ("list", "numpy"):
            raise ValueError(f"unknown pool backend {backend!r}; known: list, numpy")
        self.backend = backend
        if backend == "numpy":
            int_field = _empty_int64
            float_field = _empty_float64
            bool_field = _empty_bool
            #: Array spelling of "no cycle recorded yet".
            self._no_cycle: Optional[int] = -1
        else:
            int_field = float_field = bool_field = list
            self._no_cycle = None
        self.pid = int_field()
        self.src_endpoint = int_field()
        self.dst_endpoint = int_field()
        self.src_switch = int_field()
        self.dst_switch = int_field()
        self.length_flits = int_field()
        self.generation_cycle = int_field()
        self.injection_cycle = int_field()
        self.ejection_cycle = int_field()
        self.route: List[Optional[List[int]]] = []
        self.route_ports: List[Optional[list]] = []
        self.head_hop = int_field()
        self.energy_pj = float_field()
        self.flits_ejected = int_field()
        self.is_memory_access = bool_field()
        self.is_reply = bool_field()
        self.measured = bool_field()
        self.traffic_class: List[str] = []
        #: Recycled handles, most recently freed last (LIFO reuse keeps the
        #: working set of array rows hot).
        self.free_list: List[int] = []
        self.allocated_total = 0
        self.freed_total = 0
        self.flits = FlitPool(self)

    # ------------------------------------------------------------------
    # Capacity management.
    # ------------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Records currently backed by the parallel arrays."""
        return len(self.pid)

    @property
    def live_count(self) -> int:
        """Handles allocated and not yet freed."""
        return self.allocated_total - self.freed_total

    def _grow(self) -> None:
        chunk = max(_GROWTH_CHUNK, self.capacity)
        start = self.capacity
        if self.backend == "numpy":
            for name in (
                "pid",
                "src_endpoint",
                "dst_endpoint",
                "src_switch",
                "dst_switch",
                "length_flits",
                "generation_cycle",
                "head_hop",
                "flits_ejected",
            ):
                setattr(self, name, _grow_array(getattr(self, name), chunk, 0))
            self.injection_cycle = _grow_array(self.injection_cycle, chunk, -1)
            self.ejection_cycle = _grow_array(self.ejection_cycle, chunk, -1)
            self.energy_pj = _grow_array(self.energy_pj, chunk, 0.0)
            for name in ("is_memory_access", "is_reply", "measured"):
                setattr(self, name, _grow_array(getattr(self, name), chunk, False))
        else:
            self.pid.extend([0] * chunk)
            self.src_endpoint.extend([0] * chunk)
            self.dst_endpoint.extend([0] * chunk)
            self.src_switch.extend([0] * chunk)
            self.dst_switch.extend([0] * chunk)
            self.length_flits.extend([0] * chunk)
            self.generation_cycle.extend([0] * chunk)
            self.injection_cycle.extend([None] * chunk)
            self.ejection_cycle.extend([None] * chunk)
            self.head_hop.extend([0] * chunk)
            self.energy_pj.extend([0.0] * chunk)
            self.flits_ejected.extend([0] * chunk)
            self.is_memory_access.extend([False] * chunk)
            self.is_reply.extend([False] * chunk)
            self.measured.extend([False] * chunk)
        self.route.extend([None] * chunk)
        self.route_ports.extend([None] * chunk)
        self.traffic_class.extend([""] * chunk)
        # Freshly grown handles join the free list in descending order so
        # allocation hands them out ascending (LIFO pop from the end).
        self.free_list.extend(range(start + chunk - 1, start - 1, -1))

    def reserve(self, capacity: int) -> None:
        """Pre-size the backing arrays to at least ``capacity`` records.

        Lane-batched runs (:mod:`repro.noc.lanes`) push roughly N solo
        runs' worth of live packets through one pool; reserving up front
        collapses several growth steps — each of which, on the NumPy
        backend, reallocates and copies every field array — into a few.
        A no-op when the pool is already large enough.
        """
        while self.capacity < capacity:
            self._grow()

    # ------------------------------------------------------------------
    # Handle lifecycle.
    # ------------------------------------------------------------------

    def alloc(
        self,
        pid: int,
        src_endpoint: int,
        dst_endpoint: int,
        src_switch: int,
        dst_switch: int,
        length_flits: int,
        generation_cycle: int,
        route: List[int],
        is_memory_access: bool,
        is_reply: bool,
        measured: bool,
        traffic_class: str,
    ) -> int:
        """Claim a handle and fill its record; returns the handle."""
        if not 0 < length_flits <= MAX_PACKET_LENGTH_FLITS:
            raise ValueError(
                f"length_flits must be in [1, {MAX_PACKET_LENGTH_FLITS}], "
                f"got {length_flits}"
            )
        if not route or route[0] != src_switch or route[-1] != dst_switch:
            raise ValueError(
                "route must start at src_switch and end at dst_switch; "
                f"got route={route!r}, src={src_switch}, dst={dst_switch}"
            )
        if not self.free_list:
            self._grow()
        handle = self.free_list.pop()
        self.pid[handle] = pid
        self.src_endpoint[handle] = src_endpoint
        self.dst_endpoint[handle] = dst_endpoint
        self.src_switch[handle] = src_switch
        self.dst_switch[handle] = dst_switch
        self.length_flits[handle] = length_flits
        self.generation_cycle[handle] = generation_cycle
        self.injection_cycle[handle] = self._no_cycle
        self.ejection_cycle[handle] = self._no_cycle
        self.route[handle] = route
        self.route_ports[handle] = None
        self.head_hop[handle] = 0
        self.energy_pj[handle] = 0.0
        self.flits_ejected[handle] = 0
        self.is_memory_access[handle] = is_memory_access
        self.is_reply[handle] = is_reply
        self.measured[handle] = measured
        self.traffic_class[handle] = traffic_class
        self.allocated_total += 1
        return handle

    def free(self, handle: int) -> None:
        """Return a handle to the pool (tail ejected, or packet purged)."""
        # Drop the only per-record object references so the route lists
        # do not outlive the packet.
        self.route[handle] = None
        self.route_ports[handle] = None
        self.free_list.append(handle)
        self.freed_total += 1

    def live_handles(self) -> Iterator[int]:
        """All currently allocated handles (test/diagnostic use only)."""
        free = set(self.free_list)
        return (h for h in range(self.capacity) if h not in free)

    # ------------------------------------------------------------------
    # Checkpoint/restore.
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """Capture every pooled record as plain, owned data.

        The parallel arrays serialise trivially — the snapshot is deep
        copies of the scalar arrays plus copies of the ``route`` and
        ``traffic_class`` object columns and the free-list/counter state.
        ``route_ports`` is deliberately excluded: it holds references to
        live :class:`~repro.noc.port.OutputPort` objects of one network
        instance, so a restored pool carries ``None`` there and the owner
        must recompile the tables for live handles (the kernel does this
        via :meth:`repro.noc.kernel.KernelState.recompile_route_ports`).
        """
        if self.backend == "numpy":
            scalars = {name: getattr(self, name).copy() for name in _SNAPSHOT_FIELDS}
        else:
            scalars = {name: list(getattr(self, name)) for name in _SNAPSHOT_FIELDS}
        return {
            "backend": self.backend,
            "scalars": scalars,
            "route": [None if r is None else list(r) for r in self.route],
            "traffic_class": list(self.traffic_class),
            "free_list": list(self.free_list),
            "allocated_total": self.allocated_total,
            "freed_total": self.freed_total,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the pool to a prior :meth:`snapshot`, in place.

        Capacity reverts to the snapshot's (growth between snapshot and
        restore is rolled back).  On the list backend the restore mutates
        the existing list objects (``field[:] = ...``), so references the
        kernel caches into the pool's columns stay valid across a restore;
        the NumPy backend replaces the arrays wholesale, which is safe
        because the vector engine re-reads the pool attributes every pass
        by contract (growth reallocates there anyway).
        """
        if snapshot["backend"] != self.backend:
            raise ValueError(
                f"cannot restore a {snapshot['backend']!r}-backend snapshot "
                f"into a {self.backend!r}-backend pool"
            )
        capacity = len(snapshot["route"])
        if self.backend == "numpy":
            for name in _SNAPSHOT_FIELDS:
                setattr(self, name, snapshot["scalars"][name].copy())
        else:
            for name in _SNAPSHOT_FIELDS:
                column = getattr(self, name)
                column[:] = snapshot["scalars"][name]
        self.route[:] = [None if r is None else list(r) for r in snapshot["route"]]
        self.route_ports[:] = [None] * capacity
        self.traffic_class[:] = snapshot["traffic_class"]
        self.free_list[:] = snapshot["free_list"]
        self.allocated_total = snapshot["allocated_total"]
        self.freed_total = snapshot["freed_total"]

    def view(self, handle: int) -> "PacketView":
        """A legacy-shaped read view of one pooled packet record."""
        return PacketView(self, handle)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PacketPool(capacity={self.capacity}, live={self.live_count}, "
            f"allocated={self.allocated_total}, freed={self.freed_total})"
        )


class PacketView:
    """Thin object view of one pooled packet record.

    Mirrors the :class:`~repro.noc.packet.Packet` attribute surface so the
    boundary consumers — traffic-model delivery callbacks, fault-injection
    reports, tests — keep reading ``packet.dst_endpoint`` etc. while the
    data lives in the pool's parallel arrays.  Views are only valid while
    their handle is live; holding one past the packet's ejection observes
    whatever packet recycles the handle next, so boundary code must not
    retain views across cycles.  Route-based accessors (``route``,
    ``hop_count``, ``next_switch_after``) do fail fast on a freed handle —
    :meth:`PacketPool.free` nulls the route — but scalar fields cannot
    distinguish a recycled record, hence the no-retention contract.
    """

    __slots__ = ("pool", "handle")

    def __init__(self, pool: PacketPool, handle: int) -> None:
        self.pool = pool
        self.handle = handle

    # Scalar fields are cast back to builtin int/float/bool so boundary
    # consumers (JSON caches, equality against literals) never observe a
    # NumPy scalar when the pool runs on the array backend; the optional
    # cycle fields additionally translate the array sentinel -1 to None.

    @property
    def packet_id(self) -> int:
        return int(self.pool.pid[self.handle])

    @property
    def src_endpoint(self) -> int:
        return int(self.pool.src_endpoint[self.handle])

    @property
    def dst_endpoint(self) -> int:
        return int(self.pool.dst_endpoint[self.handle])

    @property
    def src_switch(self) -> int:
        return int(self.pool.src_switch[self.handle])

    @property
    def dst_switch(self) -> int:
        return int(self.pool.dst_switch[self.handle])

    @property
    def length_flits(self) -> int:
        return int(self.pool.length_flits[self.handle])

    @property
    def generation_cycle(self) -> int:
        return int(self.pool.generation_cycle[self.handle])

    @property
    def injection_cycle(self) -> Optional[int]:
        value = self.pool.injection_cycle[self.handle]
        if value is None:
            return None
        value = int(value)
        return value if value >= 0 else None

    @property
    def ejection_cycle(self) -> Optional[int]:
        value = self.pool.ejection_cycle[self.handle]
        if value is None:
            return None
        value = int(value)
        return value if value >= 0 else None

    @property
    def route(self) -> List[int]:
        return self.pool.route[self.handle]

    @property
    def head_hop(self) -> int:
        return int(self.pool.head_hop[self.handle])

    @property
    def energy_pj(self) -> float:
        return float(self.pool.energy_pj[self.handle])

    @property
    def flits_ejected(self) -> int:
        return int(self.pool.flits_ejected[self.handle])

    @property
    def is_memory_access(self) -> bool:
        return bool(self.pool.is_memory_access[self.handle])

    @property
    def is_reply(self) -> bool:
        return bool(self.pool.is_reply[self.handle])

    @property
    def measured(self) -> bool:
        return bool(self.pool.measured[self.handle])

    @property
    def traffic_class(self) -> str:
        return self.pool.traffic_class[self.handle]

    # Legacy helpers mirrored from Packet.

    def add_energy(self, energy_pj: float) -> None:
        """Attribute dynamic energy to this packet."""
        self.pool.energy_pj[self.handle] += energy_pj

    @property
    def delivered(self) -> bool:
        """Whether the tail flit has been ejected at the destination."""
        return self.ejection_cycle is not None

    @property
    def latency_cycles(self) -> Optional[int]:
        """Source-queue-to-ejection latency, or ``None`` if not delivered."""
        ejection = self.ejection_cycle
        if ejection is None:
            return None
        return ejection - self.generation_cycle

    @property
    def network_latency_cycles(self) -> Optional[int]:
        """Injection-to-ejection latency (excludes source queueing)."""
        ejection = self.ejection_cycle
        injection = self.injection_cycle
        if ejection is None or injection is None:
            return None
        return ejection - injection

    @property
    def hop_count(self) -> int:
        """Number of link traversals on the packet's route."""
        return len(self.pool.route[self.handle]) - 1

    def next_switch_after(self, switch_id: int) -> int:
        """The switch following ``switch_id`` on this packet's route."""
        route = self.pool.route[self.handle]
        try:
            index = route.index(switch_id)
        except ValueError:
            raise ValueError(
                f"switch {switch_id} is not on the route of packet "
                f"{self.packet_id}"
            ) from None
        if index + 1 >= len(route):
            raise ValueError(f"packet {self.packet_id} terminates at switch {switch_id}")
        return route[index + 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"PacketView(id={self.packet_id}, "
            f"{self.src_endpoint}->{self.dst_endpoint}, "
            f"len={self.length_flits}, handle={self.handle})"
        )
