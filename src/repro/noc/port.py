"""Switch ports.

Each switch has one bidirectional port per attached link plus a local
(injection/ejection) port; switches carrying a wireless interface have one
additional port connected to the WI transceiver (Section III-C: "The WIs
have an additional port equipped with the wireless transceivers to access
the wireless channel").

Input ports own the VC buffers; output ports own the channel occupancy state
(``busy_until``) and, for wired links, a fixed reference to the downstream
input port.  The wireless output port has no fixed downstream — the
destination WI differs per packet — so its downstream is resolved per packet
by the simulator via the wireless fabric.

Every port carries a network-wide dense integer ``port_id`` (assigned by
the network builder when it compiles the per-switch port tables), so the
kernel and the fault injector can address ports by index instead of by the
string/neighbour keys, which remain for construction and debugging only.
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

from .link import LinkCharacteristics
from .virtual_channel import VirtualChannel

if TYPE_CHECKING:  # pragma: no cover
    from .switch import Switch

#: Port key of the local (injection/ejection) port.
LOCAL_PORT = "local"
#: Port key of the wireless-interface port.
WIRELESS_PORT = "wi"


class InputPort:
    """An input port with its virtual-channel buffers."""

    __slots__ = ("switch", "key", "port_id", "vcs")

    def __init__(
        self,
        switch: "Switch",
        key,
        num_vcs: int,
        buffer_depth: int,
        ordinal_base: int,
    ) -> None:
        if num_vcs <= 0:
            raise ValueError(f"num_vcs must be positive, got {num_vcs}")
        self.switch = switch
        self.key = key
        #: Network-wide dense index (assigned by the network builder).
        self.port_id = -1
        self.vcs: List[VirtualChannel] = [
            VirtualChannel(self, i, ordinal_base + i, buffer_depth)
            for i in range(num_vcs)
        ]

    def find_vc_for_packet(self, packet_id: int) -> Optional[VirtualChannel]:
        """The VC currently owned by ``packet_id``, if any."""
        for vc in self.vcs:
            if vc.allocated_packet_id == packet_id:
                return vc
        return None

    def find_free_vc(self) -> Optional[VirtualChannel]:
        """An unallocated, empty VC, if any."""
        for vc in self.vcs:
            if vc.allocated_packet_id is None and vc.count == 0 and vc.in_flight == 0:
                return vc
        return None

    @property
    def buffered_flits(self) -> int:
        """Total flits currently buffered at this port."""
        return sum(vc.count for vc in self.vcs)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"InputPort(switch={self.switch.switch_id}, key={self.key!r})"


class OutputPort:
    """An output port driving one link (or the local ejection path)."""

    __slots__ = (
        "switch",
        "key",
        "port_id",
        "link",
        "fabric",
        "downstream_switch",
        "downstream_port",
        "busy_until",
        "rr_pointer",
        "is_ejection",
        "is_wireless",
        "width",
        "request_scratch",
    )

    def __init__(
        self,
        switch: "Switch",
        key,
        link: Optional[LinkCharacteristics],
        downstream_switch: Optional[int] = None,
        downstream_port: Optional[InputPort] = None,
        is_ejection: bool = False,
        is_wireless: bool = False,
        width: int = 1,
    ) -> None:
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.switch = switch
        self.key = key
        #: Network-wide dense index (assigned by the network builder).
        self.port_id = -1
        self.link = link
        #: The :class:`~repro.noc.fabric.Fabric` this port transmits over
        #: (set by the network builder; ``None`` for ejection ports, whose
        #: flits leave the network instead of traversing a fabric).
        self.fabric = None
        self.downstream_switch = downstream_switch
        self.downstream_port = downstream_port
        self.busy_until = 0
        self.rr_pointer = 0
        self.is_ejection = is_ejection
        self.is_wireless = is_wireless
        #: Flits the port can move per cycle (ejection ports of memory-stack
        #: switches serve several vaults concurrently).
        self.width = width
        #: Per-cycle allocation scratch: the VCs requesting this port in the
        #: current allocation visit.  Living on the port (instead of a dict
        #: keyed by port objects) keeps the inner loop free of hashing; the
        #: kernel clears it before leaving the switch.
        self.request_scratch: List[VirtualChannel] = []

    def is_available(self, cycle: int) -> bool:
        """Whether the channel is free to start a new flit this cycle."""
        return self.busy_until <= cycle

    def occupy(self, cycle: int) -> None:
        """Mark the channel busy for the serialisation time of one flit."""
        cycles = self.link.cycles_per_flit if self.link is not None else 1
        self.busy_until = cycle + cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"OutputPort(switch={self.switch.switch_id}, key={self.key!r}, "
            f"wireless={self.is_wireless}, ejection={self.is_ejection})"
        )
