"""Simulation results and derived metrics.

The paper evaluates three quantities (Section IV): peak achievable bandwidth
per core, average packet energy and average packet latency.  A
:class:`SimulationResult` captures one run's raw counters and provides those
metrics as methods, so experiments and tests compute them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..energy.accounting import EnergyBreakdown
from ..energy.technology import CLOCK_FREQUENCY_HZ, FLIT_WIDTH_BITS
from ..metrics.streaming import StreamingSampleStats


@dataclass
class SimulationResult:
    """Raw counters and per-packet samples from one simulation run."""

    cycles: int
    warmup_cycles: int
    num_cores: int
    flit_width_bits: int = FLIT_WIDTH_BITS
    clock_frequency_hz: float = CLOCK_FREQUENCY_HZ
    nominal_packet_length_flits: int = 64

    packets_offered: int = 0
    packets_generated: int = 0
    packets_delivered: int = 0
    packets_delivered_measured: int = 0
    flits_injected: int = 0
    flits_ejected_measured: int = 0
    flits_ejected_total: int = 0
    flit_hops: int = 0
    wireless_flit_hops: int = 0

    #: Per-packet sample storage mode.  ``"sampled"`` (the default) stores
    #: every measured packet's samples in the four lists below — exact
    #: percentiles, and the lists feed the golden-fingerprint tests.
    #: ``"streaming"`` keeps the lists empty and folds each sample into the
    #: constant-memory accumulators instead (mean/max exact, percentiles
    #: P²-estimated), so long runs stay memory-flat.
    metrics_mode: str = "sampled"

    latencies_cycles: List[int] = field(default_factory=list)
    network_latencies_cycles: List[int] = field(default_factory=list)
    packet_energies_pj: List[float] = field(default_factory=list)
    packet_hops: List[int] = field(default_factory=list)

    #: Streaming accumulators (only fed in ``metrics_mode="streaming"``).
    #: Simulator-side storage strategy, not simulated behaviour, so they
    #: are excluded from equality like the wall clock.
    latency_stream: StreamingSampleStats = field(
        default_factory=StreamingSampleStats, compare=False, repr=False
    )
    network_latency_stream: StreamingSampleStats = field(
        default_factory=StreamingSampleStats, compare=False, repr=False
    )
    energy_stream: StreamingSampleStats = field(
        default_factory=StreamingSampleStats, compare=False, repr=False
    )
    hops_stream: StreamingSampleStats = field(
        default_factory=StreamingSampleStats, compare=False, repr=False
    )

    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    include_static_energy: bool = True
    mac_statistics: Dict[int, Dict[str, int]] = field(default_factory=dict)
    #: Per-wireless-channel energy attribution [pJ] (empty on wired runs):
    #: ``{channel_id: {wireless_pj, mac_control_pj, transceiver_static_pj}}``.
    #: Each component sums exactly to its aggregate in ``energy`` — see
    #: :meth:`repro.noc.fabric.WirelessFabric.channel_energy_breakdown`.
    channel_energy_pj: Dict[int, Dict[str, float]] = field(default_factory=dict)
    transceiver_sleep_fraction: float = 0.0
    stalled: bool = False
    offered_load_packets_per_core_per_cycle: float = 0.0

    # Fault injection and resilience (all zero on fault-free runs).
    fault_scenario: str = "none"
    fault_rate: float = 0.0
    fault_events_applied: int = 0
    links_failed: int = 0
    links_degraded: int = 0
    transceivers_failed: int = 0
    #: Packets whose route was rebuilt around a fault (queued or in flight).
    packets_rerouted: int = 0
    #: Packets removed because no in-service path to their destination
    #: remained; every one is counted here — never a silent drop.
    packets_dropped_unroutable: int = 0
    flits_dropped_unroutable: int = 0
    #: Recovery passes that found the in-service topology partitioned.
    partitions_reported: int = 0
    #: Recovery passes that fell back to spanning-tree routing because the
    #: shortest-path recovery set had a channel-dependency cycle.
    tree_fallback_recoveries: int = 0
    #: Flits still buffered or in flight when the run ended (conservation:
    #: ``flits_injected == flits_ejected_total + flits_residual_end +
    #: flits_dropped_unroutable`` holds for every run, faulted or not).
    flits_residual_end: int = 0
    #: Wall-clock duration of the kernel loop [s] — the simulator's own
    #: cost, not a property of the simulated system, so it is excluded
    #: from equality comparisons (it differs run to run even for
    #: bit-identical simulations).
    wall_clock_seconds: float = field(default=0.0, compare=False)
    #: Per-phase wall clock [s], filled only when the run was executed with
    #: ``SimulationConfig(profile_phases=True)`` (the CLI's ``--profile``).
    #: Keys are the kernel phase names (arrival, generation, injection,
    #: fabric, allocation, and faults on faulted runs).  Simulator-side
    #: cost, so excluded from equality comparisons like the wall clock.
    phase_seconds: Dict[str, float] = field(default_factory=dict, compare=False)
    #: Which engine actually executed the run (``"scalar"``, ``"vector"``,
    #: or ``"vector-batched"``), stamped at settle time — so a silent
    #: vector-to-scalar fallback (wireless fabric, fault plan, custom
    #: scheduler) is visible in the result.  Simulator-side provenance, not
    #: simulated behaviour, so excluded from equality like the wall clock;
    #: empty on results produced before the field existed.
    engine_used: str = field(default="", compare=False)

    # ------------------------------------------------------------------
    # Per-packet sample recording.
    # ------------------------------------------------------------------

    def record_delivery(
        self,
        latency_cycles: int,
        network_latency_cycles: Optional[int],
        energy_pj: float,
        hops: int,
    ) -> None:
        """Record one measured packet's samples (both engines call this).

        In ``"sampled"`` mode the samples land in the per-packet lists; in
        ``"streaming"`` mode they fold into the constant-memory
        accumulators and the lists stay empty.
        """
        if self.metrics_mode == "streaming":
            self.latency_stream.add(latency_cycles)
            if network_latency_cycles is not None:
                self.network_latency_stream.add(network_latency_cycles)
            self.energy_stream.add(energy_pj)
            self.hops_stream.add(hops)
        else:
            self.latencies_cycles.append(latency_cycles)
            if network_latency_cycles is not None:
                self.network_latencies_cycles.append(network_latency_cycles)
            self.packet_energies_pj.append(energy_pj)
            self.packet_hops.append(hops)

    # ------------------------------------------------------------------
    # Derived metrics.
    # ------------------------------------------------------------------

    @property
    def measurement_cycles(self) -> int:
        """Cycles in the measurement window (after warm-up)."""
        return max(0, self.cycles - self.warmup_cycles)

    def average_packet_latency_cycles(self) -> float:
        """Mean source-to-ejection latency of measured packets [cycles]."""
        if self.metrics_mode == "streaming":
            return self.latency_stream.mean
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    def average_network_latency_cycles(self) -> float:
        """Mean injection-to-ejection latency of measured packets [cycles]."""
        if self.metrics_mode == "streaming":
            return self.network_latency_stream.mean
        if not self.network_latencies_cycles:
            return 0.0
        return sum(self.network_latencies_cycles) / len(self.network_latencies_cycles)

    def latency_percentile_cycles(self, percentile: float) -> float:
        """Latency percentile (0-100) over measured packets [cycles].

        Exact in ``"sampled"`` mode; in ``"streaming"`` mode a P² estimate,
        available only for the tracked percentiles (50/95/99).
        """
        if self.metrics_mode == "streaming":
            if self.latency_stream.count == 0:
                return 0.0
            return self.latency_stream.percentile(percentile)
        if not self.latencies_cycles:
            return 0.0
        if not 0 <= percentile <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {percentile}")
        ordered = sorted(self.latencies_cycles)
        index = int(round((percentile / 100.0) * (len(ordered) - 1)))
        return float(ordered[index])

    def max_latency_cycles(self) -> float:
        """Largest measured packet latency [cycles] (0.0 with no samples)."""
        if self.metrics_mode == "streaming":
            return self.latency_stream.max
        if not self.latencies_cycles:
            return 0.0
        return float(max(self.latencies_cycles))

    def average_hop_count(self) -> float:
        """Mean number of link traversals of measured packets."""
        if self.metrics_mode == "streaming":
            return self.hops_stream.mean
        if not self.packet_hops:
            return 0.0
        return sum(self.packet_hops) / len(self.packet_hops)

    def average_packet_energy_pj(self) -> float:
        """Average packet energy [pJ], including amortised static energy.

        Dynamic energy is attributed per packet; static energy (if enabled)
        is spread evenly over the packets delivered inside the measurement
        window, mirroring the paper's inclusion of "both dynamic and static
        power consumption".
        """
        if self.metrics_mode == "streaming":
            if self.energy_stream.count == 0:
                return 0.0
            dynamic = self.energy_stream.mean
        elif not self.packet_energies_pj:
            return 0.0
        else:
            dynamic = sum(self.packet_energies_pj) / len(self.packet_energies_pj)
        if not self.include_static_energy:
            return dynamic
        packets = max(1, self.packets_delivered_measured)
        measured_fraction = self.measurement_cycles / self.cycles if self.cycles else 1.0
        return dynamic + self.energy.static_pj * measured_fraction / packets

    def average_packet_energy_nj(self) -> float:
        """Average packet energy [nJ]."""
        return self.average_packet_energy_pj() / 1e3

    def system_packet_energy_pj(self) -> float:
        """Total-energy-based average packet energy [pJ].

        Divides the system's total energy (dynamic plus, optionally, static)
        by the number of packet-equivalents delivered inside the measurement
        window.  Unlike :meth:`average_packet_energy_pj` this is not biased
        towards the (shorter-path) packets that happen to complete when the
        network is saturated, so architecture comparisons at saturation use
        it.
        """
        if self.flits_ejected_measured == 0:
            return 0.0
        packets_equivalent = self.flits_ejected_measured / max(1, self.nominal_packet_length_flits)
        measured_fraction = self.measurement_cycles / self.cycles if self.cycles else 1.0
        energy = self.energy.dynamic_pj * measured_fraction
        if self.include_static_energy:
            energy += self.energy.static_pj * measured_fraction
        return energy / packets_equivalent

    def system_packet_energy_nj(self) -> float:
        """Total-energy-based average packet energy [nJ]."""
        return self.system_packet_energy_pj() / 1e3

    # ------------------------------------------------------------------
    # Simulator self-throughput (how fast the simulator itself ran).
    # ------------------------------------------------------------------

    def simulated_cycles_per_second(self) -> float:
        """Simulated cycles the kernel processed per wall-clock second."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.cycles / self.wall_clock_seconds

    def simulated_flits_per_second(self) -> float:
        """Flit-hops the kernel processed per wall-clock second."""
        if self.wall_clock_seconds <= 0:
            return 0.0
        return self.flit_hops / self.wall_clock_seconds

    def accepted_flits_per_core_per_cycle(self) -> float:
        """Accepted traffic: flits ejected per core per measurement cycle."""
        if self.measurement_cycles == 0 or self.num_cores == 0:
            return 0.0
        return self.flits_ejected_measured / (self.measurement_cycles * self.num_cores)

    def bandwidth_gbps_per_core(self) -> float:
        """Accepted bandwidth per core [Gb/s]."""
        flits_per_cycle = self.accepted_flits_per_core_per_cycle()
        return flits_per_cycle * self.flit_width_bits * self.clock_frequency_hz / 1e9

    def accepted_packets_per_core_per_cycle(self) -> float:
        """Accepted packet rate per core per cycle (measured window)."""
        if self.measurement_cycles == 0 or self.num_cores == 0:
            return 0.0
        return self.packets_delivered_measured / (self.measurement_cycles * self.num_cores)

    def delivery_ratio(self) -> float:
        """Delivered packets / generated packets over the whole run."""
        if self.packets_generated == 0:
            return 0.0
        return self.packets_delivered / self.packets_generated

    def summary(self) -> Dict[str, float]:
        """Compact dictionary of the headline metrics (for reports/tests)."""
        return {
            "offered_load": self.offered_load_packets_per_core_per_cycle,
            "bandwidth_gbps_per_core": self.bandwidth_gbps_per_core(),
            "accepted_flits_per_core_per_cycle": self.accepted_flits_per_core_per_cycle(),
            "avg_packet_latency_cycles": self.average_packet_latency_cycles(),
            "avg_packet_energy_nj": self.average_packet_energy_nj(),
            "avg_hops": self.average_hop_count(),
            "packets_delivered": float(self.packets_delivered),
            "delivery_ratio": self.delivery_ratio(),
            "sleep_fraction": self.transceiver_sleep_fraction,
            "sim_cycles_per_second": self.simulated_cycles_per_second(),
            "sim_flits_per_second": self.simulated_flits_per_second(),
        }
