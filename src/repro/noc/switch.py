"""The wormhole/VC switch model.

Each switch is a three-stage pipelined wormhole router [18] with 8 VCs of
16 flits on every input port.  The pipeline latency is folded into the link
characterisation (see :mod:`repro.noc.link`); the switch object holds the
structural state — ports, VC buffers, arbitration pointers — and the small
amount of per-cycle logic that does not need a global view (route lookup for
a VC's current packet, round-robin winner selection).

Ports are registered during construction through the keyed dictionaries
(``input_ports`` / ``output_ports``) and then *compiled* once by the
network builder (:meth:`Switch.compile_tables`) into dense tables — flat
port lists and a flat VC tuple in deterministic construction order — that
the simulation kernel iterates without dictionary views or hashing.  The
keyed dictionaries stay authoritative for construction, lookup by
neighbour id, and debugging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..topology.graph import SwitchSpec
from .link import LinkCharacteristics
from .port import LOCAL_PORT, WIRELESS_PORT, InputPort, OutputPort
from .virtual_channel import VirtualChannel


class SwitchConfigError(ValueError):
    """Raised when a switch is built or used inconsistently."""


class Switch:
    """One NoC switch instance in the simulator."""

    def __init__(
        self,
        spec: SwitchSpec,
        num_vcs: int,
        buffer_depth: int,
        injection_width: int = 1,
        ejection_width: int = 1,
    ) -> None:
        self.spec = spec
        self.switch_id = spec.switch_id
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.injection_width = max(1, injection_width)
        self.input_ports: Dict[object, InputPort] = {}
        self.output_ports: Dict[object, OutputPort] = {}
        self._ordinal_base = 0

        self.local_input = self._add_input_port(LOCAL_PORT, buffer_depth)
        self.ejection_port = OutputPort(
            self,
            LOCAL_PORT,
            link=None,
            is_ejection=True,
            width=max(1, ejection_width),
        )
        self.output_ports[LOCAL_PORT] = self.ejection_port
        self.wireless_input: Optional[InputPort] = None
        self.wireless_output: Optional[OutputPort] = None
        #: Endpoint ids attached to this switch (filled by the network builder).
        self.endpoints: List[int] = []
        #: Dense tables compiled by :meth:`compile_tables`.
        self.input_port_list: List[InputPort] = []
        self.output_port_list: List[OutputPort] = []
        self.vc_list: Tuple[VirtualChannel, ...] = ()
        #: Ordinal -> VC table (``vc_by_ordinal[vc.ordinal] is vc``).
        self.vc_by_ordinal: Tuple[VirtualChannel, ...] = ()
        #: Ordinals of the VCs currently holding at least one flit.  Every
        #: buffer transition (0 -> 1 flit, last flit out) updates this set,
        #: so the allocation phase visits exactly the occupied VCs — in
        #: ascending ordinal order, which equals the historical full-table
        #: scan order — instead of scanning every (mostly empty) buffer.
        self.occupied: set = set()
        #: Modulus of the round-robin rank arithmetic (``max(1, #VCs)``).
        self.rr_modulus = 1

    # ------------------------------------------------------------------
    # Construction (called by the network builder).
    # ------------------------------------------------------------------

    def _add_input_port(self, key, buffer_depth: Optional[int] = None) -> InputPort:
        if key in self.input_ports:
            raise SwitchConfigError(f"switch {self.switch_id} already has input port {key!r}")
        depth = buffer_depth if buffer_depth is not None else self.buffer_depth
        port = InputPort(self, key, self.num_vcs, depth, self._ordinal_base)
        self._ordinal_base += self.num_vcs
        self.input_ports[key] = port
        return port

    def add_wired_port(
        self,
        neighbor_switch_id: int,
        link: LinkCharacteristics,
    ) -> Tuple[InputPort, OutputPort]:
        """Add the input/output port pair facing a wired neighbour.

        The output port's downstream input port is wired up by the network
        builder once the neighbour's ports exist.
        """
        input_port = self._add_input_port(neighbor_switch_id)
        output_port = OutputPort(
            self,
            neighbor_switch_id,
            link=link,
            downstream_switch=neighbor_switch_id,
        )
        self.output_ports[neighbor_switch_id] = output_port
        return input_port, output_port

    def add_wireless_port(
        self,
        link: LinkCharacteristics,
        buffer_depth: Optional[int] = None,
    ) -> Tuple[InputPort, OutputPort]:
        """Add the WI port pair (shared by all wireless destinations)."""
        if self.wireless_input is not None:
            raise SwitchConfigError(f"switch {self.switch_id} already has a wireless port")
        self.wireless_input = self._add_input_port(WIRELESS_PORT, buffer_depth)
        self.wireless_output = OutputPort(
            self,
            WIRELESS_PORT,
            link=link,
            is_wireless=True,
        )
        self.output_ports[WIRELESS_PORT] = self.wireless_output
        return self.wireless_input, self.wireless_output

    def compile_tables(self) -> None:
        """Freeze the dense port/VC tables the kernel iterates.

        Called by the network builder once every port exists.  List order
        matches the keyed dictionaries' insertion order (local port first,
        then neighbours in link-construction order, then the WI port), so
        compiled iteration is bit-identical to the historical dict-view
        iteration.
        """
        self.input_port_list = list(self.input_ports.values())
        self.output_port_list = list(self.output_ports.values())
        self.vc_list = tuple(vc for port in self.input_port_list for vc in port.vcs)
        # Ordinals are assigned densely in port-construction order, so the
        # vc_list is already ordinal-sorted and doubles as the lookup table.
        self.vc_by_ordinal = self.vc_list
        self.rr_modulus = max(1, self._ordinal_base)

    # ------------------------------------------------------------------
    # Per-cycle helpers used by the engine.
    # ------------------------------------------------------------------

    @property
    def has_wireless(self) -> bool:
        """Whether this switch carries a wireless interface."""
        return self.wireless_output is not None

    def all_vcs(self) -> List[VirtualChannel]:
        """All VC buffers of the switch (every input port)."""
        if self.vc_list:
            return list(self.vc_list)
        return [vc for port in self.input_ports.values() for vc in port.vcs]

    def output_towards(self, next_switch_id: int) -> OutputPort:
        """The output port a packet must take to reach ``next_switch_id``.

        A wired port keyed by the neighbour id wins over the wireless port;
        if no wired port exists the hop must be a wireless one.
        """
        port = self.output_ports.get(next_switch_id)
        if port is not None:
            return port
        if self.wireless_output is not None:
            return self.wireless_output
        raise SwitchConfigError(
            f"switch {self.switch_id} has no port towards switch {next_switch_id}"
        )

    def buffered_flits(self) -> int:
        """Total flits buffered anywhere in this switch."""
        return sum(vc.count for vc in self.all_vcs())

    # The per-WI pending scan the MAC protocols plan from lives on the
    # wireless fabric (:meth:`repro.noc.fabric.WirelessFabric.scan_pending`):
    # it reads this switch's occupied-VC ordinal set and the packet pool's
    # parallel arrays directly, so the switch needs no wireless-specific
    # per-cycle logic of its own.

    def select_round_robin(
        self, output: OutputPort, candidates: List[VirtualChannel]
    ) -> VirtualChannel:
        """Pick the next winner for an output port among eligible VCs."""
        if not candidates:
            raise SwitchConfigError("select_round_robin called with no candidates")
        total = max(1, self._ordinal_base)
        best = None
        best_rank = None
        pointer = output.rr_pointer
        for vc in candidates:
            rank = (vc.ordinal - pointer) % total
            if best_rank is None or rank < best_rank:
                best = vc
                best_rank = rank
        output.rr_pointer = (best.ordinal + 1) % total
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Switch(id={self.switch_id}, region={self.spec.region_id}, "
            f"ports={list(self.output_ports)!r})"
        )
