"""The NumPy SoA fast path for the three dominant kernel phases.

The scalar kernel (:mod:`repro.noc.kernel`) iterates switch by switch in
Python; near saturation that loop is ~70 % of the wall clock and the
active-set scheduler's payoff collapses (every switch is awake).  This
module re-expresses the same cycle as batched array operations over a
structure-of-arrays mirror of the network's VC state:

* every virtual channel gets a network-wide dense row index (``vc.gid``),
  assigned in ``input_port_table`` order — which equals (switch id
  ascending, switch-local ordinal ascending), the scalar scan order;
* the dynamic per-VC state (occupancy, ring head, in-flight reservations,
  owning packet, assigned output, memoized downstream claim) lives in
  int64 arrays, with the ring buffers packed into one 2-D array;
* per cycle, the allocation phase discovers candidates with one
  ``flatnonzero``, batch-computes eligibility with masked gathers, groups
  requests per output port with a stable argsort + ``reduceat``, and only
  then drops to Python for the per-output round-robin resolution and the
  sends themselves;
* the per-send/per-eject bookkeeping that used to run as Python dict and
  NumPy scalar operations inside that loop (link arrivals, output busy
  windows, per-packet energy, ejection counters, delivery recording) is
  merely *recorded* into flat per-cycle event lists during arbitration
  and *applied* once per cycle as a bulk array epilogue
  (:meth:`VectorKernelState._apply_epilogue`): one ``np.add.at`` scatter
  for energy, one fancy write for busy windows, one calendar-wheel push
  for arrivals, and a short replay loop for the order-sensitive float
  accumulators and delivery callbacks.

Exactness (the reason results are bit-identical to the scalar engine):

* a VC's front flit is phase-constant until its own group is processed
  (each output is visited once per cycle, each VC sends at most one flit);
* groups are processed in ``(switch id, first-request ordinal)`` order —
  exactly the scalar visit order — via the ``minimum.reduceat`` of the
  stable argsort's original positions;
* downstream space can only *grow* before a VC's own send (the unique
  upstream of a claimed VC is that VC itself), so snapshot-eligible stays
  eligible; snapshot-ineligible VCs can flip only when their target pops,
  which is caught live: every pop looks up the popped VC's upstream
  (``rev_vc_l``/``rev_out_l``) and forces that upstream's output group to
  re-evaluate eligibility when visited;
* every float is accumulated in the same order as the scalar loop (switch
  energy, then link energy, per send, in group order): the epilogue's
  energy scatter interleaves two rounded additions per send and one per
  eject into a single event-ordered ``np.add.at`` stream, and the
  breakdown accumulators are replayed value by value in event order.

Scope: the fast path covers **wired, fault-free** configurations — the
mesh and interposer near-saturation points the benchmarks gate on.  Runs
with a wireless fabric or a fault plan transparently fall back to the
scalar phases (see :class:`repro.noc.kernel.SimulationKernel`), which are
bit-identical by definition, so ``engine="vector"`` is always safe to
request.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Set

import numpy

from .kernel import (
    FabricPhase,
    GenerationPhase,
    KernelState,
    Phase,
    Scheduler,
    SimulationStallError,
)
from .network import Network
from .pool import FLIT_INDEX_BITS, FLIT_INDEX_MASK, PacketView
from .switch import Switch

#: Below this many arrival events the Python loop beats array indexing.
_ARRIVAL_BATCH_MIN = 8

#: Sentinel key for candidates excluded from the vectorised round-robin
#: argmin (snapshot-ineligible body rows and head fronts, which resolve
#: live).  Far above any real ``rank * size + position`` key, far below
#: int64 overflow.
_NO_KEY = 1 << 62

#: Initial per-slot capacity of the calendar-wheel arrival arrays; slots
#: grow geometrically and never shrink, so steady state allocates nothing.
_WHEEL_SLOT_CAPACITY = 16


class InjectionTracker(Scheduler):
    """Minimal scheduler stand-in used while the vector engine is active.

    The vector allocation phase derives its work list directly from the
    ``vc_count`` array, so the only signal it needs from the kernel's
    scheduler protocol is which switches have injection work (queued
    packets or a VC mid-serialisation).  The ``SimulationConfig.scheduler``
    knob is deliberately inert here — there is no per-switch visit loop to
    schedule.
    """

    name = "vector"

    def __init__(self) -> None:
        self.active: Set[int] = set()

    def bind(self, switches: List[Switch], injecting: List[Switch]) -> None:
        pass

    def allocation_candidates(self):
        return []

    def injection_candidates(self):
        return []

    def on_packet_queued(self, switch: Switch) -> None:
        self.active.add(switch.switch_id)


class _SwitchTables:
    """Static per-switch lookups used by the vector injection phase."""

    __slots__ = ("ej_port_id", "local_gids", "endpoints", "injection_width")

    def __init__(self, switch: Switch) -> None:
        self.ej_port_id = switch.ejection_port.port_id
        self.local_gids = [vc.gid for vc in switch.local_input.vcs]
        self.endpoints = list(switch.endpoints)
        self.injection_width = switch.injection_width


class VectorKernelState(KernelState):
    """Kernel state whose VC data plane lives in NumPy SoA arrays.

    The :class:`~repro.noc.virtual_channel.VirtualChannel` objects still
    exist (construction, diagnostics) but carry no live state during a
    vector run; everything the phases mutate is in the arrays below, keyed
    by ``vc.gid`` / ``port.port_id``.
    """

    #: Checkpoints of this state can only be resumed by the vector phases
    #: (the scalar engine never sees the arrays below); the checkpoint
    #: layer enforces it with a typed error.
    engine_name = "vector"

    def __init__(self, **kwargs) -> None:
        super().__init__(pool_backend="numpy", **kwargs)
        network: Network = self.network
        # ---- dense VC index (gid) and static per-VC tables -------------
        cap_l: List[int] = []
        ordinal_l: List[int] = []
        port_of_l: List[int] = []
        switch_of_l: List[int] = []
        in_vc_base: List[int] = []
        port_nvcs: List[int] = []
        for port in network.input_port_table:
            in_vc_base.append(len(cap_l))
            port_nvcs.append(len(port.vcs))
            for vc in port.vcs:
                vc.gid = len(cap_l)
                cap_l.append(vc.capacity)
                ordinal_l.append(vc.ordinal)
                port_of_l.append(port.port_id)
                switch_of_l.append(port.switch.switch_id)
        total = len(cap_l)
        self.cap_l = cap_l
        self.ordinal_l = ordinal_l
        self.port_of_l = port_of_l
        self.switch_of_l = switch_of_l
        self.in_vc_base = in_vc_base
        self.port_nvcs = port_nvcs
        self.vc_cap = numpy.asarray(cap_l, dtype=numpy.int64)
        self.ordinal_np = numpy.asarray(ordinal_l, dtype=numpy.int64)
        # ---- static per-output-port tables -----------------------------
        out_is_ej: List[bool] = []
        out_down_port: List[int] = []
        out_latency: List[int] = []
        out_cpf: List[int] = []
        out_energy: List[float] = []
        out_width: List[int] = []
        out_rr_mod: List[int] = []
        for port in network.output_port_table:
            out_is_ej.append(port.is_ejection)
            out_rr_mod.append(port.switch.rr_modulus)
            out_width.append(port.width)
            if port.is_ejection:
                out_down_port.append(-1)
                out_latency.append(0)
                out_cpf.append(0)
                out_energy.append(0.0)
                continue
            downstream = port.downstream_port
            if downstream is None:  # pragma: no cover - guarded by kernel
                raise RuntimeError(
                    "vector engine requires statically wired downstream ports"
                )
            out_down_port.append(downstream.port_id)
            out_latency.append(port.link.latency_cycles)
            out_cpf.append(port.link.cycles_per_flit)
            out_energy.append(port.link.energy_pj_per_flit)
        self.out_is_ej = out_is_ej
        self.out_down_port = out_down_port
        self.out_width = out_width
        self.out_rr_mod = out_rr_mod
        #: Per-output link tables as NumPy arrays: the epilogue applies
        #: busy windows, wheel pushes and link-energy gathers with one
        #: fancy read per cycle instead of a list read per send.
        self.out_latency = numpy.asarray(out_latency, dtype=numpy.int64)
        self.out_cpf = numpy.asarray(out_cpf, dtype=numpy.int64)
        self.out_energy = numpy.asarray(out_energy, dtype=numpy.float64)
        self.out_rr_mod_np = numpy.asarray(out_rr_mod, dtype=numpy.int64)
        #: Per-output transmission-busy horizon.  Written once per cycle
        #: by the epilogue (every sending output, one fancy write); read
        #: once per cycle as a vectorised per-group mask — never on the
        #: per-send path.
        self.busy_until = numpy.zeros(len(out_is_ej), dtype=numpy.int64)
        #: Per-output round-robin pointers.  NumPy so the allocation phase
        #: can compute every candidate's arbitration rank in one gather.
        self.rr_ptr_np = numpy.zeros(len(out_is_ej), dtype=numpy.int64)
        # ---- per-switch tables -----------------------------------------
        self.sw: Dict[int, _SwitchTables] = {
            sid: _SwitchTables(switch) for sid, switch in network.switches.items()
        }
        # ---- dynamic SoA state -----------------------------------------
        self.vc_count = numpy.zeros(total, dtype=numpy.int64)
        self.vc_head = numpy.zeros(total, dtype=numpy.int64)
        self.vc_in_flight = numpy.zeros(total, dtype=numpy.int64)
        #: Owning packet id, or -1 while the VC is unallocated.  A plain
        #: list: the allocation scan never reads it vectorised (ownership
        #: checks are per-winner), and list indexing is several times
        #: cheaper than NumPy scalar indexing on the per-send path.  It is
        #: also the owner index: head-front target resolution scans the
        #: downstream port's slice of this list for the packet id —
        #: exactly the scalar engine's owner scan — which is what made the
        #: old ``(port, pid) -> gid`` owner dict redundant.
        self.alloc_l: List[int] = [-1] * total
        #: Pending mid-phase occupancy changes (deferred ring pops and
        #: in-flight increments); always all-zero between phases.
        self.occ_delta: List[int] = [0] * total
        #: Assigned output ``port_id`` of the buffered packet, or -1.
        self.vc_out = numpy.full(total, -1, dtype=numpy.int64)
        #: Memoized downstream claim (gid) for buffered body flits, or -1.
        #: Set when the head flit claims its downstream VC, cleared when
        #: the tail leaves — it is what lets the eligibility scan be one
        #: masked gather instead of a per-VC owner search.
        self.vc_tgt = numpy.full(total, -1, dtype=numpy.int64)
        maxcap = max(cap_l) if cap_l else 1
        #: Ring buffers, one row per VC (ring arithmetic modulo the row's
        #: own capacity; the row is padded to the widest capacity).
        self.buf2d = numpy.zeros((total, maxcap), dtype=numpy.int64)
        #: Injection serialisation state (local-port rows only).
        self.source_handle: List[Optional[int]] = [None] * total
        self.source_emitted = [0] * total
        #: Per-input-port bitmask of free VCs (bit i == VC index i free).
        self.free_mask = [(1 << len(port.vcs)) - 1 for port in network.input_port_table]
        #: Reverse claim index, flat per-gid lists (the array spelling of
        #: the old ``claimed gid -> (upstream gid, upstream out)`` dict):
        #: while an upstream VC still holds body flits for claimed row
        #: ``g``, ``rev_vc_l[g]`` is that upstream's gid and
        #: ``rev_out_l[g]`` its frozen output port; -1 otherwise.  Pops
        #: consult these to force the upstream's output group to
        #: re-evaluate eligibility (space just appeared).
        self.rev_vc_l: List[int] = [-1] * total
        self.rev_out_l: List[int] = [-1] * total
        # ---- calendar-wheel arrival queue ------------------------------
        #: Link latencies are bounded and known at build time, so pending
        #: arrivals live in a calendar ring of ``max latency + 1`` slots
        #: (slot = cycle mod size) of preallocated target/flit arrays —
        #: the epilogue appends one latency group per slice assignment and
        #: the arrival phase consumes a slot without building any array.
        wired_latencies = [
            latency for latency, ej in zip(out_latency, out_is_ej) if not ej
        ]
        self.wheel_size = (max(wired_latencies) if wired_latencies else 0) + 1
        self.wheel_targets: List[numpy.ndarray] = [
            numpy.empty(_WHEEL_SLOT_CAPACITY, dtype=numpy.int64)
            for _ in range(self.wheel_size)
        ]
        self.wheel_flits: List[numpy.ndarray] = [
            numpy.empty(_WHEEL_SLOT_CAPACITY, dtype=numpy.int64)
            for _ in range(self.wheel_size)
        ]
        self.wheel_count: List[int] = [0] * self.wheel_size
        #: Total entries across all slots (cheap residual/watchdog count).
        self.wheel_pending = 0
        # ---- allocation-phase profiling (``--profile`` split) ----------
        #: When on, the allocation phase is timed in two parts: the array
        #: "dispatch" (snapshot, grouping, eligibility) and the per-event
        #: section (group loop + bulk epilogue + delivery replay); the
        #: engine publishes them as ``allocation/dispatch`` and
        #: ``allocation/events`` rows of ``SimulationResult.phase_seconds``.
        self.profile_alloc = bool(self.config.profile_phases)
        self.alloc_dispatch_seconds = 0.0
        self.alloc_event_seconds = 0.0
        self.alloc_event_count = 0

    # ------------------------------------------------------------------
    # Free-VC bookkeeping.
    # ------------------------------------------------------------------

    def _claim_vc(self, gid: int) -> None:
        port_id = self.port_of_l[gid]
        self.free_mask[port_id] &= ~(1 << (gid - self.in_vc_base[port_id]))

    def _free_vc(self, gid: int) -> None:
        port_id = self.port_of_l[gid]
        self.free_mask[port_id] |= 1 << (gid - self.in_vc_base[port_id])

    # ------------------------------------------------------------------
    # Calendar-wheel arrival queue.
    # ------------------------------------------------------------------

    def _wheel_push(self, slot: int, targets: numpy.ndarray, flits: numpy.ndarray) -> None:
        """Append one latency group's sends to slot ``slot`` (grows 2x)."""
        count = self.wheel_count[slot]
        new_count = count + targets.size
        buffer = self.wheel_targets[slot]
        if new_count > buffer.size:
            capacity = max(new_count, 2 * buffer.size)
            grown = numpy.empty(capacity, dtype=numpy.int64)
            grown[:count] = buffer[:count]
            self.wheel_targets[slot] = grown
            grown = numpy.empty(capacity, dtype=numpy.int64)
            grown[:count] = self.wheel_flits[slot][:count]
            self.wheel_flits[slot] = grown
        self.wheel_targets[slot][count:new_count] = targets
        self.wheel_flits[slot][count:new_count] = flits
        self.wheel_count[slot] = new_count
        self.wheel_pending += int(targets.size)

    # ------------------------------------------------------------------
    # Phase 1: arrivals (vectorised scatter).
    # ------------------------------------------------------------------

    def process_arrivals(self, cycle: int) -> None:
        slot = cycle % self.wheel_size
        count = self.wheel_count[slot]
        if not count:
            return
        targets = self.wheel_targets[slot][:count]
        flits = self.wheel_flits[slot][:count]
        if count >= _ARRIVAL_BATCH_MIN:
            # All gids in one cycle's batch are distinct: a claimed VC has
            # a unique upstream, links have cycles_per_flit >= 1 (one send
            # per output per cycle) and a fixed latency, so two arrivals
            # at the same VC always come from different send cycles.  The
            # within-slot order is therefore irrelevant.
            if (self.vc_in_flight[targets] <= 0).any():
                raise RuntimeError("deliver() without a matching reserve()")
            self.vc_in_flight[targets] -= 1
            slots = (self.vc_head[targets] + self.vc_count[targets]) % self.vc_cap[targets]
            self.buf2d[targets, slots] = flits
            self.vc_count[targets] += 1
        else:
            vc_count = self.vc_count
            vc_head = self.vc_head
            vc_in_flight = self.vc_in_flight
            buf2d = self.buf2d
            cap_l = self.cap_l
            for gid, flit in zip(targets.tolist(), flits.tolist()):
                if int(vc_in_flight[gid]) <= 0:
                    raise RuntimeError("deliver() without a matching reserve()")
                vc_in_flight[gid] -= 1
                occupancy = int(vc_count[gid])
                buf2d[gid, (int(vc_head[gid]) + occupancy) % cap_l[gid]] = flit
                vc_count[gid] = occupancy + 1
        self.wheel_count[slot] = 0
        self.wheel_pending -= count
        self.last_progress_cycle = cycle

    # ------------------------------------------------------------------
    # Phase 3: injection (array state, scalar semantics).
    # ------------------------------------------------------------------

    def inject_vec(self, switch_id: int, cycle: int) -> None:
        tables = self.sw[switch_id]
        budget = tables.injection_width
        pool = self.pool
        result = self.result
        vc_count = self.vc_count
        vc_head = self.vc_head
        vc_in_flight = self.vc_in_flight
        buf2d = self.buf2d
        cap_l = self.cap_l
        source_handle = self.source_handle
        source_emitted = self.source_emitted
        # Continue serialising packets already owning a local VC.
        for gid in tables.local_gids:
            if budget == 0:
                return
            handle = source_handle[gid]
            if handle is None:
                continue
            occupancy = int(vc_count[gid])
            if occupancy + int(vc_in_flight[gid]) >= cap_l[gid]:
                continue
            index = source_emitted[gid]
            buf2d[gid, (int(vc_head[gid]) + occupancy) % cap_l[gid]] = (
                handle << FLIT_INDEX_BITS
            ) | index
            vc_count[gid] = occupancy + 1
            source_emitted[gid] = index + 1
            result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if index + 1 >= int(pool.length_flits[handle]):
                source_handle[gid] = None
                source_emitted[gid] = 0
        if budget == 0:
            return
        # Start injecting new packets from the attached endpoints.
        source_queues = self.source_queues
        local_base = tables.local_gids[0] if tables.local_gids else 0
        local_port_id = self.port_of_l[local_base] if tables.local_gids else -1
        for endpoint_id in tables.endpoints:
            if budget == 0:
                return
            queue = source_queues.get(endpoint_id)
            if not queue:
                continue
            mask = self.free_mask[local_port_id] if local_port_id >= 0 else 0
            if not mask:
                return
            gid = local_base + ((mask & -mask).bit_length() - 1)
            handle = queue.popleft()
            pool.injection_cycle[handle] = cycle
            self.alloc_l[gid] = int(pool.pid[handle])
            self._claim_vc(gid)
            source_handle[gid] = handle
            buf2d[gid, int(vc_head[gid])] = handle << FLIT_INDEX_BITS
            vc_count[gid] = 1
            source_emitted[gid] = 1
            result.flits_injected += 1
            budget -= 1
            self.last_progress_cycle = cycle
            if int(pool.length_flits[handle]) <= 1:
                source_handle[gid] = None
                source_emitted[gid] = 0

    def has_injection_work_vec(self, switch_id: int) -> bool:
        tables = self.sw[switch_id]
        source_handle = self.source_handle
        for gid in tables.local_gids:
            if source_handle[gid] is not None:
                return True
        source_queues = self.source_queues
        for endpoint_id in tables.endpoints:
            if source_queues.get(endpoint_id):
                return True
        return False

    # ------------------------------------------------------------------
    # Phase 5: allocation (the batched core).
    # ------------------------------------------------------------------

    def _assign_output_vec(self, gid: int) -> None:
        """Route the head flit at the front of row ``gid`` (first visit)."""
        pool = self.pool
        flit = int(self.buf2d[gid, int(self.vc_head[gid])])
        handle = flit >> FLIT_INDEX_BITS
        if flit & FLIT_INDEX_MASK:
            raise RuntimeError(
                f"VC gid {gid} has no routing state but its front flit is not a head"
            )
        switch_id = self.switch_of_l[gid]
        if switch_id == int(pool.dst_switch[handle]):
            self.vc_out[gid] = self.sw[switch_id].ej_port_id
            return
        hop = int(pool.head_hop[handle])
        route = pool.route[handle]
        if route[hop] != switch_id:
            raise RuntimeError(
                f"packet {int(pool.pid[handle])} head expected at switch "
                f"{route[hop]} but found at {switch_id}"
            )
        self.vc_out[gid] = pool.route_ports[handle][hop].port_id

    def allocate_all(self, cycle: int) -> None:
        profiling = self.profile_alloc
        if profiling:
            tick = perf_counter()
        vc_count = self.vc_count
        candidates = numpy.flatnonzero(vc_count)
        if not candidates.size:
            if profiling:
                self.alloc_dispatch_seconds += perf_counter() - tick
            return
        vc_out = self.vc_out
        out_arr = vc_out[candidates]
        if (out_arr < 0).any():
            for gid in candidates[out_arr < 0].tolist():
                self._assign_output_vec(gid)
            out_arr = vc_out[candidates]
        vc_head = self.vc_head
        vc_in_flight = self.vc_in_flight
        vc_cap = self.vc_cap
        pool = self.pool
        # Snapshot: front flits, their packet identity, and eligibility.
        # The snapshot is phase-stable for everything the loop consumes: a
        # VC's front changes only through its own (single) send, and a
        # body row's claimed target only gains occupancy through that same
        # send, so snapshot-eligible rows stay eligible.  The one flip the
        # snapshot can miss — a pop freeing space at a full target — is
        # caught by the ``unlocked`` entries below: every pop enrols the
        # popped VC's unique upstream into its output's arbitration.
        fronts = self.buf2d[candidates, vc_head[candidates]]
        handles = fronts >> FLIT_INDEX_BITS
        indices = fronts & FLIT_INDEX_MASK
        head_front = indices == 0
        pids = pool.pid[handles]
        is_tail = indices == pool.length_flits[handles] - 1
        targets = self.vc_tgt[candidates]
        claimed = targets >= 0
        body_elig = numpy.zeros(candidates.size, dtype=bool)
        claimed_targets = targets[claimed]
        body_elig[claimed] = (
            vc_count[claimed_targets] + vc_in_flight[claimed_targets]
            < vc_cap[claimed_targets]
        )
        # Vectorised round-robin ranks.  An output's pointer moves only
        # when that output sends, each output sends at most once per phase,
        # and the pointer is read only when the output's own winner is
        # chosen — so phase-start pointers are exactly what the scalar
        # arbitration reads.  Ranks are unique within a group (ordinals are
        # distinct modulo the port's VC count), so encoding the candidate
        # position in the low bits keeps the per-group minimum unambiguous:
        # ``min(rank * size + position)`` recovers both the winning rank
        # and the row it belongs to.
        size = candidates.size
        ranks = (self.ordinal_np[candidates] - self.rr_ptr_np[out_arr]) % (
            self.out_rr_mod_np[out_arr]
        )
        positions = numpy.arange(size)
        key = numpy.where(body_elig, ranks * size + positions, _NO_KEY)
        # Group by output port; process in scalar visit order: ascending
        # switch id, then first-request ordinal within the switch (the
        # candidate array is gid-ascending == (switch, ordinal)-ascending,
        # so the minimum original position of each group encodes both).
        # Port ids fit comfortably in int32, where the stable radix sort
        # does half the passes of the int64 one.
        order = numpy.argsort(out_arr.astype(numpy.int32), kind="stable")
        sorted_out = out_arr[order]
        boundaries = numpy.ones(size, dtype=bool)
        boundaries[1:] = sorted_out[1:] != sorted_out[:-1]
        starts = numpy.flatnonzero(boundaries)
        group_out = sorted_out[starts]
        group_best = numpy.minimum.reduceat(key[order], starts).tolist()
        first_position = numpy.minimum.reduceat(order, starts)
        process_order = numpy.argsort(first_position, kind="stable").tolist()
        # Transmission-busy outputs, as one phase-start gather: an output's
        # horizon only moves through its own send, and every write is
        # deferred to the epilogue, so the phase-start values are exactly
        # what the scalar arbitration reads at each output's single visit.
        group_busy = (self.busy_until[group_out] > cycle).tolist()
        # Bulk Python conversion: one tolist per array per phase (cheap,
        # amortised) instead of NumPy scalar reads on the per-send path
        # (expensive, per element).
        cand_l = candidates.tolist()
        fronts_l = fronts.tolist()
        pids_l = pids.tolist()
        tails_l = is_tail.tolist()
        targets_l = targets.tolist()
        spans = starts.tolist()
        spans.append(size)
        group_out_l = group_out.tolist()
        out_to_group = {out: i for i, out in enumerate(group_out_l)}
        # Head fronts resolve their target VC live (owner scan, then first
        # free VC); bucket them per group.  Everything else rides on the
        # vectorised per-group minimum above.
        hf_buckets: Dict[int, List[int]] = {}
        hf_positions = numpy.flatnonzero(head_front)
        if hf_positions.size:
            for pos, out in zip(
                hf_positions.tolist(), out_arr[hf_positions].tolist()
            ):
                grp = out_to_group[out]
                bucket = hf_buckets.get(grp)
                if bucket is None:
                    hf_buckets[grp] = [pos]
                else:
                    bucket.append(pos)
        if profiling:
            now = perf_counter()
            self.alloc_dispatch_seconds += now - tick
            tick = now
        # Snapshot-ineligible members whose full target popped at an
        # earlier group this phase, keyed by their output's group.  A
        # popped VC refills only through its unique upstream, so each such
        # member is guaranteed eligible when its group arbitrates — no
        # full re-evaluation of the group is needed, the member just
        # joins the rank competition.
        unlocked: Dict[int, List[int]] = {}
        # Ring pops and in-flight increments are deferred to one vectorised
        # application after the loop; ``occ_delta`` carries the pending
        # occupancy changes so the live checks still see scalar-exact
        # ``count + in_flight`` values mid-phase.
        pop_gids: List[int] = []
        new_inflight: List[int] = []
        # Per-cycle event recording (applied in ``_apply_epilogue``): one
        # entry per send/eject in scalar event order.  ``ev_out`` is the
        # sending output port, or -1 for ejections.
        ev_gid: List[int] = []
        ev_handle: List[int] = []
        ev_out: List[int] = []
        send_target: List[int] = []
        send_flit: List[int] = []
        head_handles: List[int] = []
        tail_gids: List[int] = []
        tail_handles: List[int] = []
        occ_delta = self.occ_delta
        cap_l = self.cap_l
        ordinal_l = self.ordinal_l
        out_is_ej = self.out_is_ej
        out_down_port = self.out_down_port
        out_rr_mod = self.out_rr_mod
        rr_ptr_np = self.rr_ptr_np
        in_vc_base = self.in_vc_base
        port_nvcs = self.port_nvcs
        free_mask = self.free_mask
        alloc_l = self.alloc_l
        send = self._send
        for group in process_order:
            out_id = group_out_l[group]
            if out_is_ej[out_id]:
                # Ejection groups are always served: their members only
                # need buffered flits, which every candidate has.
                begin, end = spans[group], spans[group + 1]
                self._serve_ejection_group(
                    out_id,
                    order[begin:end].tolist(),
                    cand_l,
                    fronts_l,
                    tails_l,
                    cycle,
                    unlocked,
                    out_to_group,
                    pop_gids,
                    ev_gid,
                    ev_handle,
                    ev_out,
                    tail_gids,
                    tail_handles,
                )
                continue
            best = group_best[group]
            hf_bucket = hf_buckets.get(group)
            un = unlocked.get(group)
            if best == _NO_KEY and hf_bucket is None and un is None:
                continue
            if group_busy[group]:
                continue
            down_port = out_down_port[out_id]
            down_base = in_vc_base[down_port]
            modulus = out_rr_mod[out_id]
            pointer = int(rr_ptr_np[out_id])
            win_pos = -1
            win_gid = -1
            win_target = -1
            if best != _NO_KEY:
                best_rank = best // size
                win_pos = best - best_rank * size
                win_target = targets_l[win_pos]
            else:
                best_rank = modulus
            if hf_bucket is not None:
                down_limit = down_base + port_nvcs[down_port]
                for pos in hf_bucket:
                    # Live head resolution, mirroring the scalar owner
                    # scan over the downstream port's VCs (in index
                    # order) and then its first-free scan (lowest set
                    # bit == first VC in index order).
                    pid = pids_l[pos]
                    target = -1
                    for tvc in range(down_base, down_limit):
                        if alloc_l[tvc] == pid:
                            target = tvc
                            break
                    if target < 0:
                        mask = free_mask[down_port]
                        if not mask:
                            continue
                        target = down_base + ((mask & -mask).bit_length() - 1)
                    elif (
                        int(vc_count[target])
                        + int(vc_in_flight[target])
                        + occ_delta[target]
                        >= cap_l[target]
                    ):
                        continue
                    rank = (ordinal_l[cand_l[pos]] - pointer) % modulus
                    if rank < best_rank:
                        best_rank = rank
                        win_pos = pos
                        win_target = target
            if un is not None:
                for ugid in un:
                    # Guaranteed eligible (see the ``unlocked`` note); the
                    # only disqualifier is an empty buffer — its count is
                    # exact because an unlocked member cannot have popped.
                    if not int(vc_count[ugid]):
                        continue
                    rank = (ordinal_l[ugid] - pointer) % modulus
                    if rank < best_rank:
                        best_rank = rank
                        win_gid = ugid
                        win_pos = -1
            if win_gid >= 0:
                # Unlocked winner: read its row live (it is outside the
                # snapshot's eligible set, possibly outside the candidate
                # bulk conversion entirely).
                flit = int(self.buf2d[win_gid, int(vc_head[win_gid])])
                fresh_pool = self.pool
                rr_ptr_np[out_id] = (ordinal_l[win_gid] + 1) % modulus
                send(
                    win_gid,
                    int(self.vc_tgt[win_gid]),
                    flit,
                    alloc_l[win_gid],
                    (flit & FLIT_INDEX_MASK)
                    == int(fresh_pool.length_flits[flit >> FLIT_INDEX_BITS]) - 1,
                    False,
                    out_id,
                    down_port,
                    unlocked,
                    out_to_group,
                    pop_gids,
                    new_inflight,
                    occ_delta,
                    ev_gid,
                    ev_handle,
                    ev_out,
                    send_target,
                    send_flit,
                    head_handles,
                )
                continue
            if win_pos < 0:
                continue
            gid = cand_l[win_pos]
            flit = fronts_l[win_pos]
            rr_ptr_np[out_id] = (ordinal_l[gid] + 1) % modulus
            send(
                gid,
                win_target,
                flit,
                pids_l[win_pos],
                tails_l[win_pos],
                not flit & FLIT_INDEX_MASK,
                out_id,
                down_port,
                unlocked,
                out_to_group,
                pop_gids,
                new_inflight,
                occ_delta,
                ev_gid,
                ev_handle,
                ev_out,
                send_target,
                send_flit,
                head_handles,
            )
        # Apply the deferred ring pops and in-flight increments in bulk.
        # Popped gids are unique (a VC moves at most one flit per cycle)
        # and so are targets (each claimed VC has a unique upstream), so
        # plain fancy assignment is exact.
        if pop_gids:
            popped = numpy.fromiter(pop_gids, numpy.int64, len(pop_gids))
            vc_head[popped] = (vc_head[popped] + 1) % vc_cap[popped]
            vc_count[popped] -= 1
            for gid in pop_gids:
                occ_delta[gid] = 0
            self._note_pops(pop_gids, cycle)
        if new_inflight:
            grown = numpy.fromiter(new_inflight, numpy.int64, len(new_inflight))
            vc_in_flight[grown] += 1
            for target in new_inflight:
                occ_delta[target] = 0
            self._note_hops(new_inflight)
        if ev_handle:
            self._apply_epilogue(
                cycle,
                ev_gid,
                ev_handle,
                ev_out,
                send_target,
                send_flit,
                head_handles,
                tail_gids,
                tail_handles,
            )
        if profiling:
            self.alloc_event_seconds += perf_counter() - tick
            self.alloc_event_count += len(ev_handle)

    def _note_pops(self, pop_gids: List[int], cycle: int) -> None:
        """Progress accounting for this phase's ring pops.

        A hook (rather than inline) so the lane-batched state
        (:mod:`repro.noc.lanes`) can attribute progress per lane while
        inheriting :meth:`allocate_all` verbatim.
        """
        self.last_progress_cycle = cycle

    def _note_hops(self, new_inflight: List[int]) -> None:
        """Hop accounting for this phase's sends (lane-batched hook)."""
        self.result.flit_hops += len(new_inflight)

    def _send(
        self,
        gid: int,
        target: int,
        flit: int,
        pid: int,
        is_tail: bool,
        is_head: bool,
        out_id: int,
        down_port: int,
        unlocked: Dict[int, List[int]],
        out_to_group,
        pop_gids: List[int],
        new_inflight: List[int],
        occ_delta: List[int],
        ev_gid: List[int],
        ev_handle: List[int],
        ev_out: List[int],
        send_target: List[int],
        send_flit: List[int],
        head_handles: List[int],
    ) -> None:
        # Ring pop of the front flit (deferred; see ``allocate_all``).
        pop_gids.append(gid)
        occ_delta[gid] -= 1
        rev_vc_l = self.rev_vc_l
        rev_out_l = self.rev_out_l
        # This pop freed space for the upstream still streaming into gid:
        # enrol it in its output's arbitration if that group is still due.
        upstream = rev_vc_l[gid]
        if upstream >= 0:
            group = out_to_group.get(rev_out_l[gid])
            if group is not None:
                entries = unlocked.get(group)
                if entries is None:
                    unlocked[group] = [upstream]
                else:
                    entries.append(upstream)
        alloc_l = self.alloc_l
        handle = flit >> FLIT_INDEX_BITS
        if is_tail:
            alloc_l[gid] = -1
            self.vc_out[gid] = -1
            old_target = int(self.vc_tgt[gid])
            if old_target >= 0:
                # Cleared live (not in the epilogue): the released claim's
                # row may pop later this same cycle, and a stale reverse
                # entry would enrol this tail-finished row as "unlocked".
                rev_vc_l[old_target] = -1
                rev_out_l[old_target] = -1
                self.vc_tgt[gid] = -1
            self._free_vc(gid)
        # Downstream claim / reservation (inline VirtualChannel.reserve).
        target_owner = alloc_l[target]
        if is_head:
            if target_owner >= 0 and target_owner != pid:
                raise RuntimeError(
                    f"VC already allocated to packet {target_owner}, cannot "
                    f"accept head of packet {pid}"
                )
            alloc_l[target] = pid
            self._claim_vc(target)
            if not is_tail:
                self.vc_tgt[gid] = target
                rev_vc_l[target] = gid
                rev_out_l[target] = out_id
        elif target_owner != pid:
            raise RuntimeError(
                f"body flit of packet {pid} sent to VC owned by {target_owner}"
            )
        new_inflight.append(target)
        occ_delta[target] += 1
        # Everything else this send owes the world — link arrival, busy
        # window, energy, head-hop advance — is recorded here and applied
        # in bulk by ``_apply_epilogue``.
        ev_gid.append(gid)
        ev_handle.append(handle)
        ev_out.append(out_id)
        send_target.append(target)
        send_flit.append(flit)
        if is_head:
            head_handles.append(handle)

    def _serve_ejection_group(
        self,
        out_id: int,
        members: List[int],
        cand_l: List[int],
        fronts_l: List[int],
        tails_l: List[bool],
        cycle: int,
        unlocked: Dict[int, List[int]],
        out_to_group,
        pop_gids: List[int],
        ev_gid: List[int],
        ev_handle: List[int],
        ev_out: List[int],
        tail_gids: List[int],
        tail_handles: List[int],
    ) -> None:
        budget = self.out_width[out_id]
        sample_gid = cand_l[members[0]]
        remaining = members
        modulus = self.out_rr_mod[out_id]
        ordinal_l = self.ordinal_l
        rr_ptr_np = self.rr_ptr_np
        served = 0
        while budget > 0 and remaining:
            if len(remaining) == 1:
                pick = remaining.pop()
            else:
                pointer = int(rr_ptr_np[out_id])
                best = 0
                best_rank = modulus
                for i, member in enumerate(remaining):
                    rank = (ordinal_l[cand_l[member]] - pointer) % modulus
                    if rank < best_rank:
                        best_rank = rank
                        best = i
                pick = remaining.pop(best)
            gid = cand_l[pick]
            rr_ptr_np[out_id] = (ordinal_l[gid] + 1) % modulus
            self._eject_vec(
                gid,
                fronts_l[pick] >> FLIT_INDEX_BITS,
                tails_l[pick],
                unlocked,
                out_to_group,
                pop_gids,
                ev_gid,
                ev_handle,
                ev_out,
                tail_gids,
                tail_handles,
            )
            served += 1
            budget -= 1
        if served:
            self._note_ejects(sample_gid, served, cycle)

    def _note_ejects(self, gid: int, count: int, cycle: int) -> None:
        """Ejection counters for one served group (lane-batched hook).

        Integer counters are order-insensitive, so one group-level update
        equals the scalar loop's per-flit increments exactly.
        """
        result = self.result
        result.flits_ejected_total += count
        if cycle >= self.config.warmup_cycles:
            result.flits_ejected_measured += count
        self.last_progress_cycle = cycle

    def _eject_vec(
        self,
        gid: int,
        handle: int,
        is_tail: bool,
        unlocked: Dict[int, List[int]],
        out_to_group,
        pop_gids: List[int],
        ev_gid: List[int],
        ev_handle: List[int],
        ev_out: List[int],
        tail_gids: List[int],
        tail_handles: List[int],
    ) -> None:
        # Ring pop deferred to the bulk application in ``allocate_all``;
        # the ejecting VC's occupancy drop is visible to later groups via
        # ``occ_delta`` (updated by the caller).
        pop_gids.append(gid)
        self.occ_delta[gid] -= 1
        rev_vc_l = self.rev_vc_l
        upstream = rev_vc_l[gid]
        if upstream >= 0:
            group = out_to_group.get(self.rev_out_l[gid])
            if group is not None:
                entries = unlocked.get(group)
                if entries is None:
                    unlocked[group] = [upstream]
                else:
                    entries.append(upstream)
        if is_tail:
            self.alloc_l[gid] = -1
            self.vc_out[gid] = -1
            old_target = int(self.vc_tgt[gid])
            if old_target >= 0:  # pragma: no cover - ejection rows never claim
                rev_vc_l[old_target] = -1
                self.rev_out_l[old_target] = -1
                self.vc_tgt[gid] = -1
            self._free_vc(gid)
            tail_gids.append(gid)
            tail_handles.append(handle)
        # Energy and the per-packet ejected-flit count are recorded into
        # the event stream (``ev_out`` -1 marks an ejection) and applied
        # by ``_apply_epilogue``; tail delivery is replayed there too.
        ev_gid.append(gid)
        ev_handle.append(handle)
        ev_out.append(-1)

    # ------------------------------------------------------------------
    # The bulk per-cycle epilogue.
    # ------------------------------------------------------------------

    def _apply_epilogue(
        self,
        cycle: int,
        ev_gid: List[int],
        ev_handle: List[int],
        ev_out: List[int],
        send_target: List[int],
        send_flit: List[int],
        head_handles: List[int],
        tail_gids: List[int],
        tail_handles: List[int],
    ) -> None:
        """Apply everything this cycle's sends/ejects recorded, in bulk.

        Replaces the per-event Python tail of the old ``_send``/
        ``_eject_vec`` (arrivals-dict insert, busy-until write, two NumPy
        scalar energy RMWs, per-flit counters) with one pass of array
        operations, bit-identically:

        * the per-packet energy scatter is a single event-ordered
          ``np.add.at`` whose value stream interleaves two rounded
          additions per send (switch, then link) and one per eject —
          ``np.add.at`` applies duplicate indices sequentially, so a
          handle touched by several events this cycle accumulates in
          exactly the scalar order;
        * the energy-breakdown accumulators are replayed value by value
          (they are order-sensitive float sums), but as tight local loops
          instead of per-event attribute round trips;
        * delivered tails are replayed last — after the energy scatter,
          so ``record_delivery`` reads each packet's final energy, and in
          event order, so reply pid assignment and pool handle recycling
          match the scalar engine exactly.
        """
        pool = self.pool
        n_events = len(ev_handle)
        n_sends = len(send_target)
        out_arr = numpy.fromiter(ev_out, numpy.int64, n_events)
        handle_arr = numpy.fromiter(ev_handle, numpy.int64, n_events)
        send_mask = out_arr >= 0
        link_values: List[float] = []
        if n_sends:
            sent_outs = out_arr[send_mask]
            # Each output sends at most once per cycle: no duplicates.
            self.busy_until[sent_outs] = cycle + self.out_cpf[sent_outs]
            targets = numpy.fromiter(send_target, numpy.int64, n_sends)
            flits = numpy.fromiter(send_flit, numpy.int64, n_sends)
            latencies = self.out_latency[sent_outs]
            wheel_size = self.wheel_size
            distinct = numpy.unique(latencies)
            if distinct.size == 1:
                self._wheel_push(
                    (cycle + int(distinct[0])) % wheel_size, targets, flits
                )
            else:
                for latency in distinct.tolist():
                    chosen = latencies == latency
                    self._wheel_push(
                        (cycle + latency) % wheel_size,
                        targets[chosen],
                        flits[chosen],
                    )
            link_gather = self.out_energy[sent_outs]
            link_values = link_gather.tolist()
        # Interleaved per-event energy stream (see docstring).
        counts = numpy.where(send_mask, 2, 1)
        offsets = numpy.cumsum(counts) - counts
        slots = numpy.empty(n_events + n_sends, dtype=numpy.int64)
        values = numpy.empty(n_events + n_sends, dtype=numpy.float64)
        slots[offsets] = handle_arr
        values[offsets] = self.switch_energy_pj
        if n_sends:
            send_offsets = offsets[send_mask] + 1
            slots[send_offsets] = handle_arr[send_mask]
            values[send_offsets] = link_gather
        numpy.add.at(pool.energy_pj, slots, values)
        if n_sends != n_events:
            numpy.add.at(pool.flits_ejected, handle_arr[~send_mask], 1)
        if head_handles:
            # One head send per handle per cycle: indices are unique.
            pool.head_hop[
                numpy.fromiter(head_handles, numpy.int64, len(head_handles))
            ] += 1
        self._replay_breakdown(ev_gid, ev_out, link_values)
        if tail_handles:
            self._replay_tails(tail_gids, tail_handles, cycle)

    def _replay_breakdown(
        self, ev_gid: List[int], ev_out: List[int], link_values: List[float]
    ) -> None:
        """Sequential-rounding replay of the order-sensitive breakdown sums.

        ``switch_dynamic_pj`` receives one rounded addition of the same
        constant per event and ``link_pj`` one per send (the gathered
        float64 link energies round-trip exactly through ``tolist``), so
        replaying them in event order onto locals reproduces the scalar
        accumulation bit for bit.  Lane-batched runs override this to
        segment the replay per lane.
        """
        breakdown = self.breakdown
        switch_energy = self.switch_energy_pj
        accumulator = breakdown.switch_dynamic_pj
        for _ in range(len(ev_out)):
            accumulator += switch_energy
        breakdown.switch_dynamic_pj = accumulator
        accumulator = breakdown.link_pj
        for value in link_values:
            accumulator += value
        breakdown.link_pj = accumulator

    def _replay_tails(
        self, tail_gids: List[int], tail_handles: List[int], cycle: int
    ) -> None:
        """Delivery accounting for this cycle's tail ejections, in order.

        The per-event escape hatch of the batched ejection path: delivery
        recording and traffic callbacks (which may enqueue replies and
        grow the pool) stay per-packet Python, but they run once per
        *packet*, not once per flit.  Lane-batched runs override this to
        swap the acting lane per tail.
        """
        pool = self.pool
        result = self.result
        traffic = self.traffic
        for handle in tail_handles:
            pool.ejection_cycle[handle] = cycle
            result.packets_delivered += 1
            if bool(pool.measured[handle]):
                result.packets_delivered_measured += 1
                injection = int(pool.injection_cycle[handle])
                result.record_delivery(
                    cycle - int(pool.generation_cycle[handle]),
                    cycle - injection if injection >= 0 else None,
                    float(pool.energy_pj[handle]),
                    len(pool.route[handle]) - 1,
                )
            # Delivery callbacks may enqueue replies, which can grow the
            # pool and reallocate its arrays — hence no pool-array locals
            # survive across this call anywhere in the vector engine.
            for reply in traffic.on_packet_delivered(PacketView(pool, handle), cycle):
                self.enqueue_request(reply, cycle)
            pool.free(handle)

    # ------------------------------------------------------------------
    # Watchdog / accounting overrides (array-backed state).
    # ------------------------------------------------------------------

    def residual_flits(self) -> int:
        return int(self.vc_count.sum()) + self.wheel_pending

    def check_watchdog(self, cycle: int) -> None:
        if cycle - self.last_progress_cycle < self.config.watchdog_cycles:
            return
        in_flight = (
            bool(self.vc_count.any())
            or self.wheel_pending > 0
            or any(self.source_queues.values())
        )
        if not in_flight:
            self.last_progress_cycle = cycle
            return
        message = (
            f"no flit progress for {self.config.watchdog_cycles} cycles at cycle "
            f"{cycle} with traffic still in flight (possible deadlock)"
        )
        if self.config.raise_on_stall:
            raise SimulationStallError(message)
        self.stalled = True


# ----------------------------------------------------------------------
# Phases.
# ----------------------------------------------------------------------


class VectorArrivalPhase(Phase):
    """Batched flit ingestion into the SoA ring buffers."""

    name = "arrival"

    def run(self, cycle: int) -> None:
        self.state.process_arrivals(cycle)


class VectorInjectionPhase(Phase):
    """Array-state injection over the switches with source work."""

    name = "injection"

    def run(self, cycle: int) -> None:
        state: VectorKernelState = self.state
        tracker: InjectionTracker = state.scheduler
        for switch_id in sorted(tracker.active):
            state.inject_vec(switch_id, cycle)
            if not state.has_injection_work_vec(switch_id):
                tracker.active.discard(switch_id)


class VectorAllocationPhase(Phase):
    """Batched eligibility + per-output round-robin resolution."""

    name = "allocation"

    def run(self, cycle: int) -> None:
        self.state.allocate_all(cycle)


def vector_phases(state: VectorKernelState) -> List[Phase]:
    """The per-cycle pipeline of a vector-engine run.

    Generation is shared with the scalar kernel (traffic models are Python
    callbacks either way) and the fabric phase is structurally empty on the
    wired-only configurations the fast path covers.
    """
    return [
        VectorArrivalPhase(state),
        GenerationPhase(state),
        VectorInjectionPhase(state),
        FabricPhase(state),
        VectorAllocationPhase(state),
    ]
