"""Virtual-channel buffers.

Every switch port carries 8 virtual channels with a 16-flit buffer each
(Section IV).  A VC is owned by at most one packet at a time: the upstream
switch allocates it when it forwards the packet's head flit and the
ownership is released when the tail flit leaves the buffer, exactly as in
credit-based wormhole flow control.  Instead of mirroring credit counters at
the upstream switch, the simulator tracks ``in_flight`` reservations on the
downstream VC itself, which is equivalent and keeps the bookkeeping in one
place.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, TYPE_CHECKING

from .flit import Flit

if TYPE_CHECKING:  # pragma: no cover
    from .packet import Packet
    from .port import InputPort, OutputPort


class VirtualChannel:
    """One VC buffer of an input port."""

    __slots__ = (
        "port",
        "index",
        "ordinal",
        "capacity",
        "buffer",
        "in_flight",
        "allocated_packet_id",
        "current_output",
        "downstream_port",
        "downstream_switch",
        "source_packet",
        "source_flits_emitted",
    )

    def __init__(self, port: "InputPort", index: int, ordinal: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.port = port
        self.index = index
        #: Switch-wide unique ordinal used for round-robin arbitration.
        self.ordinal = ordinal
        self.capacity = capacity
        self.buffer: Deque[Flit] = deque()
        #: Flits sent towards this VC but not yet arrived (reserve buffer space).
        self.in_flight = 0
        #: Packet currently owning this VC (set at head allocation).
        self.allocated_packet_id: Optional[int] = None
        #: Output port the current packet takes out of this switch.
        self.current_output: Optional["OutputPort"] = None
        #: Input port at the next switch the current packet is heading to.
        self.downstream_port: Optional["InputPort"] = None
        #: Switch id of the next hop (needed for wireless ports whose
        #: destination differs per packet).
        self.downstream_switch: Optional[int] = None
        #: Injection state (local/source VCs only): packet being serialised
        #: into this VC and how many of its flits have been emitted.
        self.source_packet: Optional["Packet"] = None
        self.source_flits_emitted = 0

    # ------------------------------------------------------------------
    # Occupancy / flow control.
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Buffered plus in-flight flits (the space already spoken for)."""
        return len(self.buffer) + self.in_flight

    def has_space(self) -> bool:
        """Whether one more flit may be sent towards this VC."""
        return self.occupancy < self.capacity

    @property
    def is_free(self) -> bool:
        """Whether the VC can be allocated to a new packet."""
        return self.allocated_packet_id is None and self.occupancy == 0

    def reserve(self, packet_id: int, is_head: bool) -> None:
        """Reserve space for a flit that has just been sent towards this VC."""
        if not self.has_space():
            raise RuntimeError("reserve() called on a full virtual channel")
        if is_head:
            if self.allocated_packet_id is not None and self.allocated_packet_id != packet_id:
                raise RuntimeError(
                    f"VC already allocated to packet {self.allocated_packet_id}, "
                    f"cannot accept head of packet {packet_id}"
                )
            self.allocated_packet_id = packet_id
        elif self.allocated_packet_id != packet_id:
            raise RuntimeError(
                f"body flit of packet {packet_id} sent to VC owned by "
                f"{self.allocated_packet_id}"
            )
        self.in_flight += 1

    def deliver(self, flit: Flit) -> None:
        """A previously reserved flit arrives into the buffer."""
        if self.in_flight <= 0:
            raise RuntimeError("deliver() without a matching reserve()")
        self.in_flight -= 1
        self.buffer.append(flit)

    def front(self) -> Optional[Flit]:
        """The flit at the head of the buffer, or ``None`` if empty."""
        return self.buffer[0] if self.buffer else None

    def pop(self) -> Flit:
        """Remove and return the front flit, releasing state on a tail."""
        flit = self.buffer.popleft()
        if flit.is_tail:
            self.release()
        return flit

    def release(self) -> None:
        """Release ownership and per-packet routing state."""
        self.allocated_packet_id = None
        self.current_output = None
        self.downstream_port = None
        self.downstream_switch = None

    def reset_routing(self) -> None:
        """Clear cached routing decisions (used when reconfiguring)."""
        self.current_output = None
        self.downstream_port = None
        self.downstream_switch = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VC(port={self.port.key!r}, index={self.index}, "
            f"occ={self.occupancy}/{self.capacity}, "
            f"packet={self.allocated_packet_id})"
        )
