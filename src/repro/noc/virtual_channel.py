"""Virtual-channel buffers.

Every switch port carries 8 virtual channels with a 16-flit buffer each
(Section IV).  A VC is owned by at most one packet at a time: the upstream
switch allocates it when it forwards the packet's head flit and the
ownership is released when the tail flit leaves the buffer, exactly as in
credit-based wormhole flow control.  Instead of mirroring credit counters at
the upstream switch, the simulator tracks ``in_flight`` reservations on the
downstream VC itself, which is equivalent and keeps the bookkeeping in one
place.

The buffer is a fixed-capacity ring of flit handles (see
:mod:`repro.noc.pool`): a preallocated list of ``capacity`` slots plus a
``head`` cursor and a ``count``.  The simulation kernel inlines the ring
arithmetic directly (read ``buf[head]``, advance ``head``, bump ``count``)
so the per-flit hot path never crosses a method boundary; the methods on
this class are the readable spelling of the same operations, used by unit
tests and by cold paths (fault recovery, MAC planning).  The ring stores
whatever it is given — packed integer flit handles from the kernel, or
legacy :class:`~repro.noc.flit.Flit` objects from the unit tests — because
it never interprets the stored values except in :meth:`pop`'s tail check,
which only object flits need (the kernel performs its own pooled tail
arithmetic before touching the ring).
"""

from __future__ import annotations

from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .port import InputPort, OutputPort


class VirtualChannel:
    """One VC buffer of an input port."""

    __slots__ = (
        "port",
        "index",
        "ordinal",
        "capacity",
        "buf",
        "head",
        "count",
        "in_flight",
        "allocated_packet_id",
        "current_output",
        "downstream_port",
        "downstream_switch",
        "send_target",
        "source_packet",
        "source_flits_emitted",
        "gid",
    )

    def __init__(self, port: "InputPort", index: int, ordinal: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.port = port
        self.index = index
        #: Switch-wide unique ordinal used for round-robin arbitration.
        self.ordinal = ordinal
        self.capacity = capacity
        #: Fixed-capacity ring storage; ``buf[head]`` is the front flit,
        #: ``buf[(head + count - 1) % capacity]`` the most recent arrival.
        self.buf: List[object] = [None] * capacity
        self.head = 0
        self.count = 0
        #: Flits sent towards this VC but not yet arrived (reserve buffer space).
        self.in_flight = 0
        #: Packet id currently owning this VC (set at head allocation).
        self.allocated_packet_id: Optional[int] = None
        #: Output port the current packet takes out of this switch.
        self.current_output: Optional["OutputPort"] = None
        #: Input port at the next switch the current packet is heading to.
        self.downstream_port: Optional["InputPort"] = None
        #: Switch id of the next hop (needed for wireless ports whose
        #: destination differs per packet).
        self.downstream_switch: Optional[int] = None
        #: Downstream VC picked during the eligibility scan of the current
        #: allocation visit (kernel scratch; meaningless between visits).
        self.send_target: Optional["VirtualChannel"] = None
        #: Injection state (local/source VCs only): pool handle of the
        #: packet being serialised into this VC and how many of its flits
        #: have been emitted.
        self.source_packet: Optional[int] = None
        self.source_flits_emitted = 0
        #: Network-wide dense VC index assigned by the vector engine's
        #: state build (-1 until then); row index into its SoA arrays.
        self.gid = -1

    # ------------------------------------------------------------------
    # Occupancy / flow control.
    # ------------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Buffered plus in-flight flits (the space already spoken for)."""
        return self.count + self.in_flight

    def has_space(self) -> bool:
        """Whether one more flit may be sent towards this VC."""
        return self.count + self.in_flight < self.capacity

    @property
    def is_free(self) -> bool:
        """Whether the VC can be allocated to a new packet."""
        return self.allocated_packet_id is None and self.count == 0 and self.in_flight == 0

    @property
    def buffer(self) -> List[object]:
        """The buffered flits in FIFO order (a snapshot, not live storage).

        Cold-path/diagnostic accessor; the kernel reads the ring directly.
        """
        buf, head, capacity = self.buf, self.head, self.capacity
        return [buf[(head + i) % capacity] for i in range(self.count)]

    def reserve(self, packet_id: int, is_head: bool) -> None:
        """Reserve space for a flit that has just been sent towards this VC."""
        if self.count + self.in_flight >= self.capacity:
            raise RuntimeError("reserve() called on a full virtual channel")
        if is_head:
            if self.allocated_packet_id is not None and self.allocated_packet_id != packet_id:
                raise RuntimeError(
                    f"VC already allocated to packet {self.allocated_packet_id}, "
                    f"cannot accept head of packet {packet_id}"
                )
            self.allocated_packet_id = packet_id
        elif self.allocated_packet_id != packet_id:
            raise RuntimeError(
                f"body flit of packet {packet_id} sent to VC owned by "
                f"{self.allocated_packet_id}"
            )
        self.in_flight += 1

    def deliver(self, flit) -> None:
        """A previously reserved flit arrives into the buffer."""
        if self.in_flight <= 0:
            raise RuntimeError("deliver() without a matching reserve()")
        self.in_flight -= 1
        self.buf[(self.head + self.count) % self.capacity] = flit
        self.count += 1
        if self.count == 1:
            self.port.switch.occupied.add(self.ordinal)

    def front(self):
        """The flit at the head of the buffer, or ``None`` if empty."""
        return self.buf[self.head] if self.count else None

    def pop(self):
        """Remove and return the front flit, releasing state on a tail.

        Object-API spelling: the tail check reads ``flit.is_tail``, so it
        only works for :class:`~repro.noc.flit.Flit` objects.  The kernel
        inlines the ring pop and performs the tail arithmetic against the
        packet pool instead.
        """
        if not self.count:
            raise IndexError("pop from an empty virtual channel")
        head = self.head
        flit = self.buf[head]
        self.buf[head] = None
        self.head = (head + 1) % self.capacity
        self.count -= 1
        if not self.count:
            self.port.switch.occupied.discard(self.ordinal)
        if flit.is_tail:
            self.release()
        return flit

    def clear_buffer(self) -> int:
        """Drop every buffered flit (fault purge); returns how many."""
        dropped = self.count
        self.buf = [None] * self.capacity
        self.head = 0
        self.count = 0
        self.port.switch.occupied.discard(self.ordinal)
        return dropped

    def release(self) -> None:
        """Release ownership and per-packet routing state."""
        self.allocated_packet_id = None
        self.current_output = None
        self.downstream_port = None
        self.downstream_switch = None

    def reset_routing(self) -> None:
        """Clear cached routing decisions (used when reconfiguring)."""
        self.current_output = None
        self.downstream_port = None
        self.downstream_switch = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"VC(port={self.port.key!r}, index={self.index}, "
            f"occ={self.occupancy}/{self.capacity}, "
            f"packet={self.allocated_packet_id})"
        )
