"""Parallel execution: hashing, caching, worker pools, the task runner.

This package owns the orchestration machinery every execution surface
(the figure CLIs, the :mod:`repro.api` facade, the :mod:`repro.service`
sweep daemon) is built on:

* :mod:`repro.parallel.hashing` — canonical JSON serialisation and stable
  content hashes of task/configuration objects, used as cache keys.
* :mod:`repro.parallel.cache` — an atomic, JSON-file-per-entry result cache
  keyed by those hashes.
* :mod:`repro.parallel.executor` — ordered fan-out of independent tasks over
  a :class:`concurrent.futures.ProcessPoolExecutor` (or inline when
  ``jobs=1``), with progress callbacks.
* :mod:`repro.parallel.runner` — the simulation task model
  (:class:`~repro.parallel.runner.SimulationTask`) and the
  :class:`~repro.parallel.runner.ExperimentRunner` tying the three
  together (moved here from ``repro.experiments.runner``, which remains
  as a deprecation shim).
* :mod:`repro.parallel.checkpoints` — on-disk store of resumable kernel
  checkpoints keyed by task cache key, used by checkpointed executions.
"""

from .cache import ResultCache
from .checkpoints import CheckpointStore
from .executor import run_tasks
from .hashing import canonical_json, stable_hash, to_jsonable
from .runner import ExperimentRunner, SimulationTask

__all__ = [
    "CheckpointStore",
    "ExperimentRunner",
    "ResultCache",
    "SimulationTask",
    "canonical_json",
    "run_tasks",
    "stable_hash",
    "to_jsonable",
]
