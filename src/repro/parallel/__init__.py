"""Parallel-execution helpers: content hashing, result caching, worker pools.

This package contains the generic machinery the experiment orchestration
layer (``repro.experiments.runner``) is built on:

* :mod:`repro.parallel.hashing` — canonical JSON serialisation and stable
  content hashes of task/configuration objects, used as cache keys.
* :mod:`repro.parallel.cache` — an atomic, JSON-file-per-entry result cache
  keyed by those hashes.
* :mod:`repro.parallel.executor` — ordered fan-out of independent tasks over
  a :class:`concurrent.futures.ProcessPoolExecutor` (or inline when
  ``jobs=1``), with progress callbacks.

Nothing in here knows about simulations; the modules are reusable for any
deterministic, independently executable unit of work.
"""

from .cache import ResultCache
from .executor import run_tasks
from .hashing import canonical_json, stable_hash, to_jsonable

__all__ = [
    "ResultCache",
    "canonical_json",
    "run_tasks",
    "stable_hash",
    "to_jsonable",
]
