"""JSON-file result cache keyed by content hashes.

One cache entry is one file ``<key>.json`` under the cache directory, where
``key`` is the task's content hash (see :mod:`repro.parallel.hashing`).
Writes are atomic (temp file + ``os.replace``) so a cache shared between
concurrent runs never exposes half-written entries; corrupt or unreadable
entries are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union


class ResultCache:
    """Directory-backed cache of JSON payloads keyed by content hash."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """File that does / would hold the entry for ``key``."""
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"invalid cache key {key!r}")
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached payload for ``key``, or ``None`` on a miss.

        A corrupt or unreadable entry is reported as a miss so the caller
        simply recomputes (and overwrites) it.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError):
            return None
        return payload if isinstance(payload, dict) else None

    def put(self, key: str, payload: Dict[str, object]) -> None:
        """Atomically store ``payload`` under ``key``."""
        path = self.path_for(key)
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=str(self.directory),
            prefix=f".{key}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def keys(self) -> Iterator[str]:
        """Keys of every entry currently stored."""
        for path in sorted(self.directory.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
