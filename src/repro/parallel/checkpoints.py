"""On-disk store of resumable kernel checkpoints, keyed by task cache key.

The sweep service (and any :func:`repro.parallel.runner.execute_task` call
with checkpointing enabled) persists mid-run
:class:`~repro.noc.checkpoint.KernelCheckpoint` snapshots here, one file
per task at ``<directory>/<cache_key>.ckpt``.  Keying by the task's
content hash means a preempted or crashed attempt and its retry agree on
where to look without any coordination — the same property the result
cache builds on.  Files are written atomically and deleted when the task
completes, so a populated store is exactly the set of interrupted runs.

A corrupt or truncated file (e.g. the daemon was killed during an earlier
schema's run) reads as "no checkpoint": the task cold-starts and
overwrites it, never erroring out.  An engine-mismatched checkpoint, by
contrast, *does* raise on resume — that is a configuration error, not
damage (see :class:`~repro.noc.checkpoint.CheckpointEngineMismatchError`).
"""

from __future__ import annotations

from functools import partial
from pathlib import Path
from typing import Callable, List, Optional, Union

from ..noc.checkpoint import (
    CheckpointError,
    KernelCheckpoint,
    load_checkpoint,
    save_checkpoint,
)

__all__ = ["CheckpointStore"]

_SUFFIX = ".ckpt"


class CheckpointStore:
    """Directory of ``<cache_key>.ckpt`` checkpoint files."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)

    def path_for(self, key: str) -> Path:
        """Where the checkpoint of the task hashing to ``key`` lives."""
        return self.directory / f"{key}{_SUFFIX}"

    def save(self, key: str, checkpoint: KernelCheckpoint) -> None:
        """Persist ``checkpoint`` atomically (creating the directory)."""
        save_checkpoint(checkpoint, self.path_for(key))

    def sink_for(self, key: str) -> Callable[[KernelCheckpoint], None]:
        """A ``Simulator.checkpoint_sink`` writing to this store.

        Built on :func:`functools.partial` so the sink stays picklable —
        worker processes construct their own store, but a sink crossing a
        process boundary must not drag a closure along.
        """
        return partial(self.save, key)

    def load(self, key: str) -> Optional[KernelCheckpoint]:
        """The stored checkpoint for ``key``, or ``None``.

        Missing and corrupt files both read as ``None`` (cold start); see
        the module docstring for why corruption is not an error here.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            return load_checkpoint(path)
        except CheckpointError:
            return None

    def discard(self, key: str) -> None:
        """Delete the checkpoint for ``key`` if present (task finished)."""
        try:
            self.path_for(key).unlink()
        except FileNotFoundError:
            pass

    def keys(self) -> List[str]:
        """Cache keys of every stored (i.e. interrupted) checkpoint."""
        if not self.directory.is_dir():
            return []
        return sorted(p.stem for p in self.directory.glob(f"*{_SUFFIX}"))
