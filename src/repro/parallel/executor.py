"""Ordered fan-out of independent tasks over a process pool.

``run_tasks`` is the single execution primitive of the orchestration layer:
it applies a picklable function to every task, inline when ``jobs <= 1`` and
via :class:`concurrent.futures.ProcessPoolExecutor` otherwise, and returns
the results *in input order* regardless of completion order.  Because every
task is independent and deterministically seeded, the two execution modes
produce identical results — parallelism only changes wall-clock time.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Callable, List, Optional, Sequence, TypeVar

TaskT = TypeVar("TaskT")
ResultT = TypeVar("ResultT")

#: Signature of the optional progress callback:
#: ``(completed_count, total_count, task, result)``.
ProgressCallback = Callable[[int, int, Any, Any], None]


def run_tasks(
    function: Callable[[TaskT], ResultT],
    tasks: Sequence[TaskT],
    jobs: int = 1,
    progress: Optional[ProgressCallback] = None,
) -> List[ResultT]:
    """Apply ``function`` to every task, possibly in parallel.

    Parameters
    ----------
    function:
        A module-level (picklable) callable executed once per task.
    tasks:
        The independent units of work.
    jobs:
        Maximum worker processes.  ``jobs <= 1`` runs inline in this
        process (no pool, no pickling); higher values use a process pool
        with ``min(jobs, len(tasks))`` workers.
    progress:
        Optional callback invoked after each completion with
        ``(completed, total, task, result)``; called from this process in
        completion order.

    Returns
    -------
    list
        One result per task, in the same order as ``tasks``.
    """
    total = len(tasks)
    if total == 0:
        return []
    if jobs <= 1 or total == 1:
        results: List[ResultT] = []
        for index, task in enumerate(tasks):
            result = function(task)
            results.append(result)
            if progress is not None:
                progress(index + 1, total, task, result)
        return results

    workers = min(jobs, total)
    ordered: List[Optional[ResultT]] = [None] * total
    with ProcessPoolExecutor(max_workers=workers) as pool:
        future_to_index = {
            pool.submit(function, task): index for index, task in enumerate(tasks)
        }
        completed = 0
        pending = set(future_to_index)
        try:
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_to_index[future]
                    result = future.result()
                    ordered[index] = result
                    completed += 1
                    if progress is not None:
                        progress(completed, total, tasks[index], result)
        except BaseException:
            # Surface the failure immediately: drop every still-queued task
            # instead of letting the pool drain a possibly hours-long batch
            # before the exception reaches the caller.
            pool.shutdown(wait=True, cancel_futures=True)
            raise
    return ordered  # type: ignore[return-value]
