"""Canonical serialisation and stable content hashing.

The result cache keys every simulation task by a hash of its *content*
(system configuration, run length, traffic parameters, seed), so a task is
recognised as already-computed no matter which process, run or host produced
it.  For that to work the serialisation must be canonical: dataclasses are
flattened to sorted-key dictionaries, enums to their values, and the JSON is
emitted with a fixed key order and separators.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any, Mapping


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` to plain JSON-serialisable types.

    Handles dataclasses (by field), enums (by value), mappings, sequences
    and primitives.  Anything else falls back to ``repr`` so exotic values
    still hash stably within one code version.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return to_jsonable(obj.value)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        items = [to_jsonable(v) for v in obj]
        if isinstance(obj, (set, frozenset)):
            items.sort(key=repr)
        return items
    return repr(obj)


def canonical_json(obj: Any) -> str:
    """Canonical (sorted-key, fixed-separator) JSON text of ``obj``."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any, length: int = 20) -> str:
    """Stable hex digest of ``obj``'s canonical JSON.

    ``length`` hex characters of SHA-256 (default 20, i.e. 80 bits — ample
    for cache-key uniqueness while keeping file names short).
    """
    digest = hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()
    return digest[:length]
