"""Parallel experiment orchestration: tasks, caching, and the runner.

Every figure experiment decomposes into *independent, deterministically
seeded simulation tasks* — one cycle-accurate run of one system
configuration under one traffic setting and one fault scenario
(architecture × load point, architecture × application, or — for the fig7
resilience sweep — architecture × fault rate).  This module defines that task unit
(:class:`SimulationTask`), executes batches of tasks through
:func:`repro.parallel.executor.run_tasks` (inline or across a process
pool), and memoises each task's result as JSON in a
:class:`repro.parallel.cache.ResultCache` keyed by a content hash of the
full task description.

Guarantees:

* **Determinism** — a task's result depends only on its content (config,
  run length, traffic parameters, seed), never on scheduling.  Running with
  ``jobs=8`` therefore produces bit-identical figures to ``jobs=1``.
* **Incremental re-runs** — the cache key covers everything that affects
  the result, so re-running a figure (or upgrading fidelity, which changes
  run lengths and therefore keys) only simulates tasks not yet on disk.

The figure modules (``fig2_uniform`` … ``fig6_applications``) build their
task lists with :func:`sweep_tasks` / :func:`application_task`, execute
them in one batch via :class:`ExperimentRunner`, and reassemble sweeps with
:func:`assemble_sweep`.

This module is the execution layer behind the :mod:`repro.api` facade and
the sweep service (:mod:`repro.service`).  It historically lived at
``repro.experiments.runner``; that path remains as a deprecation shim.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, replace
from functools import partial
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.config import Architecture, SystemConfig
from ..core.framework import MultichipSimulation
from ..faults.scenarios import create_fault_plan, scenario_spec
from ..metrics.report import format_simulator_throughput, format_table
from ..metrics.saturation import LoadPointSummary, SweepSummary
from ..noc.engine import ENGINES, SimulationConfig, SimulationStallError
from ..noc.lanes import BatchIneligibleError, run_batched
from ..traffic.rng import derive_seed
from ..wireless.mac.registry import mac_spec
from .cache import ResultCache
from .checkpoints import CheckpointStore
from .executor import run_tasks
from .hashing import stable_hash

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExperimentRunner",
    "SimulationTask",
    "TASK_SCHEMA_VERSION",
    "application_task",
    "assemble_sweep",
    "execute_task",
    "execute_task_batch",
    "plan_batches",
    "replicated_tasks",
    "sweep_tasks",
    "task_simulator",
    "uniform_task",
]

#: Bump when the payload schema or simulation semantics change, so stale
#: cache entries from older code versions are never reused.
#: v3: fault-injection fields (``faults``, ``fault_rate``) joined the task
#: and the cached payload gained the resilience counters.
#: v4: the wireless MAC protocol override (``mac``) joined the task — the
#: experiment CLI's ``--mac`` flag and the fig8 MAC study sweep it — so a
#: task's cache key now pins the arbitration protocol explicitly.
#: v5: the declarative scenario layer (:mod:`repro.scenario`) compiles
#: specs into these same tasks; the bump fences off pre-scenario cache
#: entries so a spec run and its CLI-flag equivalent provably share
#: entries written under one schema.
#: v6: the execution engine (``--engine scalar|vector``) joined the runner.
#: The engine is deliberately *not* part of the task content or the cache
#: key: both engines are bit-identical by construction (pinned by the
#: golden-fingerprint parity matrix and the fuzz battery), so an entry
#: written by either engine serves both.  The bump only fences off entries
#: written before the engine axis existed, so every v6 entry is known to
#: be engine-agnostic.
TASK_SCHEMA_VERSION = 6

#: Default on-disk location of the per-task result cache (relative to the
#: working directory; see EXPERIMENTS.md).
DEFAULT_CACHE_DIR = ".repro-cache"


@dataclass(frozen=True)
class SimulationTask:
    """One independent, deterministically seeded simulation.

    ``kind`` selects the traffic model: ``"synthetic"`` runs one registered
    traffic pattern (``pattern``, see :mod:`repro.traffic.registry`; the
    default is uniform random traffic) at offered load ``load`` with the
    given memory-access fraction; ``"application"`` runs one PARSEC/SPLASH-2
    profile (``application``) scaled by ``rate_scale``.  The legacy kind
    name ``"uniform"`` is accepted as an alias of ``"synthetic"``.

    ``faults`` names a registered fault scenario
    (:mod:`repro.faults.scenarios`) applied to the run at severity
    ``fault_rate``; the fault plan's seed is derived from the task seed, so
    the injected faults are part of the task's deterministic content.  The
    default ``"none"`` runs the pristine fabric and is bit-identical to a
    pre-fault-subsystem task.

    ``mac`` overrides the wireless MAC protocol of the task's system
    configuration with any name from the MAC registry
    (:mod:`repro.wireless.mac.registry`); the empty default keeps the
    configuration's own protocol.  On wired architectures the override is
    inert (there is no wireless fabric to arbitrate) but still part of the
    cache key.  Instances are frozen (usable as dict keys) and picklable
    (shippable to worker processes).
    """

    kind: str
    config: SystemConfig
    cycles: int
    warmup_cycles: int
    seed: int
    memory_access_fraction: float = 0.2
    load: float = 0.0
    application: str = ""
    rate_scale: float = 1.0
    pattern: str = "uniform"
    faults: str = "none"
    fault_rate: float = 0.0
    mac: str = ""

    def __post_init__(self) -> None:
        if self.kind == "uniform":
            # Legacy alias from the schema-v1 task format.
            object.__setattr__(self, "kind", "synthetic")
        if self.kind not in ("synthetic", "application"):
            raise ValueError(f"unknown task kind {self.kind!r}")
        if self.kind == "synthetic":
            if self.load < 0:
                raise ValueError("synthetic tasks need a non-negative offered load")
            if not self.pattern:
                raise ValueError("synthetic tasks need a traffic pattern name")
        if self.kind == "application" and not self.application:
            raise ValueError("application tasks need an application name")
        scenario_spec(self.faults)  # raises UnknownScenarioError early
        if not 0.0 <= self.fault_rate <= 1.0:
            raise ValueError("fault_rate must be in [0, 1]")
        if self.mac:
            mac_spec(self.mac)  # raises UnknownMacError early

    @property
    def label(self) -> str:
        """Short human-readable description (used in progress output)."""
        if self.kind == "synthetic":
            detail = f"load={self.load:g} mem={self.memory_access_fraction:g}"
            if self.pattern != "uniform":
                detail = f"pattern={self.pattern} {detail}"
        else:
            detail = f"app={self.application}"
        if self.mac:
            detail = f"{detail} mac={self.mac}"
        if self.faults != "none":
            detail = f"{detail} faults={self.faults}@{self.fault_rate:g}"
        return f"{self.config.name} {detail}"

    def cache_key(self) -> str:
        """Stable content hash identifying this task's result.

        Covers the schema version, the full system configuration and every
        traffic/run-length/fault parameter, so any change that could change
        the simulation output changes the key.
        """
        return stable_hash(
            {
                "version": TASK_SCHEMA_VERSION,
                "kind": self.kind,
                "config": self.config,
                "cycles": self.cycles,
                "warmup_cycles": self.warmup_cycles,
                "seed": self.seed,
                "memory_access_fraction": self.memory_access_fraction,
                "load": self.load,
                "application": self.application,
                "rate_scale": self.rate_scale,
                "pattern": self.pattern,
                "faults": self.faults,
                "fault_rate": self.fault_rate,
                "mac": self.mac,
            }
        )

    def fault_plan_seed(self) -> int:
        """Seed of this task's fault plan, derived from the task seed."""
        return derive_seed(self.seed, "faults", self.faults, self.fault_rate)

    def with_seed(self, seed: int) -> "SimulationTask":
        """The same task with a different RNG seed."""
        return replace(self, seed=seed)

    def effective_config(self) -> SystemConfig:
        """The system configuration with the MAC override applied."""
        if not self.mac or self.config.network.wireless.mac == self.mac:
            return self.config
        return self.config.with_wireless(mac=self.mac)


def uniform_task(
    config: SystemConfig,
    fidelity,
    load: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> SimulationTask:
    """One synthetic-traffic task at one offered load.

    ``fidelity`` is any object with ``cycles``, ``warmup_cycles`` and
    ``seed`` attributes (normally a :class:`repro.experiments.common.Fidelity`).
    ``pattern`` selects any registered traffic pattern (default: uniform
    random traffic, the paper's synthetic workload); ``faults`` /
    ``fault_rate`` select a registered fault scenario and its severity;
    ``mac`` overrides the wireless MAC protocol by registered name.
    """
    return SimulationTask(
        kind="synthetic",
        config=config,
        cycles=fidelity.cycles,
        warmup_cycles=fidelity.warmup_cycles,
        seed=fidelity.seed if seed is None else seed,
        memory_access_fraction=memory_access_fraction,
        load=load,
        pattern=pattern,
        faults=faults,
        fault_rate=fault_rate,
        mac=mac,
    )


def application_task(
    config: SystemConfig,
    fidelity,
    application: str,
    rate_scale: Optional[float] = None,
    seed: Optional[int] = None,
    faults: str = "none",
    fault_rate: float = 0.0,
) -> SimulationTask:
    """One application-traffic (SynFull-substitute) task."""
    if rate_scale is None:
        rate_scale = getattr(fidelity, "application_rate_scale", 1.0)
    return SimulationTask(
        kind="application",
        config=config,
        cycles=fidelity.cycles,
        warmup_cycles=fidelity.warmup_cycles,
        seed=fidelity.seed if seed is None else seed,
        application=application,
        rate_scale=rate_scale,
        faults=faults,
        fault_rate=fault_rate,
    )


def sweep_tasks(
    config: SystemConfig,
    fidelity,
    memory_access_fraction: float = 0.2,
    loads: Optional[Sequence[float]] = None,
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: float = 0.0,
    mac: str = "",
) -> List[SimulationTask]:
    """The per-load-point tasks of one synthetic load sweep.

    Each load point is an independent task (the serial sweep also seeds
    every point identically), so a sweep parallelises with no barrier.
    """
    selected = list(loads) if loads is not None else list(fidelity.load_points)
    return [
        uniform_task(
            config,
            fidelity,
            load=load,
            memory_access_fraction=memory_access_fraction,
            pattern=pattern,
            faults=faults,
            fault_rate=fault_rate,
            mac=mac,
        )
        for load in selected
    ]


def replicated_tasks(task: SimulationTask, replicas: int) -> List[SimulationTask]:
    """Seed-decorrelated copies of one task (for confidence intervals).

    Replica ``0`` is the task itself; replica ``i > 0`` derives its seed
    from the task's seed and the replica index via
    :func:`repro.traffic.rng.derive_seed`, so the set is deterministic and
    order-independent.
    """
    if replicas <= 0:
        raise ValueError("replicas must be positive")
    return [task] + [
        task.with_seed(derive_seed(task.seed, "replica", index))
        for index in range(1, replicas)
    ]


def task_simulator(
    task: SimulationTask, profile: bool = False, engine: str = "scalar"
):
    """Build (but do not run) the fully wired simulator of one task.

    The single construction path behind :func:`execute_task`: the system
    is built from the task's effective configuration, the fault plan (if
    any) is derived from the task seed, and the traffic model is resolved
    through the traffic registry — exactly as a figure run would.  Exposed
    so the scenario fuzzer battery can attach instrumentation (the MAC
    grant-exclusivity probe) via ``Simulator.instrument`` and still run
    bit-identically to the production path.  ``engine`` selects the kernel
    execution path (``"scalar"`` or ``"vector"``); results are identical
    either way, which is why it is not part of the task itself.
    """
    simulation = MultichipSimulation.from_config(
        task.effective_config(),
        SimulationConfig(
            cycles=task.cycles,
            warmup_cycles=task.warmup_cycles,
            profile_phases=profile,
            engine=engine,
        ),
    )
    fault_plan = None
    if task.faults != "none":
        fault_plan = create_fault_plan(
            task.faults,
            simulation.system.topology,
            fault_rate=task.fault_rate,
            seed=task.fault_plan_seed(),
            cycles=task.cycles,
        )
    if task.kind == "synthetic":
        traffic = simulation.pattern_traffic(
            task.pattern,
            injection_rate=task.load,
            memory_access_fraction=task.memory_access_fraction,
            seed=task.seed,
        )
    else:
        traffic = simulation.application_traffic(
            task.application, rate_scale=task.rate_scale, seed=task.seed
        )
    return simulation.simulator_for(traffic, fault_plan=fault_plan)


def execute_task(
    task: SimulationTask,
    profile: bool = False,
    engine: str = "scalar",
    checkpoint_every: int = 0,
    checkpoint_dir: str = "",
) -> Dict[str, object]:
    """Run one task and return its JSON-serialisable result payload.

    This is the function shipped to worker processes; it rebuilds the
    system from the task's configuration, runs the cycle-accurate
    simulator, and summarises the run as a
    :class:`repro.metrics.saturation.LoadPointSummary` dict.  With
    ``profile`` set the kernel times each phase and the payload carries a
    ``phase_seconds`` entry (the CLI's ``--profile`` table; profiled runs
    bypass the result cache, so the timings always come from real work).

    With both ``checkpoint_every`` and ``checkpoint_dir`` set, the run
    writes a resumable kernel checkpoint to
    ``<checkpoint_dir>/<cache_key>.ckpt`` every N cycles, resumes from an
    existing checkpoint if one is found (a preempted or crashed earlier
    attempt), and deletes the file on completion.  Resumed results are
    bit-identical to uninterrupted ones (``tests/test_checkpoint.py``);
    the knobs are execution-level and never part of the cache key.
    """
    simulator = task_simulator(task, profile=profile, engine=engine)
    store: Optional[CheckpointStore] = None
    checkpoint = None
    key = ""
    if checkpoint_dir and checkpoint_every > 0:
        store = CheckpointStore(checkpoint_dir)
        key = task.cache_key()
        simulator.simulation_config = replace(
            simulator.simulation_config, checkpoint_every_cycles=checkpoint_every
        )
        simulator.checkpoint_sink = store.sink_for(key)
        checkpoint = store.load(key)
    result = simulator.run(resume_from=checkpoint)
    if store is not None:
        store.discard(key)
    if task.kind == "synthetic":
        offered = task.load
    else:
        offered = result.offered_load_packets_per_core_per_cycle
    payload = LoadPointSummary.from_result(offered, result).as_dict()
    if profile:
        # Extra key; LoadPointSummary.from_dict ignores unknown fields.
        payload["phase_seconds"] = dict(result.phase_seconds)
    return payload


def _execute_task_profiled(task: SimulationTask) -> Dict[str, object]:
    """Module-level (picklable) profiling variant of :func:`execute_task`."""
    return execute_task(task, profile=True)


# ----------------------------------------------------------------------
# Lane batching: grouping compatible tasks into one fused vector run.
# ----------------------------------------------------------------------


def _task_batchable(task: SimulationTask) -> bool:
    """Whether a task can ride a lane-batched vector run.

    Mirrors the kernel's ``vector_active`` gate at the task level: wired
    (no wireless fabric to arbitrate) and fault-free.  Everything else —
    pattern, load, seed, run length — may differ freely between lanes.
    """
    return (
        task.faults == "none"
        and task.effective_config().architecture is not Architecture.WIRELESS
    )


def plan_batches(
    tasks: Sequence[SimulationTask], lanes: int
) -> List[List[SimulationTask]]:
    """Group pending tasks into lane batches of up to ``lanes`` tasks.

    Tasks sharing one effective system configuration (hence one topology
    and network configuration) are bucketed together, in input order, and
    every full bucket becomes one batch; unbatchable tasks (wireless,
    faulted) and leftovers become singleton or short batches.  With
    ``lanes <= 1`` every task is its own batch — the planner is then a
    structural no-op and execution is exactly the unbatched path.
    """
    if lanes <= 1:
        return [[task] for task in tasks]
    batches: List[List[SimulationTask]] = []
    buckets: Dict[SystemConfig, List[SimulationTask]] = {}
    for task in tasks:
        if not _task_batchable(task):
            batches.append([task])
            continue
        key = task.effective_config()
        bucket = buckets.setdefault(key, [])
        bucket.append(task)
        if len(bucket) >= lanes:
            batches.append(bucket)
            buckets[key] = []
    for bucket in buckets.values():
        if bucket:
            batches.append(bucket)
    return batches


def execute_task_batch(
    tasks: Sequence[SimulationTask],
    profile: bool = False,
    engine: str = "scalar",
    checkpoint_every: int = 0,
    checkpoint_dir: str = "",
) -> List[Dict[str, object]]:
    """Run one planned batch of tasks; returns payloads in task order.

    Multi-task batches under the vector engine are fused into one
    lane-batched cycle loop (:func:`repro.noc.lanes.run_batched`); every
    other shape — singletons, the scalar engine, profiling, checkpointing
    — executes each task through :func:`execute_task`, so a one-task batch
    is behaviourally identical to the unbatched runner (including the
    checkpoint/resume path).  An ineligible or stalling batch falls back
    to solo execution: a genuinely stalling task then re-raises from its
    own solo run, exactly as it would have unbatched.
    """
    tasks = list(tasks)
    solo = (
        len(tasks) == 1
        or profile
        or engine != "vector"
        or (checkpoint_every > 0 and bool(checkpoint_dir))
    )
    if not solo:
        simulators = [task_simulator(task, engine="vector") for task in tasks]
        try:
            results = run_batched(simulators)
        except (BatchIneligibleError, SimulationStallError):
            solo = True
        else:
            payloads = []
            for task, result in zip(tasks, results):
                if task.kind == "synthetic":
                    offered = task.load
                else:
                    offered = result.offered_load_packets_per_core_per_cycle
                payloads.append(LoadPointSummary.from_result(offered, result).as_dict())
            return payloads
    return [
        execute_task(task, profile, engine, checkpoint_every, checkpoint_dir)
        for task in tasks
    ]


def _batch_executor(
    profile: bool, engine: str, checkpoint_every: int = 0, checkpoint_dir: str = ""
):
    """A picklable ``batch -> payloads`` callable for the worker pool."""
    return partial(
        execute_task_batch,
        profile=profile,
        engine=engine,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
    )


def _task_executor(
    profile: bool, engine: str, checkpoint_every: int = 0, checkpoint_dir: str = ""
):
    """A picklable ``task -> payload`` callable for the worker pool.

    ``functools.partial`` over the module-level :func:`execute_task` stays
    picklable (the partial ships the function by reference plus plain
    keyword values), which is what lets the runner's ``engine`` and
    checkpoint knobs reach worker processes without joining the task
    objects themselves.
    """
    return partial(
        execute_task,
        profile=profile,
        engine=engine,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
    )


def assemble_sweep(
    results: Mapping[SimulationTask, LoadPointSummary],
    tasks: Sequence[SimulationTask],
) -> SweepSummary:
    """Reassemble one sweep from the runner's per-task results."""
    return SweepSummary(points=[results[task] for task in tasks])


class ExperimentRunner:
    """Executes batches of simulation tasks with caching and parallelism.

    Parameters
    ----------
    jobs:
        Maximum worker processes; ``1`` (the default) runs everything
        inline.  Results are bit-identical at any value.
    cache_dir:
        Directory of the per-task JSON result cache; ``None`` disables
        caching entirely.
    use_cache:
        Master switch for the cache (the CLI's ``--no-cache``); when
        ``False`` the cache is neither read nor written.
    show_progress:
        When ``True``, prints a one-line progress update to stderr after
        each task completes.

    The counters ``cache_hits``, ``cache_misses`` and ``tasks_executed``
    accumulate across :meth:`run` calls and back the CLI's summary line,
    as do ``wall_clock_seconds`` and ``simulated_cycles`` (the simulator
    self-throughput report; orchestration-side, so cached and parallel
    results stay bit-identical to serial ones).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        show_progress: bool = False,
        profile: bool = False,
        engine: str = "scalar",
        checkpoint_every_cycles: int = 0,
        checkpoint_dir: Optional[str] = None,
        batch_lanes: int = 1,
    ) -> None:
        self.jobs = max(1, int(jobs))
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {sorted(ENGINES)}"
            )
        #: Lane count for batched multi-task co-simulation (the CLI's
        #: ``--batch-lanes``): under the vector engine, up to this many
        #: compatible pending tasks fuse into one vector cycle loop (see
        #: :mod:`repro.noc.lanes`).  ``1`` disables batching.  Results and
        #: cache entries are bit-identical at any value — batching is
        #: invisible to the cache, dedupe and figures.
        self.batch_lanes = max(1, int(batch_lanes))
        #: Kernel execution path for every task this runner simulates (the
        #: CLI's ``--engine``).  Results are bit-identical across engines,
        #: so the cache is shared: a vector run reads and writes the same
        #: entries a scalar run would.
        self.engine = engine
        #: Per-phase kernel profiling (the CLI's ``--profile``): every task
        #: runs with phase timing enabled and the per-task timings are
        #: accumulated into :attr:`phase_seconds`.  Profiling bypasses the
        #: result cache in both directions — cached payloads carry no
        #: timings, and timed payloads must come from real simulation work.
        self.profile = profile
        self.cache: Optional[ResultCache] = (
            ResultCache(cache_dir) if (cache_dir and use_cache and not profile) else None
        )
        #: Checkpoint/restore knobs, forwarded to every
        #: :func:`execute_task` call (the sweep service's preemption and
        #: crash-recovery path; see :mod:`repro.parallel.checkpoints`).
        #: Both must be set for checkpointing to engage.
        self.checkpoint_every_cycles = max(0, int(checkpoint_every_cycles))
        self.checkpoint_dir = checkpoint_dir or ""
        self.show_progress = show_progress
        self.cache_hits = 0
        self.cache_misses = 0
        self.tasks_executed = 0
        self.wall_clock_seconds = 0.0
        self.simulated_cycles = 0
        self.phase_seconds: Dict[str, float] = {}
        #: Tasks that requested the vector engine but executed on the
        #: scalar phases (wireless fabric or fault plan).  Backs the
        #: summary note that makes the fallback visible instead of silent.
        self.vector_fallbacks = 0

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------

    def run(
        self, tasks: Sequence[SimulationTask]
    ) -> Dict[SimulationTask, LoadPointSummary]:
        """Execute every distinct task and return task → result summary.

        Cached tasks are served from disk; the rest are executed (in
        parallel when ``jobs > 1``) and written back to the cache.
        Duplicate tasks in ``tasks`` are executed once.
        """
        unique: List[SimulationTask] = []
        seen = set()
        for task in tasks:
            if task not in seen:
                seen.add(task)
                unique.append(task)

        results: Dict[SimulationTask, LoadPointSummary] = {}
        pending: List[SimulationTask] = []
        for task in unique:
            summary = self._cached_summary(task)
            if summary is not None:
                results[task] = summary
                self.cache_hits += 1
            else:
                pending.append(task)
        self.cache_misses += len(pending)

        if self.show_progress and unique:
            self._progress_line(
                0, len(pending), f"{len(unique)} tasks, {len(unique) - len(pending)} cached"
            )

        # Lane batching engages only for the fused-eligible execution shape;
        # everywhere else the plan degenerates to singletons and execution
        # is exactly the unbatched path.  Cache keys, dedupe and the result
        # mapping are per *task* in both shapes — batching stays invisible.
        lanes = self.batch_lanes
        if (
            self.engine != "vector"
            or self.profile
            or (self.checkpoint_every_cycles and self.checkpoint_dir)
        ):
            lanes = 1
        batches = plan_batches(pending, lanes)

        started = time.perf_counter()
        payload_lists = run_tasks(
            _batch_executor(
                self.profile,
                self.engine,
                checkpoint_every=self.checkpoint_every_cycles,
                checkpoint_dir=self.checkpoint_dir,
            ),
            batches,
            jobs=self.jobs,
            progress=self._on_batch_done if self.show_progress else None,
        )
        if pending:
            self.wall_clock_seconds += time.perf_counter() - started
            self.simulated_cycles += sum(task.cycles for task in pending)
        for batch, payloads in zip(batches, payload_lists):
            for task, payload in zip(batch, payloads):
                for name, seconds in payload.get("phase_seconds", {}).items():
                    self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
                if self.engine == "vector" and payload.get("engine_used") == "scalar":
                    self.vector_fallbacks += 1
                if self.cache is not None:
                    self.cache.put(
                        task.cache_key(),
                        {
                            "version": TASK_SCHEMA_VERSION,
                            "label": task.label,
                            "result": payload,
                        },
                    )
                results[task] = LoadPointSummary.from_dict(payload)
        self.tasks_executed += len(pending)
        return results

    def _cached_summary(self, task: SimulationTask) -> Optional[LoadPointSummary]:
        """The cached result of ``task``, or ``None`` on any kind of miss.

        A wrong-shaped entry (hand-edited file, schema drift) is a miss —
        the task is simply recomputed and the entry overwritten — never an
        error that aborts the experiment.
        """
        if self.cache is None:
            return None
        payload = self.cache.get(task.cache_key())
        if not payload or not isinstance(payload.get("result"), dict):
            return None
        try:
            return LoadPointSummary.from_dict(payload["result"])
        except (TypeError, ValueError):
            return None

    def run_sweep(
        self,
        config: SystemConfig,
        fidelity,
        memory_access_fraction: float = 0.2,
        loads: Optional[Sequence[float]] = None,
        pattern: str = "uniform",
    ) -> SweepSummary:
        """Convenience: run one architecture's synthetic load sweep."""
        tasks = sweep_tasks(
            config,
            fidelity,
            memory_access_fraction=memory_access_fraction,
            loads=loads,
            pattern=pattern,
        )
        return assemble_sweep(self.run(tasks), tasks)

    def run_sweep_groups(
        self, groups: Mapping[object, Sequence[SimulationTask]]
    ) -> Dict[object, SweepSummary]:
        """Run several task groups as one batch and reassemble each sweep.

        ``groups`` maps an arbitrary key (architecture, disintegration
        label, memory fraction, …) to that group's sweep tasks.  All groups
        execute as a single flat batch — so parallelism spans the whole
        figure, not one sweep at a time — and each key gets its own
        :class:`SweepSummary` back.
        """
        results = self.run([task for tasks in groups.values() for task in tasks])
        return {
            key: assemble_sweep(results, tasks) for key, tasks in groups.items()
        }

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def summary_line(self) -> str:
        """One-line execution summary for CLI output."""
        line = (
            f"{self.tasks_executed} task(s) simulated, "
            f"{self.cache_hits} served from cache "
            f"(jobs={self.jobs}, cache={'on' if self.cache is not None else 'off'})"
        )
        throughput = self.throughput_line()
        if throughput:
            line = f"{line}\n[runner] {throughput}"
        if self.vector_fallbacks:
            line = (
                f"{line}\n[runner] {self.vector_fallbacks} task(s) requested the "
                "vector engine but ran on the scalar phases "
                "(wireless fabric or fault plan; results are bit-identical)"
            )
        return line

    def phase_report(self) -> str:
        """Aggregated per-phase wall-clock table of the profiled tasks.

        Seconds are summed over every executed task (across worker
        processes when ``jobs > 1``), so the share column attributes the
        simulation cost to kernel phases regardless of parallelism.
        """
        if not self.phase_seconds:
            return "no phase timings recorded (run with profiling enabled)"
        total = sum(self.phase_seconds.values())
        rows = []
        for name, seconds in sorted(self.phase_seconds.items(), key=lambda item: -item[1]):
            share = seconds / total if total > 0 else 0.0
            rows.append([name, f"{seconds:.3f}", f"{share:.1%}"])
        rows.append(["total", f"{total:.3f}", "100.0%"])
        return format_table(["Kernel phase", "seconds", "share"], rows)

    def throughput_line(self) -> Optional[str]:
        """Simulator self-throughput over the executed (uncached) tasks.

        Cycles are summed across all tasks while the wall clock is the
        batch interval, so with ``jobs > 1`` this is *aggregate* (all
        workers combined) throughput — the line says so, to keep it from
        reading as a per-kernel speedup.
        """
        if self.wall_clock_seconds <= 0 or not self.simulated_cycles:
            return None
        line = format_simulator_throughput(
            self.simulated_cycles, self.wall_clock_seconds, tasks=self.tasks_executed
        )
        if self.jobs > 1:
            line += f" [aggregate across {self.jobs} workers]"
        return line

    def _on_task_done(self, done: int, total: int, task: SimulationTask, _result) -> None:
        self._progress_line(done, total, task.label)

    def _on_batch_done(
        self, done: int, total: int, batch: Sequence[SimulationTask], _result
    ) -> None:
        label = batch[0].label
        if len(batch) > 1:
            label = f"{label} [+{len(batch) - 1} batched lane(s)]"
        self._progress_line(done, total, label)

    @staticmethod
    def _progress_line(done: int, total: int, detail: str) -> None:
        print(f"[runner] {done}/{total} {detail}", file=sys.stderr, flush=True)
