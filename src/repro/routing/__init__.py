"""Routing algorithms for the multichip interconnection framework.

Provides the default Dijkstra shortest-path router with XY-canonicalised
intra-chip segments, the literal shortest-path-tree router described in the
paper, destination-based table routing, and forwarding-table materialisation
with consistency checks.
"""

from .base import DEFAULT_LINK_WEIGHTS, BaseRouter, RoutingError
from .dijkstra import ShortestPathForest, all_pairs_distance
from .forwarding_table import ForwardingTable, TableRouter
from .router import MinimalHopRouter, ShortestPathRouter
from .tree import SpanningTreeRouter
from .validation import (
    find_channel_dependency_cycle,
    link_kinds_on_route,
    routes_are_deadlock_free,
    validate_route,
    wireless_hop_count,
)
from .xy import RegionGridIndex, is_xy_ordered, manhattan_distance, xy_path

__all__ = [
    "DEFAULT_LINK_WEIGHTS",
    "BaseRouter",
    "ForwardingTable",
    "MinimalHopRouter",
    "RegionGridIndex",
    "RoutingError",
    "ShortestPathForest",
    "ShortestPathRouter",
    "SpanningTreeRouter",
    "TableRouter",
    "all_pairs_distance",
    "find_channel_dependency_cycle",
    "is_xy_ordered",
    "link_kinds_on_route",
    "routes_are_deadlock_free",
    "manhattan_distance",
    "validate_route",
    "wireless_hop_count",
    "xy_path",
]
