"""Router interface and link cost model.

Routing in the paper is "a forwarding-table based routing algorithm over
pre-computed shortest paths determined by Dijkstra's algorithm for both
inter-chip and intra-chip data" (Section III-C).  All routers in this
subpackage pre-compute switch-level routes on the topology graph; the
simulator then source-routes each packet along the returned switch sequence.

The cost of a hop depends on the physical link implementing it, so paths
naturally avoid slow serial I/O when a faster alternative exists and only
take the wireless shortcut when it actually reduces the end-to-end latency —
"even intra-chip traffic uses the wireless links if it reduces the path
length according to the shortest path routing" (Section IV-C).
"""

from __future__ import annotations

import abc
from typing import Dict, List, Tuple

from ..topology.graph import LinkKind, LinkSpec, TopologyGraph


#: Per-hop cost (roughly: cycles a head flit needs to cross the link plus the
#: downstream switch) used as Dijkstra edge weights.
DEFAULT_LINK_WEIGHTS: Dict[LinkKind, float] = {
    LinkKind.MESH: 1.0,
    LinkKind.INTERPOSER: 2.0,
    LinkKind.WIDE_IO: 2.0,
    LinkKind.SERIAL_IO: 6.0,
    # A wireless hop is cheap in latency but occupies the shared channel, so
    # its routing cost is set above the raw hop latency: intra-chip traffic
    # only takes the wireless shortcut when it saves several mesh hops.
    LinkKind.WIRELESS: 4.0,
    LinkKind.TSV: 1.0,
}


class RoutingError(ValueError):
    """Raised when a route cannot be computed or is invalid."""


class BaseRouter(abc.ABC):
    """Common behaviour of all routers: caching and route metrics."""

    def __init__(
        self,
        graph: TopologyGraph,
        link_weights: Dict[LinkKind, float] = None,
    ) -> None:
        self._graph = graph
        self._link_weights = dict(DEFAULT_LINK_WEIGHTS)
        if link_weights:
            self._link_weights.update(link_weights)
        self._link_penalties: Dict[int, float] = {}
        self._cache: Dict[Tuple[int, int], List[int]] = {}

    @property
    def graph(self) -> TopologyGraph:
        """Topology this router routes on."""
        return self._graph

    @property
    def link_weights(self) -> Dict[LinkKind, float]:
        """Per-link-kind hop costs used by this router."""
        return dict(self._link_weights)

    def link_weight(self, link: LinkSpec) -> float:
        """Cost of one hop over ``link`` (kind cost times any fault penalty)."""
        weight = self._link_weights[link.kind]
        penalty = self._link_penalties.get(link.link_id)
        if penalty is not None:
            weight *= penalty
        return weight

    def set_link_penalty(self, link_id: int, factor: float) -> None:
        """Multiply one link's routing cost (adaptive rerouting around
        degraded links).  Dropping to ``1.0`` removes the penalty.  Cached
        routes are invalidated so subsequent routes see the new costs.
        """
        if factor <= 0:
            raise RoutingError(f"link penalty must be positive, got {factor}")
        if factor == 1.0:
            self._link_penalties.pop(link_id, None)
        else:
            self._link_penalties[link_id] = factor
        self.clear_cache()

    def clear_link_penalties(self) -> None:
        """Remove every per-link penalty (end-of-run restore)."""
        if self._link_penalties:
            self._link_penalties.clear()
            self.clear_cache()

    def route(self, src_switch: int, dst_switch: int) -> List[int]:
        """Switch sequence from ``src_switch`` to ``dst_switch`` inclusive."""
        key = (src_switch, dst_switch)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._compute_route(src_switch, dst_switch)
            self._cache[key] = cached
        return list(cached)

    def route_weight(self, src_switch: int, dst_switch: int) -> float:
        """Total weighted cost of the route between two switches."""
        path = self.route(src_switch, dst_switch)
        total = 0.0
        for a, b in zip(path, path[1:]):
            link = self._graph.find_link(a, b)
            if link is None:
                raise RoutingError(f"route uses missing link ({a}, {b})")
            total += self.link_weight(link)
        return total

    def hop_count(self, src_switch: int, dst_switch: int) -> int:
        """Number of link traversals on the route."""
        return len(self.route(src_switch, dst_switch)) - 1

    def average_distance(self) -> float:
        """Average hop count over all ordered switch pairs.

        This is the *minimum average distance* metric the WI placement
        strategy optimises [15]; exposed for analysis and tests.
        """
        switches = [s.switch_id for s in self._graph.switches]
        total = 0
        pairs = 0
        for src in switches:
            for dst in switches:
                if src == dst:
                    continue
                total += self.hop_count(src, dst)
                pairs += 1
        return total / pairs if pairs else 0.0

    def clear_cache(self) -> None:
        """Drop all cached routes (used after topology mutation)."""
        self._cache.clear()

    @abc.abstractmethod
    def _compute_route(self, src_switch: int, dst_switch: int) -> List[int]:
        """Compute the switch sequence for one source/destination pair."""
