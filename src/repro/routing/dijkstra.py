"""Dijkstra shortest paths with deterministic, diverse tie-breaking.

The paper pre-computes shortest paths with Dijkstra's algorithm and notes
that when several equal-length trees exist one is "chosen randomly".  To keep
simulations reproducible while still spreading traffic over equal-cost
alternatives (important when several parallel interposer links cross the same
chip boundary), path reconstruction breaks ties with a deterministic hash of
(source, destination, switch) rather than a random draw.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from ..topology.graph import LinkSpec, TopologyGraph
from .base import RoutingError


def _stable_hash(*values: int) -> int:
    """Deterministic small hash of a tuple of ints (independent of PYTHONHASHSEED)."""
    result = 2166136261
    for value in values:
        result ^= (value + 0x9E3779B9) & 0xFFFFFFFF
        result = (result * 16777619) & 0xFFFFFFFF
    return result


class ShortestPathForest:
    """Single-source shortest paths with *all* equal-cost predecessors kept."""

    def __init__(
        self,
        graph: TopologyGraph,
        source: int,
        weight: Callable[[LinkSpec], float],
    ) -> None:
        self._graph = graph
        self._source = source
        self._distance: Dict[int, float] = {source: 0.0}
        self._predecessors: Dict[int, List[int]] = {source: []}
        self._run(weight)

    @property
    def source(self) -> int:
        """Source switch the forest is rooted at."""
        return self._source

    def _run(self, weight: Callable[[LinkSpec], float]) -> None:
        graph = self._graph
        distance = self._distance
        predecessors = self._predecessors
        visited = set()
        heap: List[Tuple[float, int]] = [(0.0, self._source)]
        while heap:
            dist, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            for neighbor, link in graph.neighbors(node):
                cost = weight(link)
                if cost < 0:
                    raise RoutingError(f"negative link weight on link {link.link_id}")
                candidate = dist + cost
                best = distance.get(neighbor)
                if best is None or candidate < best - 1e-12:
                    distance[neighbor] = candidate
                    predecessors[neighbor] = [node]
                    heapq.heappush(heap, (candidate, neighbor))
                elif abs(candidate - best) <= 1e-12 and node not in predecessors[neighbor]:
                    predecessors[neighbor].append(node)

    def distance_to(self, destination: int) -> float:
        """Weighted distance from the source to ``destination``."""
        try:
            return self._distance[destination]
        except KeyError:
            raise RoutingError(
                f"switch {destination} unreachable from {self._source}"
            ) from None

    def reachable(self, destination: int) -> bool:
        """Whether the destination is reachable from the source."""
        return destination in self._distance

    def path_to(self, destination: int, selector: Optional[int] = None) -> List[int]:
        """A shortest path from the source to ``destination``.

        ``selector`` seeds the tie-break among equal-cost predecessors so
        different (source, destination) pairs spread over different
        equal-cost alternatives while remaining deterministic.
        """
        if destination not in self._distance:
            raise RoutingError(
                f"switch {destination} unreachable from {self._source}"
            )
        seed = selector if selector is not None else destination
        path = [destination]
        node = destination
        while node != self._source:
            options = sorted(self._predecessors[node])
            if not options:
                raise RoutingError(
                    f"broken predecessor chain at switch {node} from {self._source}"
                )
            choice = options[_stable_hash(self._source, seed, node) % len(options)]
            path.append(choice)
            node = choice
            if len(path) > self._graph.num_switches + 1:
                raise RoutingError("predecessor chain contains a cycle")
        path.reverse()
        return path


def all_pairs_distance(
    graph: TopologyGraph, weight: Callable[[LinkSpec], float]
) -> Dict[int, Dict[int, float]]:
    """Weighted distance between every ordered pair of switches.

    Convenience helper for analysis (average distance, WI placement studies)
    and tests; O(V * (E log V)).
    """
    result: Dict[int, Dict[int, float]] = {}
    for switch in graph.switches:
        forest = ShortestPathForest(graph, switch.switch_id, weight)
        result[switch.switch_id] = {
            other.switch_id: forest.distance_to(other.switch_id)
            for other in graph.switches
            if forest.reachable(other.switch_id)
        }
    return result
