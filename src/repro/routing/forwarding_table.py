"""Forwarding tables derived from pre-computed routes.

The paper stresses that "the route computation overheads are greatly reduced
as the routing decisions are made locally based on the forwarding table only
for determining the next hop and is done only for the header flit".  This
module materialises that view: given any router, it builds a per-switch
table mapping destination switch to next hop, verifies that the tables are
*consistent* (following them hop by hop reproduces a loop-free path for
every pair), and reports their size so the hardware overhead of table-based
routing can be quoted.

Note that per-switch tables can only represent destination-based routing: if
the underlying router gives two sources different next hops at a shared
intermediate switch, the table keeps the first one and `consistent` routing
may deviate (while staying valid).  ``ForwardingTable.build`` therefore also
reports how many entries were overwritten, and the :class:`TableRouter` is
the strictly table-driven router the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..topology.graph import TopologyGraph
from .base import BaseRouter, RoutingError


@dataclass
class ForwardingTable:
    """Per-switch next-hop tables for every destination switch."""

    graph: TopologyGraph
    next_hop: Dict[int, Dict[int, int]] = field(default_factory=dict)
    conflicts: int = 0

    @classmethod
    def build(cls, router: BaseRouter) -> "ForwardingTable":
        """Populate tables by replaying every (source, destination) route."""
        graph = router.graph
        table = cls(graph=graph)
        switch_ids = [s.switch_id for s in graph.switches]
        for switch_id in switch_ids:
            table.next_hop[switch_id] = {}
        for src in switch_ids:
            for dst in switch_ids:
                if src == dst:
                    continue
                path = router.route(src, dst)
                for here, nxt in zip(path, path[1:]):
                    if here == dst:
                        break
                    existing = table.next_hop[here].get(dst)
                    if existing is None:
                        table.next_hop[here][dst] = nxt
                    elif existing != nxt:
                        table.conflicts += 1
        return table

    def lookup(self, switch_id: int, destination: int) -> int:
        """Next hop at ``switch_id`` for a packet heading to ``destination``."""
        if switch_id == destination:
            raise RoutingError("packet is already at its destination")
        try:
            return self.next_hop[switch_id][destination]
        except KeyError:
            raise RoutingError(
                f"switch {switch_id} has no table entry for destination {destination}"
            ) from None

    def walk(self, src: int, dst: int, max_hops: Optional[int] = None) -> List[int]:
        """Follow the tables hop by hop from ``src`` to ``dst``."""
        limit = max_hops if max_hops is not None else self.graph.num_switches + 1
        path = [src]
        here = src
        while here != dst:
            here = self.lookup(here, dst)
            path.append(here)
            if len(path) > limit:
                raise RoutingError(
                    f"forwarding tables loop between {src} and {dst}: {path[:8]}..."
                )
        return path

    def entries_per_switch(self) -> Dict[int, int]:
        """Number of table entries stored at each switch."""
        return {sid: len(rows) for sid, rows in self.next_hop.items()}

    def total_entries(self) -> int:
        """Total number of (destination -> next hop) entries in the system."""
        return sum(len(rows) for rows in self.next_hop.values())

    def validate(self) -> None:
        """Check that every pair can be routed by table walking without loops."""
        switch_ids = [s.switch_id for s in self.graph.switches]
        for src in switch_ids:
            for dst in switch_ids:
                if src == dst:
                    continue
                path = self.walk(src, dst)
                for a, b in zip(path, path[1:]):
                    if self.graph.find_link(a, b) is None:
                        raise RoutingError(
                            f"table route {src}->{dst} uses missing link ({a}, {b})"
                        )


class TableRouter(BaseRouter):
    """Strictly destination-based router driven by a forwarding table.

    Routes are destination-rooted shortest-path trees: for every destination
    a single tree is pre-computed (Dijkstra from the destination over the
    undirected topology), so all sources agree on the next hop at any shared
    switch — exactly the property a per-switch forwarding table needs.
    """

    def __init__(self, graph: TopologyGraph, link_weights=None) -> None:
        super().__init__(graph, link_weights)
        self._trees: Dict[int, "._DestinationTree"] = {}

    def _tree_for(self, destination: int):
        tree = self._trees.get(destination)
        if tree is None:
            from .dijkstra import ShortestPathForest

            forest = ShortestPathForest(self._graph, destination, self.link_weight)
            parent: Dict[int, Optional[int]] = {}
            for switch in self._graph.switches:
                sid = switch.switch_id
                if sid == destination:
                    parent[sid] = None
                    continue
                path = forest.path_to(sid, selector=destination)
                # path goes destination -> ... -> sid; the next hop of sid
                # towards the destination is the second-to-last element.
                parent[sid] = path[-2]
            tree = parent
            self._trees[destination] = tree
        return tree

    def next_hop(self, switch_id: int, destination: int) -> int:
        """Next hop towards ``destination`` from ``switch_id``."""
        if switch_id == destination:
            raise RoutingError("packet is already at its destination")
        tree = self._tree_for(destination)
        nxt = tree.get(switch_id)
        if nxt is None:
            raise RoutingError(
                f"switch {switch_id} cannot reach destination {destination}"
            )
        return nxt

    def _compute_route(self, src_switch: int, dst_switch: int) -> List[int]:
        if src_switch == dst_switch:
            return [src_switch]
        path = [src_switch]
        here = src_switch
        while here != dst_switch:
            here = self.next_hop(here, dst_switch)
            path.append(here)
            if len(path) > self._graph.num_switches + 1:
                raise RoutingError("destination tree contains a cycle")
        return path

    def clear_cache(self) -> None:
        """Drop cached routes and destination trees (after topology change)."""
        super().clear_cache()
        self._trees.clear()

    def to_forwarding_table(self) -> ForwardingTable:
        """Materialise the (conflict-free) forwarding table."""
        table = ForwardingTable.build(self)
        return table
