"""Default shortest-path router of the reproduction.

``ShortestPathRouter`` reproduces the routing scheme of Section III-C:
switch-level shortest paths are pre-computed with Dijkstra's algorithm over
the whole multichip topology (wired and wireless links together, weighted by
their per-hop cost), and packets are forwarded along those pre-computed
paths.  Two refinements keep the simulation well behaved:

* equal-cost alternatives (e.g. parallel interposer links between two chips)
  are chosen by a deterministic per-pair hash, spreading load without
  sacrificing reproducibility, and
* every maximal intra-region mesh segment of a path is rewritten into its
  canonical X-then-Y form of identical length, which makes the intra-chip
  portion dimension-ordered and hence free of cyclic channel dependencies.
"""

from __future__ import annotations

from typing import Dict, List

from ..topology.graph import LinkKind, TopologyGraph
from .base import BaseRouter, RoutingError
from .dijkstra import ShortestPathForest
from .xy import RegionGridIndex, xy_path


class ShortestPathRouter(BaseRouter):
    """Dijkstra shortest paths + XY canonicalisation of mesh segments."""

    def __init__(self, graph: TopologyGraph, link_weights=None, canonicalize_xy: bool = True) -> None:
        super().__init__(graph, link_weights)
        self._canonicalize_xy = canonicalize_xy
        self._forests: Dict[int, ShortestPathForest] = {}
        self._grid_index = RegionGridIndex(graph)

    @property
    def canonicalize_xy(self) -> bool:
        """Whether intra-region mesh segments are rewritten to XY order."""
        return self._canonicalize_xy

    def _forest(self, source: int) -> ShortestPathForest:
        forest = self._forests.get(source)
        if forest is None:
            forest = ShortestPathForest(self._graph, source, self.link_weight)
            self._forests[source] = forest
        return forest

    def _compute_route(self, src_switch: int, dst_switch: int) -> List[int]:
        if src_switch == dst_switch:
            return [src_switch]
        forest = self._forest(src_switch)
        path = forest.path_to(dst_switch, selector=dst_switch)
        if self._canonicalize_xy:
            path = self._canonicalize(path)
        return path

    def clear_cache(self) -> None:
        """Drop cached routes and shortest-path forests."""
        super().clear_cache()
        self._forests.clear()

    # ------------------------------------------------------------------
    # XY canonicalisation.
    # ------------------------------------------------------------------

    def _canonicalize(self, path: List[int]) -> List[int]:
        """Rewrite maximal same-region mesh runs into X-then-Y order."""
        graph = self._graph
        result: List[int] = [path[0]]
        run_start = 0
        index = 1
        while index < len(path):
            prev = path[index - 1]
            here = path[index]
            link = graph.find_link(prev, here)
            if link is None:
                raise RoutingError(f"route uses missing link ({prev}, {here})")
            same_region = (
                graph.switch(prev).region_id == graph.switch(here).region_id
            )
            if link.kind == LinkKind.MESH and same_region:
                index += 1
                continue
            # The mesh run path[run_start .. index-1] ends here; canonicalise
            # it, then emit the non-mesh hop verbatim.
            self._extend_with_run(result, path, run_start, index - 1)
            result.append(here)
            run_start = index
            index += 1
        self._extend_with_run(result, path, run_start, len(path) - 1)
        return result

    def _extend_with_run(
        self, result: List[int], path: List[int], start: int, end: int
    ) -> None:
        """Append the canonical form of ``path[start..end]`` (skipping its head).

        The canonical X-then-Y rewrite is only applied when every link it
        would use is in service; when fault injection has disabled a mesh
        link on the XY path, the Dijkstra-computed run — which already avoids
        disabled links — is kept verbatim.  On a healthy topology the rewrite
        always applies, so fault-free routes are unchanged.
        """
        if end <= start:
            return
        try:
            canonical = xy_path(self._graph, self._grid_index, path[start], path[end])
        except RoutingError:
            canonical = None
        if canonical is not None and all(
            self._graph.find_link(a, b) is not None
            for a, b in zip(canonical, canonical[1:])
        ):
            result.extend(canonical[1:])
        else:
            result.extend(path[start + 1 : end + 1])


class MinimalHopRouter(ShortestPathRouter):
    """Shortest paths counted in hops, ignoring per-link costs.

    Used by analyses that need the pure topological distance (e.g. the
    minimum-average-distance WI placement study) rather than the latency-
    weighted routes the simulator uses.
    """

    def __init__(self, graph: TopologyGraph, canonicalize_xy: bool = True) -> None:
        uniform = {kind: 1.0 for kind in LinkKind}
        super().__init__(graph, link_weights=uniform, canonicalize_xy=canonicalize_xy)
