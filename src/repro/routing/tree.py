"""Shortest-path-tree routing, exactly as described in the paper.

Section III-C: "Dijkstra's algorithm extracts a minimum spanning tree (MST)
which provides the shortest path between any pair of nodes in a graph. ...
the MST is chosen randomly. ... deadlock is avoided by transferring flits
along the shortest path routing tree extracted by Dijkstra's algorithm, as it
is inherently free of cyclic dependencies."

What Dijkstra actually extracts is a shortest-path tree (SPT) rooted at the
start node; routing every packet along tree edges is trivially deadlock-free
because a tree has no cycles, at the cost of concentrating traffic on the
tree links.  This router implements that literal scheme so the paper's
description can be evaluated and compared against the default
:class:`~repro.routing.router.ShortestPathRouter` (see the ablation
benchmarks).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..topology.graph import TopologyGraph
from .base import BaseRouter, RoutingError
from .dijkstra import ShortestPathForest


class SpanningTreeRouter(BaseRouter):
    """Routes every packet along a single shortest-path tree.

    Parameters
    ----------
    graph:
        Topology to route on.
    root:
        Switch the tree is rooted at.  The paper picks the start node
        "randomly"; the default picks the switch with the smallest id for
        reproducibility, and experiments can supply any other root.
    """

    def __init__(
        self,
        graph: TopologyGraph,
        link_weights=None,
        root: Optional[int] = None,
    ) -> None:
        super().__init__(graph, link_weights)
        switches = graph.switches
        if not switches:
            raise RoutingError("cannot build a tree router on an empty topology")
        self._root = root if root is not None else switches[0].switch_id
        forest = ShortestPathForest(graph, self._root, self.link_weight)
        self._parent: Dict[int, Optional[int]] = {self._root: None}
        self._depth: Dict[int, int] = {self._root: 0}
        for switch in switches:
            sid = switch.switch_id
            if sid == self._root:
                continue
            path = forest.path_to(sid, selector=0)
            self._parent[sid] = path[-2]
            self._depth[sid] = len(path) - 1

    @property
    def root(self) -> int:
        """Root switch of the routing tree."""
        return self._root

    def parent(self, switch_id: int) -> Optional[int]:
        """Parent of a switch in the routing tree (``None`` for the root)."""
        try:
            return self._parent[switch_id]
        except KeyError:
            raise RoutingError(f"switch {switch_id} is not part of the tree") from None

    def tree_edges(self) -> List[tuple]:
        """(child, parent) pairs of the routing tree."""
        return [(c, p) for c, p in self._parent.items() if p is not None]

    def _ancestors(self, switch_id: int) -> List[int]:
        chain = [switch_id]
        node = switch_id
        while self._parent[node] is not None:
            node = self._parent[node]
            chain.append(node)
        return chain

    def _compute_route(self, src_switch: int, dst_switch: int) -> List[int]:
        if src_switch == dst_switch:
            return [src_switch]
        up = self._ancestors(src_switch)
        down = self._ancestors(dst_switch)
        up_set = {node: i for i, node in enumerate(up)}
        # Walk the destination chain until it meets the source chain: that
        # node is the lowest common ancestor.
        meet_index_down = None
        for i, node in enumerate(down):
            if node in up_set:
                meet_index_down = i
                break
        if meet_index_down is None:
            raise RoutingError(
                f"no common ancestor for switches {src_switch} and {dst_switch}"
            )
        lca = down[meet_index_down]
        ascent = up[: up_set[lca] + 1]
        descent = down[:meet_index_down]
        return ascent + list(reversed(descent))
