"""Route validation helpers shared by tests and the simulator."""

from __future__ import annotations

from typing import List, Sequence

from ..topology.graph import LinkKind, TopologyGraph
from .base import RoutingError


def validate_route(graph: TopologyGraph, route: Sequence[int]) -> None:
    """Check that a switch sequence is a usable route.

    A valid route visits existing switches, uses an existing link for every
    consecutive pair, and never visits the same switch twice (wormhole
    source routing cannot express revisits).

    Raises
    ------
    RoutingError
        If any property is violated.
    """
    if not route:
        raise RoutingError("route is empty")
    seen = set()
    for switch_id in route:
        graph.switch(switch_id)  # raises TopologyError for unknown switches
        if switch_id in seen:
            raise RoutingError(f"route visits switch {switch_id} twice: {list(route)}")
        seen.add(switch_id)
    for a, b in zip(route, route[1:]):
        if graph.find_link(a, b) is None:
            raise RoutingError(f"route uses missing link ({a}, {b})")


def wireless_hop_count(graph: TopologyGraph, route: Sequence[int]) -> int:
    """Number of wireless hops on a route."""
    count = 0
    for a, b in zip(route, route[1:]):
        link = graph.find_link(a, b)
        if link is not None and link.kind == LinkKind.WIRELESS:
            count += 1
    return count


def link_kinds_on_route(graph: TopologyGraph, route: Sequence[int]) -> List[LinkKind]:
    """Ordered list of link kinds traversed by a route."""
    kinds = []
    for a, b in zip(route, route[1:]):
        link = graph.find_link(a, b)
        if link is None:
            raise RoutingError(f"route uses missing link ({a}, {b})")
        kinds.append(link.kind)
    return kinds
