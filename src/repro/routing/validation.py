"""Route validation helpers shared by tests and the simulator."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..topology.graph import LinkKind, TopologyGraph
from .base import RoutingError


def validate_route(graph: TopologyGraph, route: Sequence[int]) -> None:
    """Check that a switch sequence is a usable route.

    A valid route visits existing switches, uses an existing link for every
    consecutive pair, and never visits the same switch twice (wormhole
    source routing cannot express revisits).

    Raises
    ------
    RoutingError
        If any property is violated.
    """
    if not route:
        raise RoutingError("route is empty")
    seen = set()
    for switch_id in route:
        graph.switch(switch_id)  # raises TopologyError for unknown switches
        if switch_id in seen:
            raise RoutingError(f"route visits switch {switch_id} twice: {list(route)}")
        seen.add(switch_id)
    for a, b in zip(route, route[1:]):
        if graph.find_link(a, b) is None:
            raise RoutingError(f"route uses missing link ({a}, {b})")


def wireless_hop_count(graph: TopologyGraph, route: Sequence[int]) -> int:
    """Number of wireless hops on a route."""
    count = 0
    for a, b in zip(route, route[1:]):
        link = graph.find_link(a, b)
        if link is not None and link.kind == LinkKind.WIRELESS:
            count += 1
    return count


def link_kinds_on_route(graph: TopologyGraph, route: Sequence[int]) -> List[LinkKind]:
    """Ordered list of link kinds traversed by a route."""
    kinds = []
    for a, b in zip(route, route[1:]):
        link = graph.find_link(a, b)
        if link is None:
            raise RoutingError(f"route uses missing link ({a}, {b})")
        kinds.append(link.kind)
    return kinds


#: A directed channel: the (src switch, dst switch) direction of one link.
Channel = Tuple[int, int]


def find_channel_dependency_cycle(
    routes: Iterable[Sequence[int]],
) -> Optional[List[Channel]]:
    """A cyclic channel dependency among the given routes, or ``None``.

    Wormhole routing deadlocks exactly when the *channel dependency graph* —
    one node per directed link, one edge per consecutive hop pair some route
    uses — contains a cycle (Dally & Seitz).  This builds that graph from
    the route set and searches it with an iterative DFS; the returned value
    is the offending channel sequence (closed: first == last), so recovery
    code and tests can report precisely which dependency loop would deadlock.
    """
    dependencies: Dict[Channel, Set[Channel]] = {}
    for route in routes:
        for i in range(len(route) - 2):
            upstream: Channel = (route[i], route[i + 1])
            downstream: Channel = (route[i + 1], route[i + 2])
            dependencies.setdefault(upstream, set()).add(downstream)
            dependencies.setdefault(downstream, set())
    # Iterative DFS with colouring: 0 unvisited, 1 on stack, 2 done.
    colour: Dict[Channel, int] = {channel: 0 for channel in dependencies}
    for start in sorted(dependencies):
        if colour[start] != 0:
            continue
        stack: List[Tuple[Channel, Iterable[Channel]]] = [
            (start, iter(sorted(dependencies[start])))
        ]
        colour[start] = 1
        path = [start]
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                state = colour.get(child, 0)
                if state == 1:
                    cycle_start = path.index(child)
                    return path[cycle_start:] + [child]
                if state == 0:
                    colour[child] = 1
                    path.append(child)
                    stack.append((child, iter(sorted(dependencies[child]))))
                    advanced = True
                    break
            if not advanced:
                colour[node] = 2
                path.pop()
                stack.pop()
    return None


def routes_are_deadlock_free(routes: Iterable[Sequence[int]]) -> bool:
    """Whether the route set has an acyclic channel dependency graph."""
    return find_channel_dependency_cycle(routes) is None
