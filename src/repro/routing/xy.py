"""Dimension-ordered (XY) paths inside rectangular mesh regions.

Within a processing chip the topology is a full rectangular mesh, so any
minimal path can be rewritten as the canonical "X first, then Y" path of the
same length.  The simulator's default router uses this canonical form for
every intra-chip segment of a route: dimension-ordered routing inside a mesh
is provably free of cyclic channel dependencies, which (together with the
acyclic chip-level arrangement) keeps the multichip system deadlock-free
while preserving the shortest-path property of the Dijkstra computation.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..topology.graph import TopologyGraph
from .base import RoutingError


class RegionGridIndex:
    """Per-region map from global grid coordinates to switch ids."""

    def __init__(self, graph: TopologyGraph) -> None:
        self._by_region: Dict[int, Dict[Tuple[int, int], int]] = {}
        for switch in graph.switches:
            region = self._by_region.setdefault(switch.region_id, {})
            region[(switch.grid_x, switch.grid_y)] = switch.switch_id
        self._graph = graph

    def switch_at(self, region_id: int, grid: Tuple[int, int]) -> int:
        """Switch id at grid coordinates within a region."""
        try:
            return self._by_region[region_id][grid]
        except KeyError:
            raise RoutingError(
                f"no switch at grid {grid} in region {region_id}"
            ) from None

    def has_switch(self, region_id: int, grid: Tuple[int, int]) -> bool:
        """Whether a switch exists at the coordinates within the region."""
        return grid in self._by_region.get(region_id, {})


def xy_path(
    graph: TopologyGraph,
    index: RegionGridIndex,
    src_switch: int,
    dst_switch: int,
) -> List[int]:
    """Canonical X-then-Y path between two switches of the same region.

    Raises
    ------
    RoutingError
        If the switches belong to different regions or an intermediate grid
        position does not exist (non-rectangular region).
    """
    src = graph.switch(src_switch)
    dst = graph.switch(dst_switch)
    if src.region_id != dst.region_id:
        raise RoutingError(
            f"xy_path requires both switches in one region, got regions "
            f"{src.region_id} and {dst.region_id}"
        )
    region_id = src.region_id
    path = [src_switch]
    x, y = src.grid_x, src.grid_y
    step_x = 1 if dst.grid_x > x else -1
    while x != dst.grid_x:
        x += step_x
        path.append(index.switch_at(region_id, (x, y)))
    step_y = 1 if dst.grid_y > y else -1
    while y != dst.grid_y:
        y += step_y
        path.append(index.switch_at(region_id, (x, y)))
    return path


def manhattan_distance(graph: TopologyGraph, a: int, b: int) -> int:
    """Grid Manhattan distance between two switches."""
    sa = graph.switch(a)
    sb = graph.switch(b)
    return abs(sa.grid_x - sb.grid_x) + abs(sa.grid_y - sb.grid_y)


def is_xy_ordered(graph: TopologyGraph, path: List[int]) -> bool:
    """Whether a same-region path moves strictly X first, then Y.

    Exposed for tests and for the route validator.
    """
    turned = False
    for a, b in zip(path, path[1:]):
        sa = graph.switch(a)
        sb = graph.switch(b)
        moved_x = sa.grid_x != sb.grid_x
        moved_y = sa.grid_y != sb.grid_y
        if moved_x and moved_y:
            return False
        if moved_y:
            turned = True
        if moved_x and turned:
            return False
    return True
