"""Declarative scenario layer: specs, the registry compiler and the fuzzer.

One YAML/JSON document describes a whole experiment — systems, traffic,
MAC protocols, channel plan, fault plan and fidelity — purely in terms of
registered names, and compiles into the same
:class:`~repro.parallel.runner.SimulationTask` objects the figure
experiments build from CLI flags (so spec runs share the result cache
bit for bit).  This package is the fifth consumer of the four runtime
registries, alongside the experiments CLI:

* :mod:`repro.scenario.spec` — the document schema and its validator
  (field-path error messages, stable round-trips);
* :mod:`repro.scenario.compiler` — spec → ordered task list, runner
  execution and a generic report;
* :mod:`repro.scenario.builtin` — fig2–fig8 as thin built-in documents,
  provably equal to their flag forms;
* :mod:`repro.scenario.fuzz` — the seeded random-scenario generator and
  the kernel-invariant battery.
"""

from .builtin import BUILTIN_SCENARIOS, builtin_scenario, builtin_scenario_names
from .compiler import (
    compile_scenario,
    format_scenario_report,
    run_scenario,
    scenario_fidelity,
    system_config,
)
from .spec import (
    FaultSpec,
    ScenarioError,
    ScenarioSpec,
    SystemSpec,
    TrafficSpec,
    dump_scenario,
    load_scenario,
    loads_scenario,
    parse_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "FaultSpec",
    "ScenarioError",
    "ScenarioSpec",
    "SystemSpec",
    "TrafficSpec",
    "builtin_scenario",
    "builtin_scenario_names",
    "compile_scenario",
    "dump_scenario",
    "format_scenario_report",
    "load_scenario",
    "loads_scenario",
    "parse_scenario",
    "run_scenario",
    "scenario_fidelity",
    "system_config",
]
