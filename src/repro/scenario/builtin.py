"""Built-in scenario documents for the paper's figure experiments.

Each ``figN`` generator returns the *raw document* (a plain dict, exactly
what a YAML/JSON file would parse to) describing that figure's workload at
a given fidelity, taking the same knobs the experiments CLI threads into
the figure module (``--pattern``, ``--faults``/``--fault-rate``,
``--mac``).  Compiling the document through
:func:`repro.scenario.compiler.compile_scenario` yields a task list that
is bit-identical — same :class:`SimulationTask` instances, same cache
keys — to the one the figure module builds from flags; the parity tests
prove this for every figure.  The dict form keeps the documents copyable
straight into ``examples/`` files.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.config import Architecture
from ..experiments.common import architectures_for_comparison
from ..faults.scenarios import DEFAULT_SCENARIO
from .spec import ScenarioSpec, parse_scenario

__all__ = ["BUILTIN_SCENARIOS", "builtin_scenario", "builtin_scenario_names"]

#: Severity used when a fault scenario is given without a rate (mirrors
#: the CLI's ``DEFAULT_FAULT_RATE`` without importing the CLI module).
_DEFAULT_FAULT_RATE = 0.1


def _fault_section(faults: str, fault_rate: Optional[float]) -> Dict[str, object]:
    """The fault section matching the CLI's flag-resolution rules."""
    if faults == "none":
        return {"scenario": "none", "rates": [0.0]}
    rate = _DEFAULT_FAULT_RATE if fault_rate is None else fault_rate
    return {"scenario": faults, "rates": [rate]}


def _comparison_systems() -> List[Dict[str, object]]:
    return [{"architecture": a.value} for a in architectures_for_comparison()]


def fig2(
    fidelity: str = "default",
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: Optional[float] = None,
    mac: str = "",
) -> Dict[str, object]:
    """Fig. 2 — saturation bandwidth and packet energy, three architectures."""
    return {
        "name": "fig2",
        "description": "peak bandwidth/core and packet energy, uniform traffic, 4C4M",
        "fidelity": fidelity,
        "systems": _comparison_systems(),
        "traffic": {
            "kind": "synthetic",
            "pattern": pattern,
            "memory_fractions": [0.2],
            "loads": "fidelity",
        },
        "macs": [mac],
        "faults": _fault_section(faults, fault_rate),
    }


def fig3(
    fidelity: str = "default",
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: Optional[float] = None,
    mac: str = "",
) -> Dict[str, object]:
    """Fig. 3 — latency versus injection load (same sweep grid as fig2)."""
    raw = fig2(fidelity, pattern=pattern, faults=faults, fault_rate=fault_rate, mac=mac)
    raw["name"] = "fig3"
    raw["description"] = "average packet latency vs injection load, 4C4M"
    return raw


def fig4(
    fidelity: str = "default",
    pattern: str = "uniform",
    faults: str = "none",
    fault_rate: Optional[float] = None,
    mac: str = "",
) -> Dict[str, object]:
    """Fig. 4 — disintegration study: 1C4M/4C4M/8C4M, interposer vs wireless."""
    systems = [
        {"preset": preset, "architecture": architecture.value}
        for preset in ("1C4M", "4C4M", "8C4M")
        for architecture in (Architecture.INTERPOSER, Architecture.WIRELESS)
    ]
    return {
        "name": "fig4",
        "description": "wireless vs interposer gains under disintegration",
        "fidelity": fidelity,
        "systems": systems,
        "traffic": {
            "kind": "synthetic",
            "pattern": pattern,
            "memory_fractions": [0.2],
            "loads": "fidelity",
        },
        "macs": [mac],
        "faults": _fault_section(faults, fault_rate),
    }


def fig5(fidelity: str = "default") -> Dict[str, object]:
    """Fig. 5 — gains while sweeping the memory-access proportion."""
    return {
        "name": "fig5",
        "description": "wireless vs interposer gains vs memory-access proportion, 4C4M",
        "fidelity": fidelity,
        "systems": [
            {"architecture": a.value}
            for a in (Architecture.INTERPOSER, Architecture.WIRELESS)
        ],
        "traffic": {
            "kind": "synthetic",
            "pattern": "uniform",
            "memory_fractions": [0.2, 0.4, 0.6, 0.8],
            "loads": "fidelity",
        },
    }


def fig6(fidelity: str = "default") -> Dict[str, object]:
    """Fig. 6 — application (SynFull-substitute) traffic gains."""
    return {
        "name": "fig6",
        "description": "wireless vs interposer gains with application traffic, 4C4M",
        "fidelity": fidelity,
        "systems": [
            {"architecture": a.value}
            for a in (Architecture.INTERPOSER, Architecture.WIRELESS)
        ],
        "traffic": {
            "kind": "application",
            "applications": "fidelity",
            "rate_scale": "fidelity",
        },
    }


def fig7(
    fidelity: str = "default",
    pattern: str = "uniform",
    faults: str = DEFAULT_SCENARIO,
    fault_rate: Optional[float] = None,
) -> Dict[str, object]:
    """Fig. 7 — resilience sweep over fault severity, three architectures."""
    scenario = DEFAULT_SCENARIO if faults in (None, "none") else faults
    fault_section: Dict[str, object] = {"scenario": scenario}
    if fault_rate is not None:
        fault_section["rate"] = fault_rate
    else:
        fault_section["rates"] = "fidelity"
    return {
        "name": "fig7",
        "description": "throughput/latency/energy degradation vs fault rate",
        "fidelity": fidelity,
        "systems": [
            {"label": "mesh", "architecture": "substrate", "num_chips": 1, "cores_per_chip": 64},
            {"label": "interposer", "preset": "4C4M", "architecture": "interposer"},
            {"label": "wireless", "preset": "4C4M", "architecture": "wireless", "cores_per_wi": 8},
        ],
        "traffic": {
            "kind": "synthetic",
            "pattern": pattern,
            "memory_fractions": [0.2],
            "loads": [0.001],
        },
        "faults": fault_section,
    }


def fig8(
    fidelity: str = "default",
    pattern: str = "uniform",
    mac: Optional[str] = None,
) -> Dict[str, object]:
    """Fig. 8 — MAC × channel count × load study on the wireless systems."""
    return {
        "name": "fig8",
        "description": "MAC protocol study across channel counts and loads",
        "fidelity": fidelity,
        "systems": [
            {"preset": "4C4M", "architecture": "wireless"},
            {"preset": "8C4M", "architecture": "wireless"},
        ],
        "traffic": {
            "kind": "synthetic",
            "pattern": pattern,
            "memory_fractions": [0.2],
            "loads": "saturation-study",
        },
        "macs": [mac] if mac else "all",
        "channels": "fidelity",
    }


#: Scenario name -> raw-document generator, in figure order.
BUILTIN_SCENARIOS = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
}


def builtin_scenario_names() -> List[str]:
    """All built-in scenario names, in figure order."""
    return list(BUILTIN_SCENARIOS)


def builtin_scenario(name: str, fidelity: str = "default", **kwargs) -> ScenarioSpec:
    """Build and validate one built-in figure scenario by name."""
    try:
        generator = BUILTIN_SCENARIOS[name]
    except KeyError:
        known = ", ".join(BUILTIN_SCENARIOS)
        raise KeyError(f"unknown built-in scenario {name!r}; known: {known}") from None
    return parse_scenario(generator(fidelity, **kwargs))
