"""Resolve a validated scenario spec into concrete simulation tasks.

The compiler is the bridge between the declarative layer and the parallel
runner: every name in the spec is resolved through the matching registry
(traffic patterns, architectures/presets, MAC protocols, fault scenarios),
the fidelity sentinels are expanded against the requested level, and the
cross product is emitted as plain
:class:`~repro.parallel.runner.SimulationTask` instances — the same
frozen dataclass the figure experiments build from CLI flags.  Because the
tasks are identical objects, a compiled scenario shares cache keys (task
schema v5) and fingerprints with its CLI-flag equivalent bit for bit; the
parity tests in ``tests/test_scenario_parity.py`` prove it for every
built-in figure spec.

Expansion order (stable, documented, relied upon by the parity tests):

* synthetic — memory fraction (outer) × system × MAC × channel count ×
  fault severity × offered load (inner);
* application — application (outer) × system × channel count × fault
  severity (inner).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import (
    Architecture,
    SystemConfig,
    paper_1c4m,
    paper_4c4m,
    paper_8c4m,
)
from ..experiments.common import Fidelity, get_fidelity
from ..parallel.runner import (
    ExperimentRunner,
    SimulationTask,
    application_task,
    uniform_task,
)
from ..metrics.report import format_heading, format_table
from ..metrics.saturation import LoadPointSummary
from .spec import FIDELITY_SENTINEL, STUDY_SENTINEL, ScenarioError, ScenarioSpec, SystemSpec

__all__ = [
    "compile_scenario",
    "scenario_fidelity",
    "system_config",
    "run_scenario",
    "format_scenario_report",
]

_PRESET_FACTORIES = {"1C4M": paper_1c4m, "4C4M": paper_4c4m, "8C4M": paper_8c4m}


def scenario_fidelity(spec: ScenarioSpec) -> Fidelity:
    """The spec's fidelity level with its cycle/seed overrides applied."""
    level = get_fidelity(spec.fidelity_level)
    if spec.fidelity_overrides:
        level = replace(level, **spec.fidelity_overrides)
    return level


def system_config(system: SystemSpec, index: int = 0) -> SystemConfig:
    """Build one system entry's :class:`SystemConfig`.

    Any constraint violation raised by the configuration dataclasses
    (``num_chips`` must be positive, the TDMA guard must fit its slot, …)
    is re-raised as a :class:`ScenarioError` anchored at the entry's path.
    """
    path = f"systems[{index}]"
    architecture = Architecture(system.architecture)
    try:
        if system.preset:
            config = _PRESET_FACTORIES[system.preset](architecture)
        else:
            config = SystemConfig(architecture=architecture)
        if system.overrides:
            config = replace(config, **system.overrides)
        if system.network:
            config = config.with_network(**system.network)
        if system.wireless:
            config = config.with_wireless(**system.wireless)
    except ValueError as error:
        raise ScenarioError(path, str(error)) from None
    return config


def _resolve_loads(spec: ScenarioSpec, level: Fidelity) -> List[float]:
    loads = spec.traffic.loads
    if loads == FIDELITY_SENTINEL:
        return list(level.load_points)
    if loads == STUDY_SENTINEL:
        from ..experiments.fig8_mac_study import study_loads

        return study_loads(level.load_points)
    return list(loads)


def _resolve_macs(spec: ScenarioSpec) -> List[str]:
    if spec.macs == "all":
        from ..wireless.mac.registry import available_macs

        return available_macs()
    return list(spec.macs)


def _resolve_channels(spec: ScenarioSpec, level: Fidelity) -> List[Optional[int]]:
    if spec.channels is None:
        return [None]
    if spec.channels == FIDELITY_SENTINEL:
        return sorted(set(level.channel_counts))
    return list(spec.channels)


def _resolve_rates(spec: ScenarioSpec, level: Fidelity) -> List[float]:
    rates = spec.faults.rates
    if rates == FIDELITY_SENTINEL:
        return sorted(set(level.fault_rates))
    return list(rates)


def compile_scenario(spec: ScenarioSpec) -> List[SimulationTask]:
    """Expand one validated spec into its ordered simulation-task list.

    Duplicate tasks (e.g. the shared pristine baseline of several fault
    severities) are kept — the runner deduplicates execution — so the
    returned order mirrors the document exactly.
    """
    level = scenario_fidelity(spec)
    configs = [system_config(system, index) for index, system in enumerate(spec.systems)]
    channels = _resolve_channels(spec, level)
    rates = _resolve_rates(spec, level)
    scenario = spec.faults.scenario

    tasks: List[SimulationTask] = []
    if spec.traffic.kind == "synthetic":
        loads = _resolve_loads(spec, level)
        macs = _resolve_macs(spec)
        for fraction in spec.traffic.memory_fractions:
            for config in configs:
                for mac in macs:
                    for count in channels:
                        combo = (
                            config
                            if count is None
                            else config.with_wireless(num_channels=count)
                        )
                        for rate in rates:
                            for load in loads:
                                tasks.append(
                                    uniform_task(
                                        combo,
                                        level,
                                        load=load,
                                        memory_access_fraction=fraction,
                                        pattern=spec.traffic.pattern,
                                        faults=scenario if rate > 0 else "none",
                                        fault_rate=rate,
                                        mac=mac,
                                    )
                                )
        return tasks

    applications = spec.traffic.applications
    if applications == FIDELITY_SENTINEL:
        applications = list(level.applications)
    rate_scale = spec.traffic.rate_scale
    if rate_scale == FIDELITY_SENTINEL:
        rate_scale = level.application_rate_scale
    for application in applications:
        for config in configs:
            for count in channels:
                combo = (
                    config if count is None else config.with_wireless(num_channels=count)
                )
                for rate in rates:
                    tasks.append(
                        application_task(
                            combo,
                            level,
                            application,
                            rate_scale=rate_scale,
                            faults=scenario if rate > 0 else "none",
                            fault_rate=rate,
                        )
                    )
    return tasks


# ----------------------------------------------------------------------
# Running and reporting (the CLI's ``--scenario`` path).
# ----------------------------------------------------------------------


def run_scenario(
    spec: ScenarioSpec, runner: Optional[ExperimentRunner] = None
) -> List[Tuple[SimulationTask, LoadPointSummary]]:
    """Compile and execute one scenario through the :mod:`repro.api` facade.

    Returns ``(task, summary)`` pairs in compiled (document) order, with
    duplicate tasks collapsed to their first occurrence.
    """
    from ..api import sweep

    tasks = compile_scenario(spec)
    results = sweep(tasks, runner=runner) if runner is not None else sweep(tasks)
    ordered: List[Tuple[SimulationTask, LoadPointSummary]] = []
    seen: Dict[SimulationTask, bool] = {}
    for task in tasks:
        if task not in seen:
            seen[task] = True
            ordered.append((task, results[task]))
    return ordered


def format_scenario_report(
    spec: ScenarioSpec,
    points: Sequence[Tuple[SimulationTask, LoadPointSummary]],
) -> str:
    """Generic per-task report table for one executed scenario."""
    rows = []
    for task, point in points:
        rows.append(
            [
                task.label,
                f"{point.offered_load:g}",
                point.bandwidth_gbps_per_core,
                point.average_latency_cycles,
                point.system_packet_energy_nj,
                point.delivery_ratio,
            ]
        )
    table = format_table(
        [
            "Task",
            "Offered load",
            "BW/core (Gbps)",
            "Avg latency (cyc)",
            "Energy/pkt (nJ)",
            "Delivery ratio",
        ],
        rows,
    )
    title = f"Scenario '{spec.name}'"
    if spec.description:
        title += f" - {spec.description}"
    heading = format_heading(f"{title} [fidelity={spec.fidelity_level}]")
    return f"{heading}\n{table}"
