"""The declarative scenario specification and its schema validator.

A *scenario* is one YAML/JSON document describing a whole experiment —
which systems to build, what traffic to offer, which MAC protocols,
channel plans and fault plans to apply, and at what fidelity — in terms of
the names held by the four runtime registries (traffic patterns,
architectures, MAC protocols, fault scenarios).  The document is validated
into a :class:`ScenarioSpec` here and resolved into concrete
:class:`~repro.parallel.runner.SimulationTask` lists by
:mod:`repro.scenario.compiler`.

Design rules:

* **Field-path errors.**  Every way a document can be malformed raises
  :class:`ScenarioError` carrying the dotted path of the offending field
  (``systems[1].wireless.mac``), never a bare ``KeyError``/``TypeError``
  from deep inside the loader.
* **Registry names, not structures.**  The spec references patterns,
  architectures, MACs, applications and fault scenarios purely by
  registered name, so anything pluggable through a registry is reachable
  from a document with no schema change.
* **Stable round-trips.**  ``parse(spec.to_dict()) == spec`` for every
  valid spec, so documents can be normalised, stored and re-loaded
  without drift (the fuzzer and the CI artifact dump rely on this).

YAML support is optional: ``.json`` documents load through the standard
library; ``.yaml`` documents need PyYAML and fail with a clear message —
not an ``ImportError`` traceback — when it is absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.config import Architecture
from ..faults.scenarios import available_fault_scenarios
from ..traffic.applications import APPLICATION_PROFILES
from ..traffic.registry import available_patterns
from ..wireless.mac.registry import available_macs

__all__ = [
    "ScenarioError",
    "ScenarioSpec",
    "SystemSpec",
    "TrafficSpec",
    "FaultSpec",
    "parse_scenario",
    "load_scenario",
    "loads_scenario",
    "dump_scenario",
]

#: Sentinel values a spec may use instead of explicit grids: ``"fidelity"``
#: resolves to the fidelity level's own grid (load points, applications,
#: fault rates or channel counts); ``"saturation-study"`` picks the fig8
#: low/mid/high subset of the fidelity's load grid.
FIDELITY_SENTINEL = "fidelity"
STUDY_SENTINEL = "saturation-study"

#: System presets resolvable by name (the paper's ``XCYM`` configurations).
SYSTEM_PRESETS = ("1C4M", "4C4M", "8C4M")

#: ``SystemConfig`` scalar fields a system entry may override.
_SYSTEM_INT_FIELDS = (
    "num_chips",
    "cores_per_chip",
    "num_memory_stacks",
    "vaults_per_stack",
    "cores_per_wi",
    "interposer_links_per_boundary",
    "substrate_serial_links",
    "wide_io_links_per_stack",
)
_SYSTEM_FLOAT_FIELDS = ("total_processing_area_mm2",)

#: ``NetworkConfig`` fields a system's ``network`` section may override.
_NETWORK_INT_FIELDS = (
    "virtual_channels",
    "buffer_depth_flits",
    "packet_length_flits",
    "switch_pipeline_stages",
    "injection_width_flits",
    "ejection_width_per_endpoint",
)
_NETWORK_BOOL_FIELDS = ("include_static_energy",)

#: ``WirelessConfig`` fields a system's ``wireless`` section may override.
_WIRELESS_INT_FIELDS = (
    "num_channels",
    "cycles_per_flit",
    "extra_latency_cycles",
    "control_packet_cycles",
    "control_packet_bits",
    "max_control_tuples",
    "token_pass_latency_cycles",
    "tdma_slot_cycles",
    "tdma_guard_cycles",
    "wi_buffer_depth_flits",
)
_WIRELESS_BOOL_FIELDS = ("sleepy_receivers",)


class ScenarioError(ValueError):
    """A scenario document failed validation.

    ``path`` is the dotted location of the offending field
    (``"traffic.pattern"``, ``"systems[2].wireless.mac"``; ``""`` for
    document-level problems) and ``reason`` the human-readable cause; the
    exception string always leads with the path so CLI users and the CI
    artifact dump can point at the exact field.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = path
        self.reason = reason
        super().__init__(f"{path}: {reason}" if path else reason)


# ----------------------------------------------------------------------
# Typed validation helpers (never let a bare KeyError/TypeError escape).
# ----------------------------------------------------------------------


def _type_name(value: object) -> str:
    return type(value).__name__


def _expect_mapping(value: object, path: str) -> Mapping:
    if not isinstance(value, Mapping):
        raise ScenarioError(path, f"expected a mapping, got {_type_name(value)}")
    for key in value:
        if not isinstance(key, str):
            raise ScenarioError(path, f"mapping keys must be strings, got {key!r}")
    return value


def _expect_list(value: object, path: str) -> List[object]:
    if isinstance(value, (str, bytes)) or not isinstance(value, Sequence):
        raise ScenarioError(path, f"expected a list, got {_type_name(value)}")
    return list(value)


def _expect_str(value: object, path: str) -> str:
    if not isinstance(value, str):
        raise ScenarioError(path, f"expected a string, got {_type_name(value)}")
    return value


def _expect_bool(value: object, path: str) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(path, f"expected a boolean, got {_type_name(value)}")
    return value


def _expect_int(value: object, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(path, f"expected an integer, got {_type_name(value)}")
    return value


def _expect_float(value: object, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(path, f"expected a number, got {_type_name(value)}")
    return float(value)


def _reject_unknown_keys(raw: Mapping, allowed: Sequence[str], path: str) -> None:
    unknown = sorted(set(raw) - set(allowed))
    if unknown:
        raise ScenarioError(
            f"{path}.{unknown[0]}" if path else unknown[0],
            f"unknown field (known fields: {', '.join(sorted(allowed))})",
        )


def _expect_registry_name(value: object, path: str, known: Sequence[str], what: str) -> str:
    name = _expect_str(value, path)
    if name not in known:
        raise ScenarioError(
            path, f"unknown {what} {name!r} (registered: {', '.join(known)})"
        )
    return name


# ----------------------------------------------------------------------
# Spec sections.
# ----------------------------------------------------------------------


@dataclass
class SystemSpec:
    """One system entry: an architecture plus configuration overrides."""

    architecture: str
    preset: str = ""
    label: str = ""
    #: ``SystemConfig`` scalar overrides, in document order of appearance.
    overrides: Dict[str, object] = field(default_factory=dict)
    network: Dict[str, object] = field(default_factory=dict)
    wireless: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        raw: Dict[str, object] = {"architecture": self.architecture}
        if self.preset:
            raw["preset"] = self.preset
        if self.label:
            raw["label"] = self.label
        raw.update({k: self.overrides[k] for k in sorted(self.overrides)})
        if self.network:
            raw["network"] = {k: self.network[k] for k in sorted(self.network)}
        if self.wireless:
            raw["wireless"] = {k: self.wireless[k] for k in sorted(self.wireless)}
        return raw


@dataclass
class TrafficSpec:
    """The workload section: synthetic pattern sweeps or application runs."""

    kind: str = "synthetic"
    pattern: str = "uniform"
    memory_fractions: List[float] = field(default_factory=lambda: [0.2])
    #: ``"fidelity"`` (the level's grid), ``"saturation-study"`` (fig8's
    #: low/mid/high subset) or an explicit list of offered loads.
    loads: Union[str, List[float]] = FIDELITY_SENTINEL
    #: ``"fidelity"`` or an explicit list of application names.
    applications: Union[str, List[str]] = FIDELITY_SENTINEL
    #: ``"fidelity"`` (the level's ``application_rate_scale``) or a float.
    rate_scale: Union[str, float] = FIDELITY_SENTINEL

    def to_dict(self) -> Dict[str, object]:
        raw: Dict[str, object] = {"kind": self.kind}
        if self.kind == "synthetic":
            raw["pattern"] = self.pattern
            raw["memory_fractions"] = list(self.memory_fractions)
            raw["loads"] = self.loads if isinstance(self.loads, str) else list(self.loads)
        else:
            raw["applications"] = (
                self.applications
                if isinstance(self.applications, str)
                else list(self.applications)
            )
            raw["rate_scale"] = self.rate_scale
        return raw


@dataclass
class FaultSpec:
    """The fault-plan section: one registered scenario at swept severities."""

    scenario: str = "none"
    #: ``"fidelity"`` (the level's ``fault_rates`` grid, sorted and
    #: de-duplicated) or an explicit list of severities in [0, 1].  A zero
    #: severity always compiles to the pristine fabric (scenario
    #: ``"none"``), mirroring the fig7 baseline semantics.
    rates: Union[str, List[float]] = field(default_factory=lambda: [0.0])

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "rates": self.rates if isinstance(self.rates, str) else list(self.rates),
        }


@dataclass
class ScenarioSpec:
    """One fully validated scenario document."""

    name: str
    description: str = ""
    fidelity_level: str = "default"
    #: ``cycles`` / ``warmup_cycles`` / ``seed`` overrides on the level.
    fidelity_overrides: Dict[str, int] = field(default_factory=dict)
    systems: List[SystemSpec] = field(default_factory=list)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    #: MAC overrides applied to every task: ``"all"`` sweeps the registry,
    #: a list pins specific protocols (``""`` = keep the system's own MAC).
    macs: Union[str, List[str]] = field(default_factory=lambda: [""])
    #: Channel plan: ``None`` keeps each system's channel count,
    #: ``"fidelity"`` sweeps the level's ``channel_counts`` grid, a list
    #: sweeps explicit counts.
    channels: Union[None, str, List[int]] = None
    faults: FaultSpec = field(default_factory=FaultSpec)

    def to_dict(self) -> Dict[str, object]:
        """The canonical document form (``parse_scenario`` round-trips it)."""
        fidelity: Dict[str, object] = {"level": self.fidelity_level}
        fidelity.update(
            {k: self.fidelity_overrides[k] for k in sorted(self.fidelity_overrides)}
        )
        raw: Dict[str, object] = {"name": self.name}
        if self.description:
            raw["description"] = self.description
        raw["fidelity"] = fidelity
        raw["systems"] = [system.to_dict() for system in self.systems]
        raw["traffic"] = self.traffic.to_dict()
        if self.traffic.kind == "synthetic":
            raw["macs"] = self.macs if isinstance(self.macs, str) else list(self.macs)
        if self.channels is not None:
            raw["channels"] = (
                self.channels if isinstance(self.channels, str) else list(self.channels)
            )
        raw["faults"] = self.faults.to_dict()
        return raw


# ----------------------------------------------------------------------
# Section parsers.
# ----------------------------------------------------------------------


def _parse_fidelity(raw: object, path: str) -> Tuple[str, Dict[str, int]]:
    from ..experiments.common import FIDELITIES

    levels = sorted(FIDELITIES)
    if isinstance(raw, str):
        if raw not in levels:
            raise ScenarioError(
                path, f"unknown fidelity level {raw!r} (known: {', '.join(levels)})"
            )
        return raw, {}
    mapping = _expect_mapping(raw, path)
    _reject_unknown_keys(mapping, ("level", "cycles", "warmup_cycles", "seed"), path)
    level = "default"
    if "level" in mapping:
        level = _expect_str(mapping["level"], f"{path}.level")
        if level not in levels:
            raise ScenarioError(
                f"{path}.level",
                f"unknown fidelity level {level!r} (known: {', '.join(levels)})",
            )
    overrides: Dict[str, int] = {}
    for key, minimum in (("cycles", 1), ("warmup_cycles", 0), ("seed", 0)):
        if key in mapping:
            value = _expect_int(mapping[key], f"{path}.{key}")
            if value < minimum:
                raise ScenarioError(f"{path}.{key}", f"must be >= {minimum}, got {value}")
            overrides[key] = value
    if "cycles" in overrides and overrides.get("warmup_cycles", 0) >= overrides["cycles"]:
        raise ScenarioError(f"{path}.warmup_cycles", "must be smaller than cycles")
    return level, overrides


def _parse_system(raw: object, path: str) -> SystemSpec:
    mapping = _expect_mapping(raw, path)
    allowed = (
        ("architecture", "preset", "label", "network", "wireless")
        + _SYSTEM_INT_FIELDS
        + _SYSTEM_FLOAT_FIELDS
    )
    _reject_unknown_keys(mapping, allowed, path)
    if "architecture" not in mapping:
        raise ScenarioError(f"{path}.architecture", "required field is missing")
    architecture = _expect_registry_name(
        mapping["architecture"],
        f"{path}.architecture",
        [a.value for a in Architecture],
        "architecture",
    )
    preset = ""
    if "preset" in mapping:
        preset = _expect_str(mapping["preset"], f"{path}.preset")
        if preset not in SYSTEM_PRESETS:
            raise ScenarioError(
                f"{path}.preset",
                f"unknown preset {preset!r} (known: {', '.join(SYSTEM_PRESETS)})",
            )
    label = _expect_str(mapping.get("label", ""), f"{path}.label")

    overrides: Dict[str, object] = {}
    for key in _SYSTEM_INT_FIELDS:
        if key in mapping:
            overrides[key] = _expect_int(mapping[key], f"{path}.{key}")
    for key in _SYSTEM_FLOAT_FIELDS:
        if key in mapping and mapping[key] is not None:
            overrides[key] = _expect_float(mapping[key], f"{path}.{key}")
        elif key in mapping:
            overrides[key] = None

    network: Dict[str, object] = {}
    if "network" in mapping:
        sub = _expect_mapping(mapping["network"], f"{path}.network")
        _reject_unknown_keys(
            sub, _NETWORK_INT_FIELDS + _NETWORK_BOOL_FIELDS, f"{path}.network"
        )
        for key in _NETWORK_INT_FIELDS:
            if key in sub:
                network[key] = _expect_int(sub[key], f"{path}.network.{key}")
        for key in _NETWORK_BOOL_FIELDS:
            if key in sub:
                network[key] = _expect_bool(sub[key], f"{path}.network.{key}")

    wireless: Dict[str, object] = {}
    if "wireless" in mapping:
        sub = _expect_mapping(mapping["wireless"], f"{path}.wireless")
        _reject_unknown_keys(
            sub,
            ("mac",) + _WIRELESS_INT_FIELDS + _WIRELESS_BOOL_FIELDS,
            f"{path}.wireless",
        )
        if "mac" in sub:
            wireless["mac"] = _expect_registry_name(
                sub["mac"], f"{path}.wireless.mac", available_macs(), "MAC protocol"
            )
        for key in _WIRELESS_INT_FIELDS:
            # tdma_slot_cycles / wi_buffer_depth_flits accept an explicit null.
            if key in sub and sub[key] is not None:
                wireless[key] = _expect_int(sub[key], f"{path}.wireless.{key}")
            elif key in sub:
                wireless[key] = None
        for key in _WIRELESS_BOOL_FIELDS:
            if key in sub:
                wireless[key] = _expect_bool(sub[key], f"{path}.wireless.{key}")

    return SystemSpec(
        architecture=architecture,
        preset=preset,
        label=label,
        overrides=overrides,
        network=network,
        wireless=wireless,
    )


def _parse_loads(raw: object, path: str) -> Union[str, List[float]]:
    if isinstance(raw, str):
        if raw not in (FIDELITY_SENTINEL, STUDY_SENTINEL):
            raise ScenarioError(
                path,
                f"expected a list of loads, {FIDELITY_SENTINEL!r} or "
                f"{STUDY_SENTINEL!r}, got {raw!r}",
            )
        return raw
    loads = _expect_list(raw, path)
    if not loads:
        raise ScenarioError(path, "needs at least one load point")
    parsed = []
    for index, load in enumerate(loads):
        value = _expect_float(load, f"{path}[{index}]")
        if value < 0:
            raise ScenarioError(f"{path}[{index}]", f"must be >= 0, got {value}")
        parsed.append(value)
    return parsed


def _parse_traffic(raw: object, path: str) -> TrafficSpec:
    mapping = _expect_mapping(raw, path)
    kind = _expect_str(mapping.get("kind", "synthetic"), f"{path}.kind")
    if kind not in ("synthetic", "application"):
        raise ScenarioError(
            f"{path}.kind", f"must be 'synthetic' or 'application', got {kind!r}"
        )
    if kind == "synthetic":
        _reject_unknown_keys(
            mapping, ("kind", "pattern", "memory_fractions", "loads"), path
        )
        pattern = "uniform"
        if "pattern" in mapping:
            pattern = _expect_registry_name(
                mapping["pattern"], f"{path}.pattern", available_patterns(), "pattern"
            )
        fractions = [0.2]
        if "memory_fractions" in mapping:
            entries = _expect_list(mapping["memory_fractions"], f"{path}.memory_fractions")
            if not entries:
                raise ScenarioError(
                    f"{path}.memory_fractions", "needs at least one fraction"
                )
            fractions = []
            for index, entry in enumerate(entries):
                value = _expect_float(entry, f"{path}.memory_fractions[{index}]")
                if not 0.0 <= value <= 1.0:
                    raise ScenarioError(
                        f"{path}.memory_fractions[{index}]",
                        f"must be in [0, 1], got {value}",
                    )
                fractions.append(value)
        loads = FIDELITY_SENTINEL
        if "loads" in mapping:
            loads = _parse_loads(mapping["loads"], f"{path}.loads")
        return TrafficSpec(
            kind="synthetic", pattern=pattern, memory_fractions=fractions, loads=loads
        )

    _reject_unknown_keys(mapping, ("kind", "applications", "rate_scale"), path)
    applications: Union[str, List[str]] = FIDELITY_SENTINEL
    if "applications" in mapping and mapping["applications"] != FIDELITY_SENTINEL:
        entries = _expect_list(mapping["applications"], f"{path}.applications")
        if not entries:
            raise ScenarioError(f"{path}.applications", "needs at least one application")
        applications = [
            _expect_registry_name(
                entry,
                f"{path}.applications[{index}]",
                sorted(APPLICATION_PROFILES),
                "application",
            )
            for index, entry in enumerate(entries)
        ]
    rate_scale: Union[str, float] = FIDELITY_SENTINEL
    if "rate_scale" in mapping and mapping["rate_scale"] != FIDELITY_SENTINEL:
        rate_scale = _expect_float(mapping["rate_scale"], f"{path}.rate_scale")
        if rate_scale <= 0:
            raise ScenarioError(f"{path}.rate_scale", f"must be > 0, got {rate_scale}")
    return TrafficSpec(kind="application", applications=applications, rate_scale=rate_scale)


def _parse_macs(raw: object, path: str) -> Union[str, List[str]]:
    if isinstance(raw, str):
        if raw != "all":
            raise ScenarioError(
                path, f"expected 'all' or a list of MAC names, got {raw!r}"
            )
        return "all"
    entries = _expect_list(raw, path)
    if not entries:
        raise ScenarioError(path, "needs at least one entry ('' keeps the system's MAC)")
    macs = []
    for index, entry in enumerate(entries):
        name = _expect_str(entry, f"{path}[{index}]")
        if name:
            _expect_registry_name(name, f"{path}[{index}]", available_macs(), "MAC protocol")
        macs.append(name)
    return macs


def _parse_channels(raw: object, path: str) -> Union[None, str, List[int]]:
    if raw is None:
        return None
    if isinstance(raw, str):
        if raw != FIDELITY_SENTINEL:
            raise ScenarioError(
                path,
                f"expected {FIDELITY_SENTINEL!r} or a list of channel counts, got {raw!r}",
            )
        return FIDELITY_SENTINEL
    entries = _expect_list(raw, path)
    if not entries:
        raise ScenarioError(path, "needs at least one channel count")
    channels = []
    for index, entry in enumerate(entries):
        value = _expect_int(entry, f"{path}[{index}]")
        if value <= 0:
            raise ScenarioError(f"{path}[{index}]", f"must be >= 1, got {value}")
        channels.append(value)
    return channels


def _parse_faults(raw: object, path: str) -> FaultSpec:
    mapping = _expect_mapping(raw, path)
    _reject_unknown_keys(mapping, ("scenario", "rates", "rate"), path)
    scenario = "none"
    if "scenario" in mapping:
        scenario = _expect_registry_name(
            mapping["scenario"],
            f"{path}.scenario",
            available_fault_scenarios(),
            "fault scenario",
        )
    if "rates" in mapping and "rate" in mapping:
        raise ScenarioError(f"{path}.rate", "give either 'rates' or 'rate', not both")
    rates: Union[str, List[float]] = [0.0]
    if "rate" in mapping:
        value = _expect_float(mapping["rate"], f"{path}.rate")
        if not 0.0 <= value <= 1.0:
            raise ScenarioError(f"{path}.rate", f"must be in [0, 1], got {value}")
        # The fig7 pinned-rate form: the pristine baseline plus one severity.
        rates = sorted({0.0, value})
    elif "rates" in mapping:
        if mapping["rates"] == FIDELITY_SENTINEL:
            rates = FIDELITY_SENTINEL
        else:
            entries = _expect_list(mapping["rates"], f"{path}.rates")
            if not entries:
                raise ScenarioError(f"{path}.rates", "needs at least one severity")
            rates = []
            for index, entry in enumerate(entries):
                value = _expect_float(entry, f"{path}.rates[{index}]")
                if not 0.0 <= value <= 1.0:
                    raise ScenarioError(
                        f"{path}.rates[{index}]", f"must be in [0, 1], got {value}"
                    )
                rates.append(value)
    if scenario == "none":
        explicit = rates if isinstance(rates, list) else []
        if rates == FIDELITY_SENTINEL or any(rate > 0 for rate in explicit):
            raise ScenarioError(
                f"{path}.rates",
                "a non-zero severity needs a fault scenario "
                "(e.g. scenario: random-links)",
            )
    return FaultSpec(scenario=scenario, rates=rates)


# ----------------------------------------------------------------------
# Document entry points.
# ----------------------------------------------------------------------

_TOP_LEVEL_KEYS = (
    "name",
    "description",
    "fidelity",
    "systems",
    "traffic",
    "macs",
    "channels",
    "faults",
)


def parse_scenario(raw: object) -> ScenarioSpec:
    """Validate one raw document (a mapping) into a :class:`ScenarioSpec`.

    Raises :class:`ScenarioError` — with the dotted path of the offending
    field — for every malformed, unknown, out-of-range or unregistered
    value.
    """
    mapping = _expect_mapping(raw, "")
    _reject_unknown_keys(mapping, _TOP_LEVEL_KEYS, "")
    if "name" not in mapping:
        raise ScenarioError("name", "required field is missing")
    name = _expect_str(mapping["name"], "name")
    if not name:
        raise ScenarioError("name", "must not be empty")
    description = _expect_str(mapping.get("description", ""), "description")

    level, overrides = _parse_fidelity(mapping.get("fidelity", "default"), "fidelity")

    if "systems" not in mapping:
        raise ScenarioError("systems", "required field is missing")
    entries = _expect_list(mapping["systems"], "systems")
    if not entries:
        raise ScenarioError("systems", "needs at least one system")
    systems = [
        _parse_system(entry, f"systems[{index}]") for index, entry in enumerate(entries)
    ]

    if "traffic" not in mapping:
        raise ScenarioError("traffic", "required field is missing")
    traffic = _parse_traffic(mapping["traffic"], "traffic")

    macs: Union[str, List[str]] = [""]
    if "macs" in mapping:
        if traffic.kind == "application":
            raise ScenarioError(
                "macs", "application traffic does not take a MAC override sweep"
            )
        macs = _parse_macs(mapping["macs"], "macs")

    channels = _parse_channels(mapping.get("channels"), "channels")

    faults = FaultSpec()
    if "faults" in mapping:
        faults = _parse_faults(mapping["faults"], "faults")

    return ScenarioSpec(
        name=name,
        description=description,
        fidelity_level=level,
        fidelity_overrides=overrides,
        systems=systems,
        traffic=traffic,
        macs=macs,
        channels=channels,
        faults=faults,
    )


def _load_yaml(text: str, source: str) -> object:
    try:
        import yaml
    except ImportError:
        raise ScenarioError(
            "",
            f"cannot load YAML scenario {source!r}: PyYAML is not installed "
            "(use a .json document instead)",
        ) from None
    try:
        return yaml.safe_load(text)
    except yaml.YAMLError as error:
        raise ScenarioError("", f"invalid YAML in {source!r}: {error}") from None


def loads_scenario(text: str, format: str = "yaml", source: str = "<string>") -> ScenarioSpec:
    """Parse a scenario from document text (``format``: ``yaml`` or ``json``)."""
    if format == "json":
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError("", f"invalid JSON in {source!r}: {error}") from None
    elif format == "yaml":
        raw = _load_yaml(text, source)
    else:
        raise ScenarioError("", f"unknown scenario format {format!r} (yaml or json)")
    return parse_scenario(raw)


def load_scenario(path: str) -> ScenarioSpec:
    """Load and validate one scenario document from a ``.yaml``/``.json`` file."""
    lowered = str(path).lower()
    format = "json" if lowered.endswith(".json") else "yaml"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise ScenarioError("", f"cannot read scenario file {path!r}: {error}") from None
    return loads_scenario(text, format=format, source=str(path))


def dump_scenario(spec: ScenarioSpec, format: str = "json") -> str:
    """Serialise a spec back to canonical document text.

    JSON needs only the standard library (this is what the fuzzer's CI
    artifact dump uses); YAML needs PyYAML.
    """
    raw = spec.to_dict()
    if format == "json":
        return json.dumps(raw, indent=2, sort_keys=False) + "\n"
    if format == "yaml":
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                "", "cannot dump YAML: PyYAML is not installed (use format='json')"
            ) from None
        return yaml.safe_dump(raw, sort_keys=False)
    raise ScenarioError("", f"unknown scenario format {format!r} (yaml or json)")
