"""Long-running sweep service: job queue, daemon, client.

The service turns the batch-oriented parallel runner into a resident
process that many submitters share:

* :mod:`repro.service.jobs` — the asyncio :class:`~repro.service.jobs.SweepService`:
  accepts jobs (task lists or scenario documents), dedupes every task
  against the content-hash result cache, coalesces identical in-flight
  tasks across jobs, runs the rest on the process-pool executor with
  two-level priority (interactive preempts *queued* bulk tasks), and
  streams per-task progress and partial results to each job's subscriber.
* :mod:`repro.service.daemon` — ``python -m repro.service``: the same
  service behind a newline-delimited-JSON protocol on a local Unix
  socket.
* :mod:`repro.service.client` — the asyncio client, the blocking
  :func:`~repro.service.client.submit_sync` helper behind
  :func:`repro.api.submit`, and the
  :class:`~repro.service.client.ServiceRunner` drop-in that routes an
  ``ExperimentRunner``-shaped workload through a daemon (the CLI's
  ``--service`` flag).
* :mod:`repro.service.wire` — the typed task/result codec shared by
  daemon and client.

Interrupted work is resumable: with the checkpoint knobs set, workers
persist kernel checkpoints under the service's checkpoint store, and a
preempted or crashed task's next attempt resumes from the last checkpoint
bit-identically (``tests/test_checkpoint.py``, ``tests/test_service.py``).
"""

from .jobs import JobEvent, JobHandle, JobState, ServiceConfig, SweepService

__all__ = [
    "JobEvent",
    "JobHandle",
    "JobState",
    "ServiceConfig",
    "SweepService",
]
