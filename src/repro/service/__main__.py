"""``python -m repro.service``: run the sweep-service daemon.

Usage::

    python -m repro.service --socket /tmp/repro.sock \
        [--jobs N] [--cache-dir DIR] [--no-cache] [--engine scalar|vector] \
        [--checkpoint-every CYCLES] [--checkpoint-dir DIR] [--verbose]

The daemon serves the newline-delimited JSON protocol documented in
:mod:`repro.service.daemon` until a ``shutdown`` request (or SIGINT /
SIGTERM).  With the checkpoint knobs set, tasks killed mid-run (daemon
crash, SIGKILL) leave resumable checkpoints behind; the next daemon on
the same ``--checkpoint-dir`` resumes them bit-identically.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
from typing import Optional, Sequence

from ..parallel.runner import DEFAULT_CACHE_DIR
from .daemon import ServiceDaemon
from .jobs import ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=(
            "Long-running sweep service: accepts jobs over a local socket, "
            "dedupes tasks against the shared result cache, coalesces "
            "identical in-flight tasks across jobs, and (optionally) "
            "checkpoints running kernels so interrupted tasks resume "
            "instead of restarting."
        ),
    )
    parser.add_argument(
        "--socket", required=True, metavar="PATH", help="Unix socket to listen on"
    )
    parser.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="maximum concurrently executing tasks (default: 1)",
    )
    parser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR, metavar="DIR",
        help=f"shared per-task result cache (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache (every submitted task runs)",
    )
    parser.add_argument(
        "--engine", choices=("scalar", "vector"), default="scalar",
        help="kernel execution path for every task (default: scalar)",
    )
    parser.add_argument(
        "--batch-lanes", type=int, default=1, metavar="N",
        help=(
            "with --engine vector, fuse up to N compatible queued tasks "
            "into one lane-batched co-simulation per pool slot "
            "(default: 1, no batching)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="CYCLES",
        help=(
            "write a resumable kernel checkpoint every N executed cycles "
            "(default: 0, disabled; requires --checkpoint-dir)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", default="", metavar="DIR",
        help="directory of the per-task checkpoint store",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="log accepted jobs and lifecycle events to stderr",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.checkpoint_every < 0:
        parser.error("--checkpoint-every must be >= 0")
    if args.checkpoint_every and not args.checkpoint_dir:
        parser.error("--checkpoint-every requires --checkpoint-dir")
    config = ServiceConfig(
        jobs=max(1, args.jobs),
        cache_dir=None if args.no_cache else args.cache_dir,
        engine=args.engine,
        checkpoint_every_cycles=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        batch_lanes=max(1, args.batch_lanes),
    )
    daemon = ServiceDaemon(args.socket, config, quiet=not args.verbose)

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, daemon._shutdown.set)
        await daemon.run()

    asyncio.run(_run())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
