"""Clients of the sweep-service daemon.

Three levels, thinnest first:

* :class:`ServiceClient` — the asyncio protocol client (one connection
  per operation, events surfaced as they stream in).
* :func:`submit_sync` — the blocking convenience behind
  :func:`repro.api.submit`: run a task list on a daemon and get results
  keyed by task, exactly like a local :func:`repro.api.sweep`.
* :class:`ServiceRunner` — an :class:`~repro.parallel.runner.ExperimentRunner`
  drop-in whose :meth:`~ServiceRunner.run` executes on the daemon, so
  the figure experiments (and the CLI via ``--service``) work unchanged
  against a shared resident service, including its cross-client cache
  and coalescing.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..parallel.runner import ExperimentRunner, SimulationTask
from .wire import WireError, decode_line, encode_line, task_to_wire

__all__ = ["ServiceClient", "ServiceError", "ServiceRunner", "submit_sync"]


class ServiceError(RuntimeError):
    """The daemon reported a protocol or execution error."""


class ServiceClient:
    """Asyncio client of one daemon socket (see module docstring)."""

    def __init__(self, socket_path: str) -> None:
        self.socket_path = socket_path

    async def _roundtrip(self, message: Dict[str, Any]) -> Dict[str, Any]:
        reader, writer = await asyncio.open_unix_connection(self.socket_path)
        try:
            writer.write(encode_line(message))
            await writer.drain()
            line = await reader.readline()
            if not line:
                raise ServiceError("daemon closed the connection without replying")
            reply = decode_line(line)
            if reply is None or not reply.get("ok", False):
                raise ServiceError(str((reply or {}).get("error", "empty reply")))
            return reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def ping(self) -> bool:
        """True iff a daemon answers on the socket."""
        reply = await self._roundtrip({"op": "ping"})
        return bool(reply.get("pong"))

    async def status(self) -> Dict[str, Any]:
        """The daemon's queue occupancy and lifetime counters."""
        return await self._roundtrip({"op": "status"})

    async def shutdown(self) -> None:
        """Ask the daemon to stop (running tasks finish first)."""
        await self._roundtrip({"op": "shutdown"})

    async def submit(
        self,
        tasks: Sequence[SimulationTask],
        priority: str = "bulk",
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Run ``tasks`` on the daemon; blocks until the job finishes.

        Returns the terminal event (its ``executed`` / ``cached`` /
        ``coalesced`` counters included) with the accumulated results
        under ``"results"``, keyed by task cache key.  ``on_event`` sees
        every streamed event as it arrives (progress reporting).  Raises
        :class:`ServiceError` if the daemon rejects the job or any task
        fails.
        """
        reader, writer = await asyncio.open_unix_connection(self.socket_path)
        results: Dict[str, Dict[str, Any]] = {}
        failures: List[str] = []
        try:
            writer.write(
                encode_line(
                    {
                        "op": "submit",
                        "tasks": [task_to_wire(task) for task in tasks],
                        "priority": priority,
                    }
                )
            )
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    raise ServiceError("daemon closed the stream before the job finished")
                event = decode_line(line)
                if event is None:
                    continue
                if not event.get("ok", False):
                    raise ServiceError(str(event.get("error", "daemon error")))
                if on_event is not None:
                    on_event(event)
                kind = event.get("event")
                if kind == "task":
                    results[event["key"]] = event["result"]
                elif kind == "task_failed":
                    failures.append(f"{event.get('label')}: {event.get('error')}")
                elif kind in ("done", "failed"):
                    if failures:
                        raise ServiceError(
                            f"{len(failures)} task(s) failed: " + "; ".join(failures)
                        )
                    event["results"] = results
                    return event
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass


def submit_sync(
    tasks: Sequence[SimulationTask],
    socket_path: str,
    priority: str = "bulk",
    timeout: Optional[float] = None,
) -> Dict[SimulationTask, Any]:
    """Blocking submit: results keyed by the submitted task objects.

    The synchronous twin of :meth:`ServiceClient.submit` (and the
    implementation of :func:`repro.api.submit`); must be called from
    outside any running event loop.
    """
    from ..metrics.saturation import LoadPointSummary

    async def _go() -> Dict[str, Any]:
        client = ServiceClient(socket_path)
        call = client.submit(tasks, priority=priority)
        if timeout is not None:
            return await asyncio.wait_for(call, timeout)
        return await call

    terminal = asyncio.run(_go())
    payloads = terminal["results"]
    out: Dict[SimulationTask, Any] = {}
    for task in tasks:
        if task in out:
            continue
        payload = payloads.get(task.cache_key())
        if payload is None:
            raise ServiceError(f"daemon returned no result for task {task.label!r}")
        out[task] = LoadPointSummary.from_dict(payload)
    return out


class ServiceRunner(ExperimentRunner):
    """An experiment runner that executes on a sweep-service daemon.

    Drop-in for the places that accept an
    :class:`~repro.parallel.runner.ExperimentRunner` (figure modules,
    ``run_scenario``, the CLI): :meth:`run` ships the task batch to the
    daemon and maps the streamed results back.  The local result cache
    is bypassed — the *daemon's* cache is the shared one — and the hit /
    executed counters mirror the daemon's terminal event so
    ``summary_line()`` stays meaningful.  Per-phase profiling cannot
    cross the socket, so ``profile`` is rejected.
    """

    def __init__(
        self,
        socket_path: str,
        priority: str = "bulk",
        show_progress: bool = False,
        timeout: Optional[float] = None,
    ) -> None:
        super().__init__(jobs=1, cache_dir=None, show_progress=show_progress)
        self.socket_path = socket_path
        self.priority = priority
        self.timeout = timeout

    def run(
        self, tasks: Sequence[SimulationTask]
    ) -> Dict[SimulationTask, Any]:
        from ..metrics.saturation import LoadPointSummary

        task_list = list(tasks)

        def on_event(event: Dict[str, Any]) -> None:
            if self.show_progress and event.get("event") == "task":
                import sys

                print(
                    f"[service] {event.get('completed')}/{event.get('total')} "
                    f"{event.get('label')} ({event.get('source')})",
                    file=sys.stderr,
                    flush=True,
                )

        async def _go() -> Dict[str, Any]:
            client = ServiceClient(self.socket_path)
            call = client.submit(task_list, priority=self.priority, on_event=on_event)
            if self.timeout is not None:
                return await asyncio.wait_for(call, self.timeout)
            return await call

        terminal = asyncio.run(_go())
        self.tasks_executed += int(terminal.get("executed", 0))
        self.cache_hits += int(terminal.get("cached", 0)) + int(
            terminal.get("coalesced", 0)
        )
        self.cache_misses += int(terminal.get("executed", 0))
        payloads = terminal["results"]
        out: Dict[SimulationTask, Any] = {}
        for task in task_list:
            if task not in out:
                out[task] = LoadPointSummary.from_dict(payloads[task.cache_key()])
        return out
