"""The sweep-service daemon: NDJSON over a local Unix socket.

``python -m repro.service --socket PATH`` runs one
:class:`~repro.service.jobs.SweepService` behind a line-oriented protocol.
Every request is one JSON object on one line; every response line is one
JSON object with an ``"ok"`` or ``"event"`` field.

Operations:

``{"op": "submit", "tasks": [...], "priority": "bulk"}``
    Run explicit tasks (wire form, see :mod:`repro.service.wire`).  The
    daemon streams the job's events — ``accepted``, one ``task`` per
    distinct task (carrying the result summary and its ``source``:
    ``cache`` / ``run`` / ``coalesced``), and a terminal ``done`` /
    ``failed`` — then closes the connection.

``{"op": "submit", "scenario": {...} | "builtin": "fig2", "fidelity": "fast"}``
    Same, but the daemon compiles the task list from a scenario document
    (or a built-in scenario name) via :func:`repro.api.compile_scenario`.

``{"op": "status"}`` / ``{"op": "ping"}``
    One response line with queue occupancy / liveness.

``{"op": "shutdown"}``
    Acknowledge and stop the daemon (running tasks finish first; with
    checkpointing enabled, killed tasks resume on the next daemon).

A malformed request gets ``{"ok": false, "error": ...}`` and the
connection is closed; the daemon itself never dies from client input.
"""

from __future__ import annotations

import asyncio
import os
import sys
from typing import Any, Dict, List, Optional

from ..parallel.runner import SimulationTask
from .jobs import ServiceConfig, SweepService
from .wire import WireError, decode_line, encode_line, task_from_wire

__all__ = ["ServiceDaemon"]


class ServiceDaemon:
    """One service instance listening on one Unix socket."""

    def __init__(
        self,
        socket_path: str,
        config: Optional[ServiceConfig] = None,
        quiet: bool = True,
    ) -> None:
        self.socket_path = socket_path
        self.service = SweepService(config)
        self.quiet = quiet
        self._shutdown = asyncio.Event()

    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[service] {message}", file=sys.stderr, flush=True)

    async def run(self, ready: Optional[asyncio.Event] = None) -> None:
        """Serve until a ``shutdown`` request (or task cancellation)."""
        await self.service.start()
        # A socket file left by a killed daemon would make bind fail; the
        # checkpoint/result stores, not the socket, carry all durable state.
        try:
            os.unlink(self.socket_path)
        except FileNotFoundError:
            pass
        server = await asyncio.start_unix_server(self._serve, path=self.socket_path)
        self._log(f"listening on {self.socket_path}")
        if ready is not None:
            ready.set()
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self.service.stop()
            try:
                os.unlink(self.socket_path)
            except FileNotFoundError:
                pass
            self._log("stopped")

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                message = decode_line(line)
                if message is None:
                    raise WireError("empty request")
                await self._handle(message, writer)
            except WireError as error:
                writer.write(encode_line({"ok": False, "error": str(error)}))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-stream; the job keeps running
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        op = message.get("op")
        if op == "ping":
            writer.write(encode_line({"ok": True, "pong": True}))
            await writer.drain()
        elif op == "status":
            status = await self.service.status()
            writer.write(encode_line({"ok": True, **status}))
            await writer.drain()
        elif op == "shutdown":
            writer.write(encode_line({"ok": True, "stopping": True}))
            await writer.drain()
            self._log("shutdown requested")
            self._shutdown.set()
        elif op == "submit":
            await self._submit(message, writer)
        else:
            raise WireError(f"unknown op {op!r}")

    async def _submit(self, message: Dict[str, Any], writer: asyncio.StreamWriter) -> None:
        tasks = self._resolve_tasks(message)
        priority = message.get("priority", "bulk")
        if priority not in ("interactive", "bulk"):
            raise WireError(f"unknown priority {priority!r}")
        job = await self.service.submit(tasks, priority=priority)
        self._log(f"job {job.job_id}: {len(tasks)} task(s), priority={priority}")
        async for event in job.stream():
            writer.write(encode_line({"ok": True, **event.as_dict()}))
            await writer.drain()

    def _resolve_tasks(self, message: Dict[str, Any]) -> List[SimulationTask]:
        given = [k for k in ("tasks", "scenario", "builtin") if message.get(k) is not None]
        if len(given) != 1:
            raise WireError("submit needs exactly one of: tasks, scenario, builtin")
        if given[0] == "tasks":
            raw = message["tasks"]
            if not isinstance(raw, list) or not raw:
                raise WireError("tasks must be a non-empty list")
            return [task_from_wire(item) for item in raw]
        from ..api import compile_scenario
        from ..scenario import ScenarioError

        source = message[given[0]]
        fidelity = message.get("fidelity")
        try:
            return compile_scenario(source, fidelity=fidelity)
        except (ScenarioError, OSError, KeyError, TypeError, ValueError) as error:
            raise WireError(f"invalid scenario: {error}") from None
