"""The asyncio sweep service: job queue, dedupe, coalescing, priorities.

One :class:`SweepService` instance owns a worker pool and a shared result
cache and serves any number of concurrently submitted *jobs* (task
lists).  Each submitted task takes exactly one of three paths:

* **cache** — its content-hash key is already in the result cache: the
  stored summary is delivered immediately, nothing runs.
* **coalesced** — an identical task (same key) is already queued or
  running for an earlier job: the job subscribes to that single
  execution instead of spawning a second one.
* **run** — the task is genuinely new: it enters the priority queue and
  eventually executes on the pool.

Scheduling is two-level at task granularity: every ``"interactive"``
task is dispatched before any *queued* ``"bulk"`` task, regardless of
arrival order (an already-running bulk task is never killed — with
checkpointing enabled it would be resumable, but letting it finish its
slot is both simpler and never slower than re-running the prefix).
Joining an in-flight queued task from an interactive job promotes the
task's priority.

Everything here runs on the event loop — submissions, dispatch and
result fan-out are single-threaded, so there are no locks; only
:func:`repro.parallel.runner.execute_task_batch` runs on pool workers
(with ``batch_lanes > 1`` and the vector engine, one pool slot may
lane-batch several compatible queued tasks into a single fused
co-simulation — results stay bit-identical and cache keys unchanged).
With
the checkpoint knobs set, workers persist resumable kernel checkpoints
keyed by task (see :mod:`repro.parallel.checkpoints`), so a crashed or
killed attempt's successor resumes from the last checkpoint
bit-identically instead of starting over.
"""

from __future__ import annotations

import asyncio
import heapq
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from enum import Enum
from functools import partial
from typing import Any, AsyncIterator, Dict, List, Optional, Sequence, Set, Tuple

from ..parallel.cache import ResultCache
from ..parallel.runner import (
    TASK_SCHEMA_VERSION,
    SimulationTask,
    _task_batchable,
    execute_task,
    execute_task_batch,
)

__all__ = [
    "JobEvent",
    "JobHandle",
    "JobState",
    "PRIORITIES",
    "ServiceConfig",
    "SweepService",
]

#: Priority name → heap rank (lower dispatches first).
PRIORITIES: Dict[str, int] = {"interactive": 0, "bulk": 1}


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one :class:`SweepService` instance."""

    #: Maximum concurrently executing tasks (pool width).
    jobs: int = 1
    #: Result-cache directory; ``None`` disables the cache (every task
    #: runs, and nothing is remembered between submissions).
    cache_dir: Optional[str] = None
    #: Kernel execution path for every task (``"scalar"`` / ``"vector"``).
    engine: str = "scalar"
    #: Checkpoint cadence in cycles; ``0`` disables checkpointing.
    checkpoint_every_cycles: int = 0
    #: Checkpoint-store directory; must be set for checkpointing to engage.
    checkpoint_dir: str = ""
    #: Fuse up to this many compatible queued tasks into one lane-batched
    #: vector execution per pool slot (see :mod:`repro.noc.lanes`).  Only
    #: engages with ``engine="vector"`` and checkpointing off; ``1``
    #: dispatches every task solo, exactly as before.
    batch_lanes: int = 1
    #: Run tasks on worker *processes* (true parallelism) instead of the
    #: loop's thread pool.  ``None`` picks processes iff ``jobs > 1``.
    use_processes: Optional[bool] = None


class JobState(str, Enum):
    """Lifecycle of one submitted job."""

    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass(frozen=True)
class JobEvent:
    """One progress event of one job (``as_dict`` is the wire form)."""

    kind: str
    data: Dict[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        return {"event": self.kind, **self.data}


class JobHandle:
    """A submitted job: live event stream, accumulated results, counters.

    Results are keyed by task cache key in :attr:`results` (the wire
    keying); :meth:`summaries` maps them back to the submitted task
    objects.  The counters split the job's unique tasks by path:
    ``cached`` + ``coalesced`` + ``executed`` + ``failed`` equals the
    number of distinct tasks once the job is done.
    """

    def __init__(self, job_id: int, tasks: Sequence[SimulationTask]) -> None:
        self.job_id = job_id
        self.tasks: Tuple[SimulationTask, ...] = tuple(tasks)
        self.state = JobState.RUNNING
        self.events: "asyncio.Queue[JobEvent]" = asyncio.Queue()
        self.results: Dict[str, Dict[str, Any]] = {}
        self.errors: Dict[str, str] = {}
        self.cached = 0
        self.coalesced = 0
        self.executed = 0
        self.failed = 0
        self.done = asyncio.Event()
        self._pending: Set[str] = set()

    @property
    def total_unique(self) -> int:
        return len(self.results) + len(self.errors) + len(self._pending)

    async def wait(self) -> Dict[str, Dict[str, Any]]:
        """Block until the job finishes; returns results by cache key."""
        await self.done.wait()
        return self.results

    async def stream(self) -> AsyncIterator[JobEvent]:
        """Yield progress events in order, ending after the terminal one."""
        while True:
            event = await self.events.get()
            yield event
            if event.kind in ("done", "failed"):
                return

    def summaries(self) -> Dict[SimulationTask, Any]:
        """Completed results keyed by the submitted task objects."""
        from ..metrics.saturation import LoadPointSummary

        out: Dict[SimulationTask, Any] = {}
        for task in self.tasks:
            payload = self.results.get(task.cache_key())
            if payload is not None and task not in out:
                out[task] = LoadPointSummary.from_dict(payload)
        return out

    # -- service-side plumbing (event-loop thread only) -----------------

    def _emit(self, kind: str, **data: Any) -> None:
        self.events.put_nowait(JobEvent(kind, {"job": self.job_id, **data}))

    def _deliver(self, key: str, label: str, payload: Dict[str, Any], source: str) -> None:
        self._pending.discard(key)
        self.results[key] = payload
        if source == "cache":
            self.cached += 1
        elif source == "coalesced":
            self.coalesced += 1
        else:
            self.executed += 1
        self._emit(
            "task",
            key=key,
            label=label,
            source=source,
            result=payload,
            completed=len(self.results) + len(self.errors),
            total=self.total_unique,
        )
        self._maybe_finish()

    def _fail(self, key: str, label: str, error: str) -> None:
        self._pending.discard(key)
        self.errors[key] = error
        self.failed += 1
        self._emit("task_failed", key=key, label=label, error=error)
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self._pending or self.done.is_set():
            return
        self.state = JobState.FAILED if self.errors else JobState.DONE
        self._emit(
            "failed" if self.errors else "done",
            executed=self.executed,
            cached=self.cached,
            coalesced=self.coalesced,
            failed=self.failed,
        )
        self.done.set()


class _Entry:
    """One distinct in-flight task and the jobs subscribed to it."""

    __slots__ = ("key", "task", "rank", "seq", "state", "jobs")

    def __init__(self, key: str, task: SimulationTask, rank: int, seq: int) -> None:
        self.key = key
        self.task = task
        self.rank = rank
        self.seq = seq
        self.state = "queued"  # -> "running"
        #: Subscribed jobs in attach order; the first is the originator
        #: (counted as ``executed``), the rest coalesced onto it.
        self.jobs: List[JobHandle] = []


class SweepService:
    """See the module docstring.  Construct, :meth:`start`, :meth:`submit`."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        if self.config.engine not in ("scalar", "vector"):
            raise ValueError(f"unknown engine {self.config.engine!r}")
        self.cache: Optional[ResultCache] = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self._inflight: Dict[str, _Entry] = {}
        self._heap: List[Tuple[int, int, _Entry]] = []
        self._seq = 0
        self._job_seq = 0
        self._running = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._wake: Optional[asyncio.Event] = None
        self._stopping = False
        self.total_executed = 0
        self.total_cached = 0
        self.total_coalesced = 0
        self.total_failed = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatcher (must run inside the event loop)."""
        if self._dispatcher is not None:
            raise RuntimeError("service already started")
        use_processes = self.config.use_processes
        if use_processes is None:
            use_processes = self.config.jobs > 1
        if use_processes:
            self._pool = ProcessPoolExecutor(max_workers=self.config.jobs)
        self._wake = asyncio.Event()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop dispatching and release the pool (running tasks finish)."""
        self._stopping = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Submission.
    # ------------------------------------------------------------------

    async def submit(
        self, tasks: Sequence[SimulationTask], priority: str = "bulk"
    ) -> JobHandle:
        """Queue one job; returns immediately with its live handle."""
        if self._wake is None:
            raise RuntimeError("service not started")
        try:
            rank = PRIORITIES[priority]
        except KeyError:
            known = ", ".join(sorted(PRIORITIES))
            raise ValueError(f"unknown priority {priority!r}; known: {known}") from None

        self._job_seq += 1
        job = JobHandle(self._job_seq, tasks)

        unique: List[SimulationTask] = []
        seen: Set[str] = set()
        for task in tasks:
            key = task.cache_key()
            if key not in seen:
                seen.add(key)
                unique.append(task)

        hits: List[Tuple[SimulationTask, Dict[str, Any]]] = []
        for task in unique:
            key = task.cache_key()
            payload = self._cache_get(key)
            if payload is not None:
                # Hit keys go through _pending too, so the job cannot
                # finish mid-way through delivering its own cache hits.
                job._pending.add(key)
                hits.append((task, payload))
                continue
            job._pending.add(key)
            entry = self._inflight.get(key)
            if entry is not None:
                entry.jobs.append(job)
                if entry.state == "queued" and rank < entry.rank:
                    # Promotion: re-push at the better rank; the stale
                    # heap record is skipped on pop (rank mismatch).
                    entry.rank = rank
                    heapq.heappush(self._heap, (rank, entry.seq, entry))
                continue
            self._seq += 1
            entry = _Entry(key, task, rank, self._seq)
            entry.jobs.append(job)
            self._inflight[key] = entry
            heapq.heappush(self._heap, (rank, entry.seq, entry))

        job._emit(
            "accepted",
            tasks=len(tasks),
            unique=len(unique),
            cached=len(hits),
            priority=priority,
        )
        # Cache hits are delivered after "accepted" so subscribers always
        # see the job header first.
        for task, payload in hits:
            self.total_cached += 1
            job._deliver(task.cache_key(), task.label, payload, "cache")
        job._maybe_finish()
        self._wake.set()
        return job

    async def status(self) -> Dict[str, Any]:
        """Queue/pool occupancy and lifetime counters."""
        running = sum(1 for e in self._inflight.values() if e.state == "running")
        return {
            "queued": len(self._inflight) - running,
            "running": running,
            "jobs": self.config.jobs,
            "engine": self.config.engine,
            "executed": self.total_executed,
            "cached": self.total_cached,
            "coalesced": self.total_coalesced,
            "failed": self.total_failed,
            "checkpoint_every_cycles": self.config.checkpoint_every_cycles,
        }

    # ------------------------------------------------------------------
    # Dispatch and execution (event-loop internal).
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wake is not None
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._running < self.config.jobs and self._heap:
                rank, _seq, entry = heapq.heappop(self._heap)
                if entry.state != "queued" or rank != entry.rank:
                    continue  # stale record of a promoted/started entry
                batch = [entry]
                batch.extend(self._gather_companions(entry))
                for member in batch:
                    member.state = "running"
                self._running += 1  # a whole batch occupies one pool slot
                asyncio.get_running_loop().create_task(self._execute_batch(batch))

    def _gather_companions(self, entry: _Entry) -> List[_Entry]:
        """Queued entries fusable with ``entry`` into one lane batch.

        Companions must share the leader's priority rank (an interactive
        leader never drags bulk work into its slot, and vice versa) and
        its effective system configuration, and be lane-batchable at all
        (wired fabric, no fault plan).  Their stale heap records are left
        in place; the pop-side state check skips them.
        """
        config = self.config
        if (
            config.batch_lanes <= 1
            or config.engine != "vector"
            or (config.checkpoint_every_cycles > 0 and config.checkpoint_dir)
            or not _task_batchable(entry.task)
        ):
            return []
        group = entry.task.effective_config()
        companions: List[_Entry] = []
        for rank, _seq, candidate in sorted(self._heap):
            if len(companions) + 1 >= config.batch_lanes:
                break
            if (
                candidate.state == "queued"
                and rank == candidate.rank
                and rank == entry.rank
                and _task_batchable(candidate.task)
                and candidate.task.effective_config() == group
            ):
                companions.append(candidate)
        return companions

    async def _execute_batch(self, batch: List[_Entry]) -> None:
        loop = asyncio.get_running_loop()
        config = self.config
        if len(batch) == 1:
            # Solo dispatch stays on execute_task so behaviour (and the
            # checkpoint/resume path) is byte-for-byte the pre-batching one.
            call = partial(
                execute_task,
                batch[0].task,
                False,  # profile
                config.engine,
                config.checkpoint_every_cycles,
                config.checkpoint_dir,
            )
        else:
            call = partial(
                execute_task_batch,
                [entry.task for entry in batch],
                False,  # profile
                config.engine,
                config.checkpoint_every_cycles,
                config.checkpoint_dir,
            )
        try:
            result = await loop.run_in_executor(self._pool, call)
            payloads = [result] if len(batch) == 1 else result
        except Exception as error:  # noqa: BLE001 - forwarded to subscribers
            message = f"{type(error).__name__}: {error}"
            for entry in batch:
                self.total_failed += 1
                for job in entry.jobs:
                    job._fail(entry.key, entry.task.label, message)
        else:
            for entry, payload in zip(batch, payloads):
                self._cache_put(entry.key, entry.task, payload)
                for index, job in enumerate(entry.jobs):
                    source = "run" if index == 0 else "coalesced"
                    if index == 0:
                        self.total_executed += 1
                    else:
                        self.total_coalesced += 1
                    job._deliver(entry.key, entry.task.label, payload, source)
        finally:
            self._running -= 1
            for entry in batch:
                del self._inflight[entry.key]
            if self._wake is not None:
                self._wake.set()

    # ------------------------------------------------------------------
    # Cache plumbing (same entry format as ExperimentRunner's).
    # ------------------------------------------------------------------

    def _cache_get(self, key: str) -> Optional[Dict[str, Any]]:
        if self.cache is None:
            return None
        payload = self.cache.get(key)
        if not payload or not isinstance(payload.get("result"), dict):
            return None
        return payload["result"]

    def _cache_put(self, key: str, task: SimulationTask, payload: Dict[str, Any]) -> None:
        if self.cache is None:
            return
        self.cache.put(
            key,
            {"version": TASK_SCHEMA_VERSION, "label": task.label, "result": payload},
        )
