"""Typed wire codec for the sweep-service protocol.

The daemon and its clients exchange newline-delimited JSON.  Tasks cross
the socket as the same canonical mapping the cache hashes
(:func:`repro.parallel.hashing.to_jsonable`), so a task round-tripped
through the wire has, by construction, the same cache key as the original
— the property the service's dedupe and coalescing correctness rests on
(asserted in ``tests/test_service.py``).

Decoding is generic over the frozen-dataclass configuration tree
(``SystemConfig`` → ``NetworkConfig`` → ``WirelessConfig`` /
``Technology``): field types come from :func:`typing.get_type_hints`, so
adding a configuration field never needs a codec change.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Union, get_args, get_origin, get_type_hints

from ..parallel.hashing import to_jsonable
from ..parallel.runner import SimulationTask

__all__ = [
    "WireError",
    "decode_dataclass",
    "decode_line",
    "encode_line",
    "task_from_wire",
    "task_to_wire",
]


class WireError(ValueError):
    """A message that does not decode to the expected shape."""


def _decode_value(hint: Any, value: Any, path: str) -> Any:
    """Decode one JSON value against a type hint (see module docstring)."""
    origin = get_origin(hint)
    if origin is Union:  # Optional[X] is Union[X, None]
        args = [a for a in get_args(hint) if a is not type(None)]
        if value is None:
            return None
        if len(args) == 1:
            return _decode_value(args[0], value, path)
        return value
    if isinstance(hint, type) and issubclass(hint, Enum):
        try:
            return hint(value)
        except ValueError as error:
            raise WireError(f"{path}: {error}") from None
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        if not isinstance(value, Mapping):
            raise WireError(f"{path}: expected a mapping, got {type(value).__name__}")
        return decode_dataclass(hint, value, path)
    if hint is float and isinstance(value, int):
        return float(value)
    if isinstance(hint, type) and not isinstance(value, hint):
        # bool is an int subclass; everything else must match exactly.
        if not (hint is int and isinstance(value, bool) is False and isinstance(value, int)):
            raise WireError(
                f"{path}: expected {hint.__name__}, got {type(value).__name__}"
            )
    return value


def decode_dataclass(cls: type, payload: Mapping, path: str = "") -> Any:
    """Rebuild a (possibly nested) dataclass from its ``to_jsonable`` form.

    Unknown keys are rejected — the wire format is exactly the dataclass's
    field set, so a typo'd or stale field fails loudly instead of being
    silently dropped (and silently changing the task's cache key).
    """
    prefix = f"{path}." if path else ""
    hints = get_type_hints(cls)
    fields = {f.name: f for f in dataclasses.fields(cls)}
    unknown = sorted(set(payload) - set(fields))
    if unknown:
        raise WireError(f"{path or cls.__name__}: unknown field(s) {unknown}")
    kwargs: Dict[str, Any] = {}
    for name, field in fields.items():
        if name not in payload:
            continue  # absent optional fields keep their defaults
        kwargs[name] = _decode_value(hints[name], payload[name], f"{prefix}{name}")
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as error:
        raise WireError(f"{path or cls.__name__}: {error}") from None


def task_to_wire(task: SimulationTask) -> Dict[str, Any]:
    """The canonical JSON mapping of one task (cache-key-identical)."""
    return to_jsonable(task)


def task_from_wire(payload: Mapping) -> SimulationTask:
    """Rebuild a :class:`SimulationTask` from :func:`task_to_wire` output."""
    return decode_dataclass(SimulationTask, payload, "task")


def encode_line(message: Mapping[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    return (json.dumps(to_jsonable(message), sort_keys=True) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Parse one protocol line; ``None`` for blank lines.

    Raises :class:`WireError` on malformed JSON or a non-mapping payload,
    so the daemon can answer with a protocol error instead of dying.
    """
    text = line.decode("utf-8", errors="replace").strip()
    if not text:
        return None
    try:
        message = json.loads(text)
    except json.JSONDecodeError as error:
        raise WireError(f"malformed JSON: {error}") from None
    if not isinstance(message, dict):
        raise WireError(f"expected a JSON object, got {type(message).__name__}")
    return message
