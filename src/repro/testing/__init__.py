"""Small, fast system configurations shared by tests, benchmarks and docs.

These helpers build deliberately tiny systems (a few cores per chip, short
packets) that still exercise every architecture and code path of the
cycle-accurate simulator, so a full run takes milliseconds.  They live in
the package — rather than in a ``conftest.py`` — so the test suite, the
orchestration-layer tests and the documentation examples can all import
them unambiguously (``from repro.testing import small_system_config``).

:mod:`repro.testing.legacy` holds the deprecated object-era spellings of
the hot data-plane interfaces (``PendingTransmission`` dataclasses, the
``MacAdapter`` protocol and its bridge, the ``may_send`` /
``on_flit_sent`` wrapper helpers) for unit tests and external callers;
production code speaks only the handle-based interfaces on
:class:`repro.noc.fabric.Fabric` and
:class:`repro.wireless.mac.MacProtocol`.
"""

from __future__ import annotations

from ..core.config import Architecture, SystemConfig
from ..noc.config import NetworkConfig, WirelessConfig

__all__ = ["small_network_config", "small_system_config"]


def small_network_config(
    mac: str = "control_packet", packet_length: int = 8
) -> NetworkConfig:
    """A small-but-complete NoC configuration for fast tests."""
    return NetworkConfig(
        virtual_channels=4,
        buffer_depth_flits=4,
        packet_length_flits=packet_length,
        wireless=WirelessConfig(mac=mac, num_channels=2),
    )


def small_system_config(
    architecture: Architecture = Architecture.WIRELESS,
    num_chips: int = 2,
    cores_per_chip: int = 4,
    num_memory_stacks: int = 2,
    mac: str = "control_packet",
    packet_length: int = 8,
) -> SystemConfig:
    """A 2-chip, 2-stack system that still exercises every architecture."""
    return SystemConfig(
        architecture=architecture,
        num_chips=num_chips,
        cores_per_chip=cores_per_chip,
        num_memory_stacks=num_memory_stacks,
        vaults_per_stack=2,
        cores_per_wi=4,
        total_processing_area_mm2=100.0,
        network=small_network_config(mac=mac, packet_length=packet_length),
    )
