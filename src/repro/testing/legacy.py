"""Deprecated object-era spellings of the hot data-plane interfaces.

.. deprecated::
    Everything in this module exists for unit tests and external callers
    that still speak the pre-handle object API.  Production code uses the
    hot interfaces only — :meth:`repro.noc.fabric.Fabric.grants` /
    :meth:`~repro.noc.fabric.Fabric.notify_sent` for fabrics,
    :meth:`repro.wireless.mac.MacProtocol.grants` /
    :meth:`~repro.wireless.mac.MacProtocol.notify_sent` for MACs, and the
    scratch-array pending scan
    (:meth:`repro.wireless.mac.MacDataPlane.scan_pending`).  New code
    should call those directly; nothing here is re-exported from the
    ``repro.wireless`` or ``repro.noc`` packages.

What lives here:

* :class:`PendingTransmission` — one scratch-array row of the hot
  pending scan as a frozen dataclass.
* :class:`MacAdapter` — the legacy object view a scripted test hands to
  a :class:`~repro.wireless.mac.MacProtocol`; the protocol bridges it
  onto the hot interface automatically.
* :class:`LegacyAdapterBridge` — that bridge: adapts a ``MacAdapter``
  (or re-wraps a native :class:`~repro.wireless.mac.MacDataPlane`
  through the dataclass spelling, which is how the wrapper-parity tests
  prove the two paths bit-identical).
* :func:`pending_transmissions` — a hot plane's scan rows as
  dataclasses (the old ``WirelessFabric.pending``).
* :func:`fabric_may_send` / :func:`fabric_on_flit_sent` and
  :func:`mac_may_send` / :func:`mac_on_flit_sent` — the old object /
  wrapper method spellings as free functions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List

from ..wireless.mac.base import MacDataPlane

__all__ = [
    "LegacyAdapterBridge",
    "MacAdapter",
    "PendingTransmission",
    "fabric_may_send",
    "fabric_on_flit_sent",
    "mac_may_send",
    "mac_on_flit_sent",
    "pending_transmissions",
]


@dataclass(frozen=True)
class PendingTransmission:
    """One VC's worth of traffic waiting at a WI for the wireless channel.

    Legacy object spelling of one scratch-array row of the hot scan;
    never built on the per-cycle path.
    """

    dst_switch: int
    packet_id: int
    buffered_flits: int
    packet_length_flits: int
    front_is_head: bool
    #: Flits of the packet that still have to cross this wireless hop
    #: (buffered ones plus those still streaming into the WI switch).  The
    #: transmitting WI knows this from the packet header, so the control
    #: packet can announce the full remainder rather than only the flits
    #: buffered at planning time.
    remaining_flits: int = 0


class MacAdapter(abc.ABC):
    """Legacy object view of the surrounding system (unit tests only).

    Production code implements
    :class:`~repro.wireless.mac.MacDataPlane` instead; any ``MacAdapter``
    handed to a :class:`~repro.wireless.mac.MacProtocol` is wrapped in a
    :class:`LegacyAdapterBridge` automatically.
    """

    @abc.abstractmethod
    def pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        """Traffic currently waiting at a WI for the wireless channel."""

    @abc.abstractmethod
    def record_control_energy(self, energy_pj: float) -> None:
        """Charge the energy of a MAC control packet / token broadcast."""

    @abc.abstractmethod
    def acceptable_flits(self, dst_switch: int, packet_id: int, is_head: bool) -> int:
        """How many flits of a packet the destination WI can buffer right now."""


def pending_transmissions(
    plane: MacDataPlane, wi_switch_id: int
) -> List[PendingTransmission]:
    """A hot plane's scan rows as dataclasses (the old ``fabric.pending``).

    Runs :meth:`~repro.wireless.mac.MacDataPlane.scan_pending` and
    materialises the scratch rows; like any scan, it invalidates the
    previous scan's rows.
    """
    count = plane.scan_pending(wi_switch_id)
    return [
        PendingTransmission(
            dst_switch=plane.pend_dst[row],
            packet_id=plane.pend_pid[row],
            buffered_flits=plane.pend_buffered[row],
            packet_length_flits=plane.pend_length[row],
            front_is_head=bool(plane.pend_head[row]),
            remaining_flits=plane.pend_remaining[row],
        )
        for row in range(count)
    ]


class LegacyAdapterBridge(MacDataPlane):
    """Adapts a legacy :class:`MacAdapter` onto the hot scan interface.

    Also accepts a native :class:`~repro.wireless.mac.MacDataPlane`, whose
    scan is then routed through the :class:`PendingTransmission` dataclass
    spelling and back — the round trip the wrapper-parity test matrix uses
    to prove the object path bit-identical to the hot path.
    """

    def __init__(self, adapter) -> None:
        self.adapter = adapter
        self.pend_dst: List[int] = []
        self.pend_pid: List[int] = []
        self.pend_buffered: List[int] = []
        self.pend_length: List[int] = []
        self.pend_remaining: List[int] = []
        self.pend_head: List[int] = []

    def _pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        pending = getattr(self.adapter, "pending", None)
        if pending is not None:
            return pending(wi_switch_id)
        return pending_transmissions(self.adapter, wi_switch_id)

    def scan_pending(self, wi_switch_id: int) -> int:
        entries = self._pending(wi_switch_id)
        if len(entries) > len(self.pend_dst):
            grow = len(entries) - len(self.pend_dst)
            for array in (
                self.pend_dst,
                self.pend_pid,
                self.pend_buffered,
                self.pend_length,
                self.pend_remaining,
                self.pend_head,
            ):
                array.extend([0] * grow)
        for row, entry in enumerate(entries):
            self.pend_dst[row] = entry.dst_switch
            self.pend_pid[row] = entry.packet_id
            self.pend_buffered[row] = entry.buffered_flits
            self.pend_length[row] = entry.packet_length_flits
            self.pend_remaining[row] = entry.remaining_flits
            self.pend_head[row] = 1 if entry.front_is_head else 0
        return len(entries)

    def acceptable_flits(self, dst_switch: int, packet_id: int, is_head: bool) -> int:
        return self.adapter.acceptable_flits(dst_switch, packet_id, is_head)

    def record_control_energy(self, energy_pj: float, channel_id: int = -1) -> None:
        self.adapter.record_control_energy(energy_pj)


def fabric_may_send(fabric, src_switch_id: int, packet, dst_switch_id: int, flit) -> bool:
    """Old ``Fabric.may_send`` object spelling, as a free function."""
    return fabric.grants(src_switch_id, packet.packet_id, dst_switch_id, flit.is_head)


def fabric_on_flit_sent(
    fabric, src_switch_id: int, packet, dst_switch_id: int, flit, cycle: int
) -> None:
    """Old ``Fabric.on_flit_sent`` object spelling, as a free function."""
    fabric.notify_sent(src_switch_id, packet.packet_id, dst_switch_id, flit.is_tail, cycle)


def mac_may_send(
    mac, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
) -> bool:
    """Old ``MacProtocol.may_send`` wrapper, as a free function."""
    return mac.grants(wi_switch_id, packet_id, dst_switch, is_head)


def mac_on_flit_sent(
    mac, wi_switch_id: int, packet_id: int, dst_switch: int, is_tail: bool, cycle: int
) -> None:
    """Old ``MacProtocol.on_flit_sent`` wrapper, as a free function."""
    mac.notify_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
