"""Topology construction for multichip systems with in-package memory.

The subpackage builds the physical structure the simulator runs on: intra-
chip meshes, memory-stack logic dies, and the three inter-die connectivity
overlays evaluated in the paper (substrate serial I/O, interposer extended
mesh, and the proposed wireless interconnection).
"""

from .geometry import (
    ChipPlacement,
    MemoryPlacement,
    PackageLayout,
    euclidean_mm,
    mesh_shape_for_cores,
    plan_package,
    switch_position_mm,
)
from .graph import (
    EndpointKind,
    EndpointSpec,
    LinkKind,
    LinkSpec,
    RegionKind,
    RegionSpec,
    SwitchKind,
    SwitchSpec,
    TopologyError,
    TopologyGraph,
)
from .interposer import InterposerOverlayConfig, apply_interposer_overlay
from .mesh import boundary_switches, build_processor_chip, cluster_centers, evenly_spaced
from .multichip import (
    MultichipSystem,
    build_memory_stack_die,
    build_multichip_base,
    memory_anchor_switch,
)
from .substrate import SubstrateOverlayConfig, apply_substrate_overlay
from .wireless_overlay import (
    WirelessOverlayConfig,
    apply_wireless_overlay,
    channel_assignment,
    connect_wireless_interfaces,
    max_wireless_distance_mm,
    wireless_area_overhead_mm2,
    wireless_interface_count,
)

__all__ = [
    "ChipPlacement",
    "EndpointKind",
    "EndpointSpec",
    "InterposerOverlayConfig",
    "LinkKind",
    "LinkSpec",
    "MemoryPlacement",
    "MultichipSystem",
    "PackageLayout",
    "RegionKind",
    "RegionSpec",
    "SubstrateOverlayConfig",
    "SwitchKind",
    "SwitchSpec",
    "TopologyError",
    "TopologyGraph",
    "WirelessOverlayConfig",
    "apply_interposer_overlay",
    "apply_substrate_overlay",
    "apply_wireless_overlay",
    "boundary_switches",
    "build_memory_stack_die",
    "build_multichip_base",
    "build_processor_chip",
    "channel_assignment",
    "cluster_centers",
    "connect_wireless_interfaces",
    "euclidean_mm",
    "evenly_spaced",
    "max_wireless_distance_mm",
    "memory_anchor_switch",
    "mesh_shape_for_cores",
    "plan_package",
    "switch_position_mm",
    "wireless_area_overhead_mm2",
    "wireless_interface_count",
]
