"""Physical placement helpers for the multichip package.

The default package geometry follows Fig. 1 of the paper: the processing
chips form a horizontal array on the substrate/interposer and the DRAM
stacks are mounted on both sides (left and right) of that array.  All
placement maths is concentrated here so the topology builders stay simple
and so tests can check geometric invariants (die sizes, link lengths)
independently of graph construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..energy.technology import CHIP_EDGE_MM, INTER_CHIP_GAP_MM


def mesh_shape_for_cores(num_cores: int) -> Tuple[int, int]:
    """Choose a (columns, rows) mesh shape for a chip with ``num_cores`` cores.

    The shape is the most square factorisation, preferring more rows than
    columns so that disintegrating a 64-core system into many chips keeps the
    chip-array height (and therefore the number of parallel inter-chip links)
    constant: 64 -> 8x8, 16 -> 4x4, 8 -> 2 columns x 4 rows.
    """
    if num_cores <= 0:
        raise ValueError(f"num_cores must be positive, got {num_cores}")
    rows = num_cores  # fallback for primes: a 1-wide column
    best = None
    for candidate in range(1, num_cores + 1):
        if num_cores % candidate:
            continue
        if candidate >= math.sqrt(num_cores):
            best = candidate
            break
    rows = best if best is not None else num_cores
    cols = num_cores // rows
    return cols, rows


@dataclass(frozen=True)
class ChipPlacement:
    """Placement of one processing chip in the package."""

    index: int
    origin_mm: Tuple[float, float]
    edge_mm: float
    grid_offset_x: int
    grid_offset_y: int
    mesh_cols: int
    mesh_rows: int


@dataclass(frozen=True)
class MemoryPlacement:
    """Placement of one memory stack in the package."""

    index: int
    side: str  # "top" or "bottom" of the processing chip array
    origin_mm: Tuple[float, float]
    edge_mm: float
    grid_x: int
    grid_y: int
    adjacent_chip_index: int
    adjacent_chip_column: int


@dataclass(frozen=True)
class PackageLayout:
    """Complete placement of chips and memory stacks."""

    chips: Tuple[ChipPlacement, ...]
    memories: Tuple[MemoryPlacement, ...]
    chip_edge_mm: float
    gap_mm: float

    @property
    def total_grid_columns(self) -> int:
        """Number of grid columns occupied by processing chips."""
        return sum(c.mesh_cols for c in self.chips)

    @property
    def mesh_rows(self) -> int:
        """Rows of the chip meshes (identical across chips by construction)."""
        return self.chips[0].mesh_rows if self.chips else 0


def switch_pitch_mm(edge_mm: float, mesh_cols: int, mesh_rows: int) -> float:
    """Spacing between neighbouring switches on a die."""
    return edge_mm / max(mesh_cols, mesh_rows)


def switch_position_mm(
    origin_mm: Tuple[float, float],
    edge_mm: float,
    mesh_cols: int,
    mesh_rows: int,
    col: int,
    row: int,
) -> Tuple[float, float]:
    """Physical position of the switch at (col, row) of a chip mesh."""
    pitch_x = edge_mm / mesh_cols
    pitch_y = edge_mm / mesh_rows
    return (
        origin_mm[0] + (col + 0.5) * pitch_x,
        origin_mm[1] + (row + 0.5) * pitch_y,
    )


def euclidean_mm(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    """Euclidean distance between two package positions [mm]."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def plan_package(
    num_chips: int,
    cores_per_chip: int,
    num_memory_stacks: int,
    chip_edge_mm: float = None,
    gap_mm: float = None,
    memory_edge_mm: float = None,
    total_processing_area_mm2: float = None,
) -> PackageLayout:
    """Plan the placement of every die in the package.

    Chips are laid out left-to-right; memory stacks are "mounted on both
    sides of the processing chip array" (Fig. 1): they alternate between the
    top and the bottom edge of the chip row, each stack sitting next to the
    chip it is paired with (stacks are distributed round-robin over the
    chips).  This keeps every stack one wide-I/O hop away from a processing
    chip in the wired architectures, as the paper assumes.

    If ``total_processing_area_mm2`` is given, the chip edge is derived from
    it so disintegrated configurations keep the combined active processing
    area constant, as in Section IV-C of the paper; otherwise
    ``chip_edge_mm`` (default 10 mm) is used directly.
    """
    if num_chips <= 0:
        raise ValueError(f"num_chips must be positive, got {num_chips}")
    if num_memory_stacks < 0:
        raise ValueError(
            f"num_memory_stacks must be non-negative, got {num_memory_stacks}"
        )
    gap = INTER_CHIP_GAP_MM if gap_mm is None else gap_mm
    if total_processing_area_mm2 is not None:
        edge = math.sqrt(total_processing_area_mm2 / num_chips)
    else:
        edge = CHIP_EDGE_MM if chip_edge_mm is None else chip_edge_mm
    memory_edge = edge * 0.6 if memory_edge_mm is None else memory_edge_mm

    cols, rows = mesh_shape_for_cores(cores_per_chip)

    chips: List[ChipPlacement] = []
    grid_offset = 0
    for index in range(num_chips):
        origin_x = index * (edge + gap)
        chips.append(
            ChipPlacement(
                index=index,
                origin_mm=(origin_x, 0.0),
                edge_mm=edge,
                grid_offset_x=grid_offset,
                grid_offset_y=0,
                mesh_cols=cols,
                mesh_rows=rows,
            )
        )
        grid_offset += cols

    memories: List[MemoryPlacement] = []
    for index in range(num_memory_stacks):
        chip_index = (index * num_chips) // max(1, num_memory_stacks)
        chip_index = min(chip_index, num_chips - 1)
        chip = chips[chip_index]
        side = "top" if index % 2 == 0 else "bottom"
        # Stacks paired with the same chip spread over its columns; a single
        # stack sits over the chip's central column.
        stacks_on_chip = [
            i
            for i in range(num_memory_stacks)
            if min((i * num_chips) // max(1, num_memory_stacks), num_chips - 1)
            == chip_index and (i % 2 == 0) == (index % 2 == 0)
        ]
        position_in_chip = stacks_on_chip.index(index)
        column_step = max(1, cols // (len(stacks_on_chip) + 1))
        column = min(cols - 1, (position_in_chip + 1) * column_step)
        grid_x = chip.grid_offset_x + column
        if side == "top":
            grid_y = -1 - (position_in_chip // max(1, cols))
            origin_y = -(memory_edge + gap)
        else:
            grid_y = rows + (position_in_chip // max(1, cols))
            origin_y = edge + gap
        origin_x = chip.origin_mm[0] + column * (edge / cols)
        memories.append(
            MemoryPlacement(
                index=index,
                side=side,
                origin_mm=(origin_x, origin_y),
                edge_mm=memory_edge,
                grid_x=grid_x,
                grid_y=grid_y,
                adjacent_chip_index=chip_index,
                adjacent_chip_column=column,
            )
        )

    return PackageLayout(
        chips=tuple(chips),
        memories=tuple(memories),
        chip_edge_mm=edge,
        gap_mm=gap,
    )
