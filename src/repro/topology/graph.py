"""Topology data model shared by every multichip architecture.

A :class:`TopologyGraph` describes the physical structure the cycle-accurate
simulator instantiates: switches (NoC routers) grouped into *regions*
(processing chips and memory stacks), endpoints (cores, memory vaults)
attached to switches, and links of various kinds (intra-chip mesh wires,
serial I/O, wide memory I/O, interposer traces, TSVs and wireless).

The graph is purely structural; energy/delay characterisation is attached by
the architecture factories in :mod:`repro.core.architectures` when the
simulator network is built.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Tuple


class SwitchKind(str, Enum):
    """Role of a switch in the multichip system."""

    CORE = "core"
    MEMORY = "memory"


class EndpointKind(str, Enum):
    """Role of a traffic endpoint."""

    CORE = "core"
    MEMORY_VAULT = "memory_vault"


class RegionKind(str, Enum):
    """Role of a region (die) in the package."""

    PROCESSOR_CHIP = "processor_chip"
    MEMORY_STACK = "memory_stack"


class LinkKind(str, Enum):
    """Physical implementation of a link."""

    MESH = "mesh"
    SERIAL_IO = "serial_io"
    WIDE_IO = "wide_io"
    INTERPOSER = "interposer"
    TSV = "tsv"
    WIRELESS = "wireless"


#: Link kinds that cross region (die) boundaries.
INTER_REGION_LINK_KINDS = frozenset(
    {LinkKind.SERIAL_IO, LinkKind.WIDE_IO, LinkKind.INTERPOSER, LinkKind.WIRELESS}
)


@dataclass
class SwitchSpec:
    """One NoC switch (router)."""

    switch_id: int
    kind: SwitchKind
    region_id: int
    grid_x: int
    grid_y: int
    position_mm: Tuple[float, float]
    has_wireless: bool = False

    @property
    def grid(self) -> Tuple[int, int]:
        """Global grid coordinates (x, y) used by XY routing."""
        return (self.grid_x, self.grid_y)


@dataclass
class EndpointSpec:
    """A traffic source/sink attached to a switch (core or memory vault)."""

    endpoint_id: int
    kind: EndpointKind
    switch_id: int
    region_id: int


@dataclass
class RegionSpec:
    """A die in the package: a processing chip or a memory stack."""

    region_id: int
    kind: RegionKind
    name: str
    mesh_cols: int
    mesh_rows: int
    origin_mm: Tuple[float, float]
    edge_mm: float


@dataclass
class LinkSpec:
    """A bidirectional physical channel between two switches."""

    link_id: int
    src: int
    dst: int
    kind: LinkKind
    length_mm: float = 0.0

    def endpoints(self) -> Tuple[int, int]:
        """The two switch ids connected by the link."""
        return (self.src, self.dst)

    def other(self, switch_id: int) -> int:
        """The switch on the far end of the link from ``switch_id``."""
        if switch_id == self.src:
            return self.dst
        if switch_id == self.dst:
            return self.src
        raise ValueError(f"switch {switch_id} is not an endpoint of link {self.link_id}")

    @property
    def is_inter_region(self) -> bool:
        """Whether this link is meant to cross a die boundary."""
        return self.kind in INTER_REGION_LINK_KINDS


class TopologyError(ValueError):
    """Raised when a topology is structurally invalid."""


class TopologyGraph:
    """Mutable container for the multichip topology.

    Architecture factories build the graph incrementally: first the chips and
    memory stacks (regions, switches, endpoints, intra-region links), then the
    architecture-specific inter-region connectivity.
    """

    def __init__(self) -> None:
        self._switches: Dict[int, SwitchSpec] = {}
        self._endpoints: Dict[int, EndpointSpec] = {}
        self._regions: Dict[int, RegionSpec] = {}
        self._links: Dict[int, LinkSpec] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._switch_endpoints: Dict[int, List[int]] = {}
        self._disabled_links: set = set()
        self._next_switch_id = 0
        self._next_endpoint_id = 0
        self._next_link_id = 0

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_region(
        self,
        kind: RegionKind,
        name: str,
        mesh_cols: int,
        mesh_rows: int,
        origin_mm: Tuple[float, float],
        edge_mm: float,
    ) -> RegionSpec:
        """Register a new region (die) and return its spec."""
        region_id = len(self._regions)
        region = RegionSpec(
            region_id=region_id,
            kind=kind,
            name=name,
            mesh_cols=mesh_cols,
            mesh_rows=mesh_rows,
            origin_mm=origin_mm,
            edge_mm=edge_mm,
        )
        self._regions[region_id] = region
        return region

    def add_switch(
        self,
        kind: SwitchKind,
        region_id: int,
        grid_x: int,
        grid_y: int,
        position_mm: Tuple[float, float],
        has_wireless: bool = False,
    ) -> SwitchSpec:
        """Add a switch and return its spec."""
        if region_id not in self._regions:
            raise TopologyError(f"unknown region {region_id}")
        switch = SwitchSpec(
            switch_id=self._next_switch_id,
            kind=kind,
            region_id=region_id,
            grid_x=grid_x,
            grid_y=grid_y,
            position_mm=position_mm,
            has_wireless=has_wireless,
        )
        self._switches[switch.switch_id] = switch
        self._adjacency[switch.switch_id] = []
        self._switch_endpoints[switch.switch_id] = []
        self._next_switch_id += 1
        return switch

    def add_endpoint(self, kind: EndpointKind, switch_id: int) -> EndpointSpec:
        """Attach a traffic endpoint to an existing switch."""
        switch = self.switch(switch_id)
        endpoint = EndpointSpec(
            endpoint_id=self._next_endpoint_id,
            kind=kind,
            switch_id=switch_id,
            region_id=switch.region_id,
        )
        self._endpoints[endpoint.endpoint_id] = endpoint
        self._switch_endpoints[switch_id].append(endpoint.endpoint_id)
        self._next_endpoint_id += 1
        return endpoint

    def add_link(
        self,
        src: int,
        dst: int,
        kind: LinkKind,
        length_mm: float = 0.0,
    ) -> LinkSpec:
        """Add a bidirectional link between two existing switches."""
        if src == dst:
            raise TopologyError(f"cannot link switch {src} to itself")
        if src not in self._switches or dst not in self._switches:
            raise TopologyError(f"unknown switch in link ({src}, {dst})")
        if self.find_link(src, dst, include_disabled=True) is not None:
            raise TopologyError(f"duplicate link between {src} and {dst}")
        link = LinkSpec(
            link_id=self._next_link_id,
            src=src,
            dst=dst,
            kind=kind,
            length_mm=length_mm,
        )
        self._links[link.link_id] = link
        self._adjacency[src].append(link.link_id)
        self._adjacency[dst].append(link.link_id)
        self._next_link_id += 1
        return link

    def set_wireless(self, switch_id: int, has_wireless: bool = True) -> None:
        """Mark a switch as carrying a wireless interface."""
        self.switch(switch_id).has_wireless = has_wireless

    # ------------------------------------------------------------------
    # Fault support: disabling links.
    # ------------------------------------------------------------------

    def disable_link(self, link_id: int) -> None:
        """Take a link out of service (fault injection).

        Disabled links disappear from :meth:`neighbors` and
        :meth:`find_link`, so routing and connectivity queries treat the
        topology as if the link did not exist; the physical structure (and
        the simulator ports built from it) is untouched.  Use
        :meth:`enable_link` / :meth:`enable_all_links` to restore service.
        """
        self.link(link_id)  # raises TopologyError for unknown links
        self._disabled_links.add(link_id)

    def enable_link(self, link_id: int) -> None:
        """Return a disabled link to service."""
        self.link(link_id)
        self._disabled_links.discard(link_id)

    def enable_all_links(self) -> None:
        """Return every disabled link to service (end-of-run restore)."""
        self._disabled_links.clear()

    def link_enabled(self, link_id: int) -> bool:
        """Whether a link is currently in service."""
        return link_id not in self._disabled_links

    @property
    def disabled_links(self) -> List[int]:
        """Ids of all currently disabled links, sorted."""
        return sorted(self._disabled_links)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def switch(self, switch_id: int) -> SwitchSpec:
        """Look up a switch by id."""
        try:
            return self._switches[switch_id]
        except KeyError:
            raise TopologyError(f"unknown switch {switch_id}") from None

    def endpoint(self, endpoint_id: int) -> EndpointSpec:
        """Look up an endpoint by id."""
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise TopologyError(f"unknown endpoint {endpoint_id}") from None

    def region(self, region_id: int) -> RegionSpec:
        """Look up a region by id."""
        try:
            return self._regions[region_id]
        except KeyError:
            raise TopologyError(f"unknown region {region_id}") from None

    def link(self, link_id: int) -> LinkSpec:
        """Look up a link by id."""
        try:
            return self._links[link_id]
        except KeyError:
            raise TopologyError(f"unknown link {link_id}") from None

    def find_link(
        self, a: int, b: int, include_disabled: bool = False
    ) -> Optional[LinkSpec]:
        """The *in-service* link between switches ``a`` and ``b``, or ``None``.

        ``include_disabled`` also finds links taken out of service by fault
        injection (used for structural queries on the physical topology).
        """
        for link_id in self._adjacency.get(a, ()):
            if not include_disabled and link_id in self._disabled_links:
                continue
            link = self._links[link_id]
            if link.other(a) == b:
                return link
        return None

    @property
    def switches(self) -> List[SwitchSpec]:
        """All switches, ordered by id."""
        return [self._switches[i] for i in sorted(self._switches)]

    @property
    def endpoints(self) -> List[EndpointSpec]:
        """All endpoints, ordered by id."""
        return [self._endpoints[i] for i in sorted(self._endpoints)]

    @property
    def regions(self) -> List[RegionSpec]:
        """All regions, ordered by id."""
        return [self._regions[i] for i in sorted(self._regions)]

    @property
    def links(self) -> List[LinkSpec]:
        """All links, ordered by id."""
        return [self._links[i] for i in sorted(self._links)]

    @property
    def num_switches(self) -> int:
        """Number of switches."""
        return len(self._switches)

    @property
    def num_endpoints(self) -> int:
        """Number of endpoints."""
        return len(self._endpoints)

    def neighbors(self, switch_id: int) -> List[Tuple[int, LinkSpec]]:
        """(neighbor switch id, link) pairs adjacent to a switch.

        Links taken out of service by fault injection are excluded, so
        routing and connectivity computations automatically avoid them.
        """
        result = []
        for link_id in self._adjacency.get(switch_id, ()):
            if link_id in self._disabled_links:
                continue
            link = self._links[link_id]
            result.append((link.other(switch_id), link))
        return result

    def endpoints_at(self, switch_id: int) -> List[EndpointSpec]:
        """Endpoints attached to a switch."""
        return [self._endpoints[e] for e in self._switch_endpoints.get(switch_id, ())]

    def switches_in_region(self, region_id: int) -> List[SwitchSpec]:
        """Switches belonging to one region, ordered by id."""
        return [s for s in self.switches if s.region_id == region_id]

    def endpoints_of_kind(self, kind: EndpointKind) -> List[EndpointSpec]:
        """All endpoints of a given kind, ordered by id."""
        return [e for e in self.endpoints if e.kind == kind]

    @property
    def cores(self) -> List[EndpointSpec]:
        """All processing-core endpoints."""
        return self.endpoints_of_kind(EndpointKind.CORE)

    @property
    def memory_vaults(self) -> List[EndpointSpec]:
        """All memory-vault endpoints."""
        return self.endpoints_of_kind(EndpointKind.MEMORY_VAULT)

    @property
    def wireless_switches(self) -> List[SwitchSpec]:
        """Switches equipped with a wireless interface, ordered by id."""
        return [s for s in self.switches if s.has_wireless]

    def links_of_kind(self, kind: LinkKind) -> List[LinkSpec]:
        """All links of a given kind."""
        return [link for link in self.links if link.kind == kind]

    def inter_region_links(self) -> List[LinkSpec]:
        """Links whose two endpoints lie in different regions."""
        result = []
        for link in self.links:
            if self.switch(link.src).region_id != self.switch(link.dst).region_id:
                result.append(link)
        return result

    def grid_index(self) -> Dict[Tuple[int, int], int]:
        """Map from global grid coordinates to switch id.

        Only meaningful when grid coordinates are unique, which the multichip
        builder guarantees; duplicated coordinates raise.
        """
        index: Dict[Tuple[int, int], int] = {}
        for switch in self.switches:
            key = switch.grid
            if key in index:
                raise TopologyError(f"duplicate grid coordinate {key}")
            index[key] = switch.switch_id
        return index

    # ------------------------------------------------------------------
    # Validation / export.
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural invariants; raise :class:`TopologyError` if broken.

        * every switch belongs to a known region,
        * every endpoint is attached to a known switch,
        * the graph is connected (every switch can reach every other one),
        * every core switch has at least one attached endpoint or a link.
        """
        if not self._switches:
            raise TopologyError("topology has no switches")
        for endpoint in self.endpoints:
            if endpoint.switch_id not in self._switches:
                raise TopologyError(
                    f"endpoint {endpoint.endpoint_id} attached to unknown switch"
                )
        # Connectivity via BFS over links (wireless links included).
        start = next(iter(self._switches))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbor, _ in self.neighbors(current):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        if len(seen) != len(self._switches):
            unreachable = sorted(set(self._switches) - seen)
            raise TopologyError(
                f"topology is not connected; unreachable switches: {unreachable[:8]}"
            )

    def to_networkx(self):
        """Export the switch graph as an undirected ``networkx.Graph``.

        Node attributes carry the :class:`SwitchSpec`; edge attributes carry
        the :class:`LinkSpec`.  Used by analysis utilities and tests.
        """
        import networkx as nx

        graph = nx.Graph()
        for switch in self.switches:
            graph.add_node(switch.switch_id, spec=switch)
        for link in self.links:
            graph.add_edge(link.src, link.dst, spec=link)
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"TopologyGraph(regions={len(self._regions)}, "
            f"switches={len(self._switches)}, endpoints={len(self._endpoints)}, "
            f"links={len(self._links)})"
        )
