"""Interposer-based wireline architecture overlay — ``XCYM (Interposer)``.

Adopted from NoC-on-interposer work [2]: the chips and memory stacks are
placed on a silicon interposer whose metal layers provide point-to-point
links between *adjacent* chips, "extending the mesh NoC over two separate
layers of silicon spanning multiple chips" (Section IV-A, architecture 2).

The number of parallel links that can cross one chip boundary is limited by
the micro-bump pitch; it is exposed as ``links_per_boundary`` and is one of
the two calibration knobs discussed in DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .geometry import euclidean_mm
from .graph import LinkKind, LinkSpec
from .mesh import evenly_spaced
from .multichip import MultichipSystem, memory_anchor_switch


@dataclass(frozen=True)
class InterposerOverlayConfig:
    """Parameters of the interposer inter-chip connectivity."""

    #: Parallel interposer links between each pair of adjacent chips.  ``0``
    #: means "one per boundary row" (a full mesh extension); the default of 1
    #: models a micro-bump-pitch-limited boundary (see DESIGN.md section 4).
    links_per_boundary: int = 1
    #: Wide I/O channels per memory stack (identical to the substrate case,
    #: as the paper keeps the memory interface the same across wired
    #: configurations).
    wide_io_links_per_stack: int = 1


def apply_interposer_overlay(
    system: MultichipSystem,
    config: InterposerOverlayConfig = InterposerOverlayConfig(),
) -> List[LinkSpec]:
    """Add interposer C-C links and wide I/O M-C links; return created links."""
    if config.links_per_boundary < 0:
        raise ValueError("links_per_boundary must be non-negative")
    if config.wide_io_links_per_stack <= 0:
        raise ValueError("wide_io_links_per_stack must be positive")

    graph = system.graph
    created: List[LinkSpec] = []

    for left_index, right_index in system.adjacent_chip_pairs():
        right_boundary = system.chip_boundary(left_index, "right")
        left_boundary = system.chip_boundary(right_index, "left")
        rows = len(right_boundary)
        count = rows if config.links_per_boundary == 0 else min(
            config.links_per_boundary, rows
        )
        picked = evenly_spaced(list(range(rows)), count)
        for row in picked:
            src = right_boundary[row]
            dst = left_boundary[min(row, len(left_boundary) - 1)]
            length = euclidean_mm(
                graph.switch(src).position_mm, graph.switch(dst).position_mm
            )
            created.append(
                graph.add_link(src, dst, LinkKind.INTERPOSER, length_mm=length)
            )

    for memory_index in range(system.num_memory_stacks):
        memory_switch = system.memory_switch(memory_index)
        anchor = memory_anchor_switch(system, memory_index)
        length = euclidean_mm(
            graph.switch(memory_switch).position_mm, graph.switch(anchor).position_mm
        )
        created.append(
            graph.add_link(memory_switch, anchor, LinkKind.WIDE_IO, length_mm=length)
        )
        extra = config.wide_io_links_per_stack - 1
        if extra > 0:
            placement = system.layout.memories[memory_index]
            boundary = system.chip_boundary(
                placement.adjacent_chip_index, placement.side
            )
            candidates = [s for s in boundary if s != anchor]
            for target in candidates[:extra]:
                length = euclidean_mm(
                    graph.switch(memory_switch).position_mm,
                    graph.switch(target).position_mm,
                )
                created.append(
                    graph.add_link(
                        memory_switch, target, LinkKind.WIDE_IO, length_mm=length
                    )
                )
    return created
