"""Intra-chip mesh construction.

Each processing chip uses "a traditional Mesh based NoC with switches and
links" where "each core in the system is considered to be attached to its NoC
switch" (Section III-A).  This module adds one chip's worth of switches,
core endpoints and mesh links to a :class:`~repro.topology.graph.TopologyGraph`.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .geometry import ChipPlacement, switch_position_mm
from .graph import (
    EndpointKind,
    LinkKind,
    RegionKind,
    RegionSpec,
    SwitchKind,
    TopologyGraph,
)


def build_processor_chip(
    graph: TopologyGraph,
    placement: ChipPlacement,
    name: str = None,
) -> RegionSpec:
    """Add one processing chip (mesh NoC + one core per switch) to the graph.

    Returns the created region.  Switch grid coordinates are global package
    coordinates: ``placement.grid_offset_x + col`` / ``grid_offset_y + row``,
    so the XY router can treat the whole chip array as one coordinate system.
    """
    cols, rows = placement.mesh_cols, placement.mesh_rows
    region = graph.add_region(
        kind=RegionKind.PROCESSOR_CHIP,
        name=name or f"chip{placement.index}",
        mesh_cols=cols,
        mesh_rows=rows,
        origin_mm=placement.origin_mm,
        edge_mm=placement.edge_mm,
    )

    local_index: Dict[Tuple[int, int], int] = {}
    for row in range(rows):
        for col in range(cols):
            position = switch_position_mm(
                placement.origin_mm, placement.edge_mm, cols, rows, col, row
            )
            switch = graph.add_switch(
                kind=SwitchKind.CORE,
                region_id=region.region_id,
                grid_x=placement.grid_offset_x + col,
                grid_y=placement.grid_offset_y + row,
                position_mm=position,
            )
            graph.add_endpoint(EndpointKind.CORE, switch.switch_id)
            local_index[(col, row)] = switch.switch_id

    pitch_x = placement.edge_mm / cols
    pitch_y = placement.edge_mm / rows
    for row in range(rows):
        for col in range(cols):
            here = local_index[(col, row)]
            if col + 1 < cols:
                graph.add_link(
                    here, local_index[(col + 1, row)], LinkKind.MESH, length_mm=pitch_x
                )
            if row + 1 < rows:
                graph.add_link(
                    here, local_index[(col, row + 1)], LinkKind.MESH, length_mm=pitch_y
                )
    return region


def boundary_switches(
    graph: TopologyGraph, region_id: int, side: str
) -> List[int]:
    """Switch ids on the ``side`` ("left"/"right"/"top"/"bottom") boundary.

    Ordered by row (for left/right) or by column (for top/bottom) so callers
    can pick evenly spaced subsets for boundary links.
    """
    switches = graph.switches_in_region(region_id)
    if not switches:
        return []
    xs = [s.grid_x for s in switches]
    ys = [s.grid_y for s in switches]
    if side == "left":
        edge = min(xs)
        selected = [s for s in switches if s.grid_x == edge]
        selected.sort(key=lambda s: s.grid_y)
    elif side == "right":
        edge = max(xs)
        selected = [s for s in switches if s.grid_x == edge]
        selected.sort(key=lambda s: s.grid_y)
    elif side == "top":
        edge = min(ys)
        selected = [s for s in switches if s.grid_y == edge]
        selected.sort(key=lambda s: s.grid_x)
    elif side == "bottom":
        edge = max(ys)
        selected = [s for s in switches if s.grid_y == edge]
        selected.sort(key=lambda s: s.grid_x)
    else:
        raise ValueError(f"unknown side {side!r}")
    return [s.switch_id for s in selected]


def evenly_spaced(items: List[int], count: int) -> List[int]:
    """Pick ``count`` evenly spaced entries from ``items`` (at least one)."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if not items:
        return []
    if count >= len(items):
        return list(items)
    step = len(items) / count
    picked = []
    for i in range(count):
        index = int(i * step + step / 2)
        picked.append(items[min(index, len(items) - 1)])
    return picked


def cluster_centers(
    graph: TopologyGraph, region_id: int, num_clusters: int
) -> List[int]:
    """Switch ids at the centres of ``num_clusters`` equal tiles of a chip mesh.

    Implements the WI deployment strategy of Section III-A: a single WI is
    shared by a cluster of cores, deployed "at one of the central switches of
    each cluster", which minimises the average distance between the cores of
    the cluster and their WI.
    """
    if num_clusters <= 0:
        raise ValueError(f"num_clusters must be positive, got {num_clusters}")
    region = graph.region(region_id)
    switches = graph.switches_in_region(region_id)
    index = {(s.grid_x, s.grid_y): s.switch_id for s in switches}
    min_x = min(s.grid_x for s in switches)
    min_y = min(s.grid_y for s in switches)
    cols, rows = region.mesh_cols, region.mesh_rows

    # Factor the cluster count into a tile grid as square as possible.
    tiles_x = 1
    for candidate in range(1, num_clusters + 1):
        if num_clusters % candidate == 0 and candidate * candidate <= num_clusters:
            tiles_x = candidate
    tiles_y = num_clusters // tiles_x
    if tiles_x > cols or tiles_y > rows:
        tiles_x, tiles_y = tiles_y, tiles_x
    tiles_x = min(tiles_x, cols)
    tiles_y = min(tiles_y, rows)

    centers = []
    for ty in range(tiles_y):
        for tx in range(tiles_x):
            tile_cols = cols // tiles_x
            tile_rows = rows // tiles_y
            center_col = min_x + tx * tile_cols + (tile_cols - 1) // 2
            center_row = min_y + ty * tile_rows + (tile_rows - 1) // 2
            centers.append(index[(center_col, center_row)])
    # If the factorisation produced fewer tiles than requested (non-divisible
    # cluster counts), fill the remainder with distinct switches closest to
    # the chip centre.
    if len(centers) < num_clusters:
        centre_col = min_x + (cols - 1) / 2
        centre_row = min_y + (rows - 1) / 2
        remaining = sorted(
            (s for s in switches if s.switch_id not in centers),
            key=lambda s: abs(s.grid_x - centre_col) + abs(s.grid_y - centre_row),
        )
        for spec in remaining[: num_clusters - len(centers)]:
            centers.append(spec.switch_id)
    return centers[:num_clusters]
