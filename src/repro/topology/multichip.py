"""Composition of processing chips and memory stacks into one package.

``build_multichip_base`` produces the architecture-independent part of the
topology: the chip array (each an intra-chip mesh with one core per switch)
and the memory stacks (each a base logic die switch with its DRAM vaults).
The three architecture overlays (substrate, interposer, wireless) then add
their inter-die connectivity on top of this base.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .geometry import PackageLayout, plan_package
from .graph import (
    EndpointKind,
    RegionKind,
    SwitchKind,
    TopologyGraph,
)
from .mesh import boundary_switches, build_processor_chip


@dataclass
class MultichipSystem:
    """A package topology plus bookkeeping used by the architecture overlays."""

    graph: TopologyGraph
    layout: PackageLayout
    chip_region_ids: List[int] = field(default_factory=list)
    memory_region_ids: List[int] = field(default_factory=list)
    memory_switch_ids: Dict[int, int] = field(default_factory=dict)

    @property
    def num_chips(self) -> int:
        """Number of processing chips."""
        return len(self.chip_region_ids)

    @property
    def num_memory_stacks(self) -> int:
        """Number of in-package memory stacks."""
        return len(self.memory_region_ids)

    @property
    def num_cores(self) -> int:
        """Total number of processing cores across all chips."""
        return len(self.graph.cores)

    def chip_boundary(self, chip_index: int, side: str) -> List[int]:
        """Boundary switch ids of a chip, ordered by row/column."""
        region_id = self.chip_region_ids[chip_index]
        return boundary_switches(self.graph, region_id, side)

    def memory_switch(self, memory_index: int) -> int:
        """Switch id of the base logic die of a memory stack."""
        region_id = self.memory_region_ids[memory_index]
        return self.memory_switch_ids[region_id]

    def adjacent_chip_pairs(self) -> List[Tuple[int, int]]:
        """Indices of physically adjacent chip pairs in the array."""
        return [(i, i + 1) for i in range(self.num_chips - 1)]

    def describe(self) -> str:
        """Human-readable one-line summary (used by reports and examples)."""
        return (
            f"{self.num_chips} chip(s) x {self.num_cores // max(1, self.num_chips)} "
            f"cores + {self.num_memory_stacks} memory stack(s); "
            f"{self.graph.num_switches} switches, {len(self.graph.links)} links"
        )


def build_memory_stack_die(
    graph: TopologyGraph,
    placement,
    vaults: int,
    name: Optional[str] = None,
) -> Tuple[int, int]:
    """Add one memory stack's base logic die to the graph.

    The stack is "a stacked DRAM mounted on top of a base logic die"; the
    logic die carries a single NoC switch which terminates either the wide
    I/O channel (wired architectures) or the wireless interface (wireless
    architecture).  The DRAM channels/vaults appear as memory endpoints
    attached to that switch; intra-stack TSV transfers are modelled by the
    :mod:`repro.memory` subpackage and their energy is ignored by the paper.

    Returns ``(region_id, switch_id)``.
    """
    if vaults <= 0:
        raise ValueError(f"vaults must be positive, got {vaults}")
    region = graph.add_region(
        kind=RegionKind.MEMORY_STACK,
        name=name or f"memory{placement.index}",
        mesh_cols=1,
        mesh_rows=1,
        origin_mm=placement.origin_mm,
        edge_mm=placement.edge_mm,
    )
    centre = (
        placement.origin_mm[0] + placement.edge_mm / 2,
        placement.origin_mm[1] + placement.edge_mm / 2,
    )
    switch = graph.add_switch(
        kind=SwitchKind.MEMORY,
        region_id=region.region_id,
        grid_x=placement.grid_x,
        grid_y=placement.grid_y,
        position_mm=centre,
    )
    for _ in range(vaults):
        graph.add_endpoint(EndpointKind.MEMORY_VAULT, switch.switch_id)
    return region.region_id, switch.switch_id


def build_multichip_base(
    num_chips: int,
    cores_per_chip: int,
    num_memory_stacks: int,
    vaults_per_stack: int = 4,
    chip_edge_mm: Optional[float] = None,
    total_processing_area_mm2: Optional[float] = None,
    gap_mm: Optional[float] = None,
) -> MultichipSystem:
    """Build the architecture-independent multichip topology.

    Parameters mirror the ``XCYM`` naming of the paper: ``num_chips`` is X,
    ``num_memory_stacks`` is Y.  ``total_processing_area_mm2`` keeps the
    combined active processing area constant across disintegration levels
    (Section IV-C); when omitted, every chip uses ``chip_edge_mm``
    (default 10 mm).
    """
    layout = plan_package(
        num_chips=num_chips,
        cores_per_chip=cores_per_chip,
        num_memory_stacks=num_memory_stacks,
        chip_edge_mm=chip_edge_mm,
        gap_mm=gap_mm,
        total_processing_area_mm2=total_processing_area_mm2,
    )
    graph = TopologyGraph()
    system = MultichipSystem(graph=graph, layout=layout)

    for chip in layout.chips:
        region = build_processor_chip(graph, chip)
        system.chip_region_ids.append(region.region_id)

    # Keep grid coordinates unique even when several stacks share a side and
    # a row would collide (small meshes): nudge the row of later stacks.
    used_grid = {(s.grid_x, s.grid_y) for s in graph.switches}
    for memory in layout.memories:
        grid_y = memory.grid_y
        while (memory.grid_x, grid_y) in used_grid:
            grid_y += 1
        placement = memory if grid_y == memory.grid_y else _with_row(memory, grid_y)
        region_id, switch_id = build_memory_stack_die(
            graph, placement, vaults=vaults_per_stack
        )
        used_grid.add((placement.grid_x, placement.grid_y))
        system.memory_region_ids.append(region_id)
        system.memory_switch_ids[region_id] = switch_id

    return system


def _with_row(memory, grid_y: int):
    """Copy of a memory placement with a different grid row."""
    from .geometry import MemoryPlacement

    return MemoryPlacement(
        index=memory.index,
        side=memory.side,
        origin_mm=memory.origin_mm,
        edge_mm=memory.edge_mm,
        grid_x=memory.grid_x,
        grid_y=grid_y,
        adjacent_chip_index=memory.adjacent_chip_index,
        adjacent_chip_column=memory.adjacent_chip_column,
    )


def memory_anchor_switch(system: MultichipSystem, memory_index: int) -> int:
    """The processing-chip switch a memory stack's wide I/O attaches to.

    The stack attaches to its *neighbouring* chip at the boundary switch of
    the chip edge it sits next to (top or bottom of the array), in the
    column the stack is placed over, so every stack is one wide-I/O hop from
    its chip in the wired architectures.
    """
    placement = system.layout.memories[memory_index]
    chip_index = placement.adjacent_chip_index
    boundary = system.chip_boundary(chip_index, placement.side)
    if not boundary:
        raise ValueError(
            f"chip {chip_index} has no {placement.side} boundary switches"
        )
    column = min(placement.adjacent_chip_column, len(boundary) - 1)
    return boundary[column]
