"""Substrate-based wireline architecture overlay — ``XCYM (Substrate)``.

In this baseline the chips and memory modules sit on an organic substrate.
Chip-to-chip traffic uses high speed serial I/O with "only a single
inter-chip link between switches at the center of the adjacent boundaries to
eliminate signal crosstalk between parallel high-speed I/Os"; memory-to-chip
traffic uses the 128-bit wide I/O channel of the neighbouring chip
(Section IV-A, architecture 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .graph import LinkKind, LinkSpec
from .multichip import MultichipSystem, memory_anchor_switch


@dataclass(frozen=True)
class SubstrateOverlayConfig:
    """Parameters of the substrate inter-chip connectivity."""

    #: Serial I/O links between each pair of adjacent chips (paper: 1).
    serial_links_per_boundary: int = 1
    #: Wide I/O channels per memory stack (paper: 1 x 128-bit channel).
    wide_io_links_per_stack: int = 1


def apply_substrate_overlay(
    system: MultichipSystem,
    config: SubstrateOverlayConfig = SubstrateOverlayConfig(),
) -> List[LinkSpec]:
    """Add substrate C-C and M-C links; return the created links."""
    if config.serial_links_per_boundary <= 0:
        raise ValueError("serial_links_per_boundary must be positive")
    if config.wide_io_links_per_stack <= 0:
        raise ValueError("wide_io_links_per_stack must be positive")

    graph = system.graph
    created: List[LinkSpec] = []

    for left_index, right_index in system.adjacent_chip_pairs():
        right_boundary = system.chip_boundary(left_index, "right")
        left_boundary = system.chip_boundary(right_index, "left")
        count = min(
            config.serial_links_per_boundary, len(right_boundary), len(left_boundary)
        )
        rows = _central_rows(len(right_boundary), count)
        for row in rows:
            src = right_boundary[row]
            dst = left_boundary[min(row, len(left_boundary) - 1)]
            length = _link_length(graph, src, dst)
            created.append(
                graph.add_link(src, dst, LinkKind.SERIAL_IO, length_mm=length)
            )

    for memory_index in range(system.num_memory_stacks):
        memory_switch = system.memory_switch(memory_index)
        anchor = memory_anchor_switch(system, memory_index)
        length = _link_length(graph, memory_switch, anchor)
        created.append(
            graph.add_link(memory_switch, anchor, LinkKind.WIDE_IO, length_mm=length)
        )
        # Additional wide I/O channels (non-default) attach to further
        # boundary switches of the same chip side.
        extra = config.wide_io_links_per_stack - 1
        if extra > 0:
            placement = system.layout.memories[memory_index]
            boundary = system.chip_boundary(placement.adjacent_chip_index, placement.side)
            candidates = [s for s in boundary if s != anchor]
            for target in candidates[:extra]:
                length = _link_length(graph, memory_switch, target)
                created.append(
                    graph.add_link(
                        memory_switch, target, LinkKind.WIDE_IO, length_mm=length
                    )
                )
    return created


def _central_rows(total_rows: int, count: int) -> List[int]:
    """Pick ``count`` rows centred on the middle of the boundary."""
    if total_rows <= 0:
        return []
    count = min(count, total_rows)
    centre = (total_rows - 1) // 2
    rows = [centre]
    offset = 1
    while len(rows) < count:
        if centre + offset < total_rows:
            rows.append(centre + offset)
        if len(rows) < count and centre - offset >= 0:
            rows.append(centre - offset)
        offset += 1
    return sorted(rows[:count])


def _link_length(graph, src: int, dst: int) -> float:
    """Euclidean distance between two switches [mm]."""
    from .geometry import euclidean_mm

    return euclidean_mm(graph.switch(src).position_mm, graph.switch(dst).position_mm)
