"""Wireless architecture overlay — ``XCYM (Wireless)``.

Implements the WI deployment strategy of Section III-A: a single WI is
shared by a cluster of cores (the *wireless density* is the number of cores
serviced by one WI), WIs sit at the central switch of each cluster
(minimum-average-distance placement [15]), and every memory stack's base
logic die carries one WI.  All chip-to-chip and memory-to-chip traffic then
uses the shared 60 GHz channel; no wired inter-die links exist in this
architecture.

Wireless links are added pairwise between all WI switches so that graph
algorithms (routing, connectivity checks) see the single-hop reachability;
the simulator maps every wireless link of a switch onto that switch's single
WI port and enforces the shared-medium constraint through the MAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..wireless.channel import assign_channels
from .geometry import euclidean_mm
from .graph import LinkKind, LinkSpec, TopologyGraph
from .mesh import cluster_centers
from .multichip import MultichipSystem


@dataclass(frozen=True)
class WirelessOverlayConfig:
    """Parameters of the WI deployment."""

    #: Number of cores serviced by one WI inside each processing chip
    #: ("wireless deployment density of 1WI per 16 cores").
    cores_per_wi: int = 16
    #: Whether every chip gets at least one WI even if it has fewer cores
    #: than ``cores_per_wi`` (required for inter-chip connectivity).
    at_least_one_per_chip: bool = True
    #: Whether memory stacks carry a WI on their base logic die (paper: yes).
    memory_wi: bool = True
    #: Whether wireless links between WIs of the *same* chip are added;
    #: intra-chip traffic may then use the wireless shortcut when it reduces
    #: the path length, as observed for the 1C4M configuration.
    connect_same_region: bool = True
    #: Orthogonal frequency channels the deployed WIs will be divided over
    #: (mirrors :attr:`repro.noc.config.WirelessConfig.num_channels`; the
    #: architecture registry threads the simulated value through so
    #: topology-level planning — :func:`channel_assignment` — matches the
    #: fabric's round-robin channel plan exactly).
    num_channels: int = 1


def apply_wireless_overlay(
    system: MultichipSystem,
    config: WirelessOverlayConfig = WirelessOverlayConfig(),
) -> List[LinkSpec]:
    """Deploy WIs and add pairwise wireless links; return created links."""
    if config.cores_per_wi <= 0:
        raise ValueError("cores_per_wi must be positive")
    if config.num_channels <= 0:
        raise ValueError("num_channels must be positive")

    graph = system.graph

    for chip_index, region_id in enumerate(system.chip_region_ids):
        cores_in_chip = sum(
            len(graph.endpoints_at(s.switch_id))
            for s in graph.switches_in_region(region_id)
        )
        num_wis = cores_in_chip // config.cores_per_wi
        if num_wis == 0 and config.at_least_one_per_chip:
            num_wis = 1
        if num_wis == 0:
            continue
        for switch_id in cluster_centers(graph, region_id, num_wis):
            graph.set_wireless(switch_id, True)

    if config.memory_wi:
        for memory_index in range(system.num_memory_stacks):
            graph.set_wireless(system.memory_switch(memory_index), True)

    return connect_wireless_interfaces(
        graph, connect_same_region=config.connect_same_region
    )


def connect_wireless_interfaces(
    graph: TopologyGraph, connect_same_region: bool = True
) -> List[LinkSpec]:
    """Add a wireless link between every pair of WI switches."""
    created: List[LinkSpec] = []
    wireless = graph.wireless_switches
    for i, first in enumerate(wireless):
        for second in wireless[i + 1 :]:
            if (
                not connect_same_region
                and first.region_id == second.region_id
            ):
                continue
            if graph.find_link(first.switch_id, second.switch_id) is not None:
                continue
            length = euclidean_mm(first.position_mm, second.position_mm)
            created.append(
                graph.add_link(
                    first.switch_id,
                    second.switch_id,
                    LinkKind.WIRELESS,
                    length_mm=length,
                )
            )
    return created


def channel_assignment(
    graph: TopologyGraph, num_channels: int
) -> Dict[int, List[int]]:
    """Planned channel → WI-switch-id grouping of the deployed WIs.

    Uses the same round-robin policy as the simulator's wireless fabric
    (:func:`repro.wireless.channel.assign_channels`), so topology-level
    reports and the fig8 channel sweep describe exactly the grouping the
    MAC instances will arbitrate.  Channels left without a WI are omitted.
    """
    wi_ids = [spec.switch_id for spec in graph.wireless_switches]
    return {
        plan.channel_id: list(plan.wi_switch_ids)
        for plan in assign_channels(wi_ids, num_channels)
        if plan.wi_switch_ids
    }


def wireless_interface_count(graph: TopologyGraph) -> int:
    """Number of deployed WIs (used for area-overhead reporting)."""
    return len(graph.wireless_switches)


def wireless_area_overhead_mm2(
    graph: TopologyGraph, transceiver_area_mm2: float = 0.3
) -> float:
    """Total active-area overhead of the deployed transceivers [mm^2].

    The paper reports "negligible active area overhead of 0.3 mm^2 per
    transceiver"; this helper lets reports quote the total for a system.
    """
    if transceiver_area_mm2 < 0:
        raise ValueError("transceiver_area_mm2 must be non-negative")
    return wireless_interface_count(graph) * transceiver_area_mm2


def max_wireless_distance_mm(graph: TopologyGraph) -> float:
    """Longest WI-to-WI distance in the package [mm].

    Used together with :mod:`repro.wireless.link_budget` to confirm that the
    60 GHz link closes at package scale (the paper cites demonstrated links
    of up to 10 m, far beyond package dimensions).
    """
    wireless = graph.wireless_switches
    longest = 0.0
    for i, first in enumerate(wireless):
        for second in wireless[i + 1 :]:
            longest = max(longest, euclidean_mm(first.position_mm, second.position_mm))
    return longest
