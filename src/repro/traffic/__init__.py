"""Traffic generation: synthetic patterns and application models.

Provides the uniform random workload of the paper's synthetic evaluation,
classic skewed patterns (hotspot, transpose, bit-complement, neighbour) for
ablations, and the SynFull-substitute application traffic used for the
Fig. 6 reproduction.
"""

from .applications import (
    APPLICATION_PROFILES,
    ApplicationPhase,
    ApplicationProfile,
    default_application_set,
    get_profile,
    profiles_for_suite,
)
from .base import TrafficModel, TrafficRequest, endpoint_region, offchip_fraction
from .rng import bernoulli, choose_other, make_rng, weighted_choice
from .synfull import SynfullApplicationTraffic
from .synthetic import (
    BitComplementTraffic,
    HotspotTraffic,
    NeighbourTraffic,
    TransposeTraffic,
)
from .uniform import UniformRandomTraffic

__all__ = [
    "APPLICATION_PROFILES",
    "ApplicationPhase",
    "ApplicationProfile",
    "BitComplementTraffic",
    "HotspotTraffic",
    "NeighbourTraffic",
    "SynfullApplicationTraffic",
    "TrafficModel",
    "TrafficRequest",
    "TransposeTraffic",
    "UniformRandomTraffic",
    "bernoulli",
    "choose_other",
    "default_application_set",
    "endpoint_region",
    "get_profile",
    "make_rng",
    "offchip_fraction",
    "profiles_for_suite",
    "weighted_choice",
]
