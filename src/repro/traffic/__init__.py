"""Traffic generation: synthetic patterns and application models.

Provides the uniform random workload of the paper's synthetic evaluation,
classic skewed patterns (hotspot, transpose, bit-complement, neighbour) for
ablations, and the SynFull-substitute application traffic used for the
Fig. 6 reproduction.
"""

from .applications import (
    APPLICATION_PROFILES,
    ApplicationPhase,
    ApplicationProfile,
    default_application_set,
    get_profile,
    profiles_for_suite,
)
from .base import TrafficModel, TrafficRequest, endpoint_region, offchip_fraction
from .registry import (
    PatternSpec,
    UnknownPatternError,
    available_patterns,
    create_pattern,
    pattern_spec,
    register_pattern,
)
from .rng import bernoulli, choose_other, make_rng, weighted_choice
from .synfull import SynfullApplicationTraffic
from .synthetic import (
    BitComplementTraffic,
    BitReversalTraffic,
    BurstyHotspotTraffic,
    HotspotTraffic,
    NeighbourTraffic,
    TransposeTraffic,
    default_hotspots,
)
from .uniform import UniformRandomTraffic

__all__ = [
    "APPLICATION_PROFILES",
    "ApplicationPhase",
    "ApplicationProfile",
    "BitComplementTraffic",
    "BitReversalTraffic",
    "BurstyHotspotTraffic",
    "HotspotTraffic",
    "NeighbourTraffic",
    "PatternSpec",
    "SynfullApplicationTraffic",
    "TrafficModel",
    "TrafficRequest",
    "TransposeTraffic",
    "UniformRandomTraffic",
    "UnknownPatternError",
    "available_patterns",
    "bernoulli",
    "choose_other",
    "create_pattern",
    "default_application_set",
    "default_hotspots",
    "endpoint_region",
    "get_profile",
    "make_rng",
    "offchip_fraction",
    "pattern_spec",
    "profiles_for_suite",
    "register_pattern",
    "weighted_choice",
]
