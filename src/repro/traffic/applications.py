"""Application traffic profiles (PARSEC / SPLASH-2).

The paper drives its Fig. 6 evaluation with SynFull [20] traffic models of
PARSEC and SPLASH-2 applications running on a 16-core MOESI CMP.  SynFull is
itself a *statistical* model (Markov chains fitted to the applications'
communication behaviour), not a trace replayer, so the reproduction follows
the same idea: each application is characterised by a small set of
parameters — steady-state injection rate, memory-access fraction,
burstiness, request/reply mix and phase structure — chosen to span the
qualitative range of the benchmark suites (compute-bound vs memory-bound,
smooth vs bursty).  See DESIGN.md section 3 for the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class ApplicationPhase:
    """One execution phase of an application."""

    name: str
    #: Relative duration of the phase (fractions are normalised over phases).
    weight: float
    #: Injection-rate multiplier relative to the application's base rate.
    rate_scale: float
    #: Memory-access fraction during this phase.
    memory_fraction: float


@dataclass(frozen=True)
class ApplicationProfile:
    """Statistical communication profile of one application."""

    name: str
    suite: str
    #: Steady-state injection rate [packets/core/cycle] at the base phase.
    base_injection_rate: float
    #: Fraction of traffic that targets the DRAM stacks.
    memory_fraction: float
    #: Probability of entering a traffic burst in a given cycle.
    burst_probability: float
    #: Injection-rate multiplier while bursting.
    burst_scale: float
    #: Mean burst duration [cycles].
    burst_duration_cycles: int
    #: Fraction of coherence (core-to-core) traffic that crosses chips when
    #: each chip runs one thread of the application.
    cross_thread_fraction: float
    #: Fraction of memory accesses that are reads (generate reply data).
    read_fraction: float
    #: Request packet length [flits] (coherence control messages are short).
    request_length_flits: int
    #: Data/reply packet length [flits] (cache lines).
    data_length_flits: int
    phases: Tuple[ApplicationPhase, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.base_injection_rate < 0:
            raise ValueError("base_injection_rate must be non-negative")
        if not 0.0 <= self.memory_fraction <= 1.0:
            raise ValueError("memory_fraction must be in [0, 1]")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        if self.burst_scale < 1.0:
            raise ValueError("burst_scale must be at least 1")
        if self.burst_duration_cycles <= 0:
            raise ValueError("burst_duration_cycles must be positive")
        if not 0.0 <= self.cross_thread_fraction <= 1.0:
            raise ValueError("cross_thread_fraction must be in [0, 1]")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if self.request_length_flits <= 0 or self.data_length_flits <= 0:
            raise ValueError("packet lengths must be positive")

    @property
    def effective_phases(self) -> Tuple[ApplicationPhase, ...]:
        """Phases of the application (a single implicit phase if none given)."""
        if self.phases:
            return self.phases
        return (
            ApplicationPhase(
                name="steady",
                weight=1.0,
                rate_scale=1.0,
                memory_fraction=self.memory_fraction,
            ),
        )


def _profile(
    name: str,
    suite: str,
    rate: float,
    memory: float,
    burst_p: float,
    burst_scale: float,
    burst_len: int,
    cross: float,
    read: float,
    phases: Tuple[ApplicationPhase, ...] = (),
) -> ApplicationProfile:
    return ApplicationProfile(
        name=name,
        suite=suite,
        base_injection_rate=rate,
        memory_fraction=memory,
        burst_probability=burst_p,
        burst_scale=burst_scale,
        burst_duration_cycles=burst_len,
        cross_thread_fraction=cross,
        read_fraction=read,
        request_length_flits=8,
        data_length_flits=64,
        phases=phases,
    )


#: Built-in application profiles.  The rates/fractions are synthetic
#: SynFull substitutes calibrated to the well-known qualitative behaviour of
#: the benchmarks (e.g. canneal and radix are memory-bound and bursty,
#: blackscholes and water are compute-bound with light traffic).
APPLICATION_PROFILES: Dict[str, ApplicationProfile] = {
    profile.name: profile
    for profile in (
        _profile("blackscholes", "PARSEC", 0.0025, 0.30, 0.02, 2.0, 20, 0.35, 0.7),
        _profile("bodytrack", "PARSEC", 0.0040, 0.35, 0.05, 2.5, 30, 0.45, 0.7),
        _profile("canneal", "PARSEC", 0.0060, 0.55, 0.10, 3.0, 40, 0.60, 0.8),
        _profile("dedup", "PARSEC", 0.0050, 0.45, 0.08, 2.5, 35, 0.55, 0.7),
        _profile("fluidanimate", "PARSEC", 0.0045, 0.40, 0.06, 2.0, 30, 0.50, 0.7),
        _profile("swaptions", "PARSEC", 0.0020, 0.25, 0.02, 1.8, 20, 0.30, 0.6),
        _profile("fft", "SPLASH-2", 0.0055, 0.50, 0.12, 3.0, 25, 0.65, 0.8),
        _profile("lu", "SPLASH-2", 0.0035, 0.35, 0.04, 2.0, 25, 0.40, 0.7),
        _profile("radix", "SPLASH-2", 0.0065, 0.60, 0.15, 3.5, 30, 0.70, 0.8),
        _profile("water", "SPLASH-2", 0.0022, 0.25, 0.03, 1.8, 20, 0.30, 0.6),
        _profile("barnes", "SPLASH-2", 0.0038, 0.40, 0.06, 2.2, 30, 0.50, 0.7),
    )
}


def get_profile(name: str) -> ApplicationProfile:
    """Look up a built-in application profile by name."""
    try:
        return APPLICATION_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(APPLICATION_PROFILES))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None


def profiles_for_suite(suite: str) -> List[ApplicationProfile]:
    """All built-in profiles of one benchmark suite."""
    return [p for p in APPLICATION_PROFILES.values() if p.suite == suite]


def default_application_set() -> List[str]:
    """The application mix used by the Fig. 6 reproduction."""
    return [
        "blackscholes",
        "bodytrack",
        "canneal",
        "dedup",
        "fluidanimate",
        "fft",
        "lu",
        "radix",
        "water",
    ]
