"""Traffic model interface.

A traffic model decides, cycle by cycle, which endpoint sends a packet to
which other endpoint.  The simulation engine turns each
:class:`TrafficRequest` into a routed packet and places it in the source
endpoint's injection queue; when a packet is delivered the model gets a
callback so request/reply protocols (memory reads, cache coherence) can
generate the response traffic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..topology.graph import TopologyGraph


@dataclass(frozen=True)
class TrafficRequest:
    """One packet the traffic model wants to inject."""

    src_endpoint: int
    dst_endpoint: int
    #: Packet length in flits; ``None`` uses the network's configured default.
    length_flits: Optional[int] = None
    is_memory_access: bool = False
    is_reply: bool = False
    traffic_class: str = "data"

    def __post_init__(self) -> None:
        if self.src_endpoint == self.dst_endpoint:
            raise ValueError(
                f"source and destination endpoint are both {self.src_endpoint}"
            )
        if self.length_flits is not None and self.length_flits <= 0:
            raise ValueError("length_flits must be positive when given")


class TrafficModel(abc.ABC):
    """Base class of all traffic generators."""

    def __init__(self, topology: TopologyGraph) -> None:
        self._topology = topology
        self._cores = [e.endpoint_id for e in topology.cores]
        self._memory_vaults = [e.endpoint_id for e in topology.memory_vaults]
        if not self._cores:
            raise ValueError("traffic model needs at least one core endpoint")

    @property
    def topology(self) -> TopologyGraph:
        """Topology the traffic is generated for."""
        return self._topology

    @property
    def cores(self) -> List[int]:
        """Core endpoint ids."""
        return list(self._cores)

    @property
    def memory_vaults(self) -> List[int]:
        """Memory vault endpoint ids."""
        return list(self._memory_vaults)

    @abc.abstractmethod
    def generate(self, cycle: int) -> Iterable[TrafficRequest]:
        """Packets to inject at the given cycle."""

    def on_packet_delivered(self, packet, cycle: int) -> Iterable[TrafficRequest]:
        """Reaction traffic (e.g. memory replies); default none."""
        return ()

    def reset(self) -> None:
        """Reset internal state before a new run; default no state."""

    def phase_token(self) -> Optional[object]:
        """Opaque marker of the model's current traffic phase.

        Phase-structured models (application phases, burst windows) return
        a value that changes whenever their coarse behaviour changes; the
        simulation kernel re-anchors its stall watchdog on every change so
        a long quiet phase following a heavy one is not mistaken for a
        deadlock.  Stationary models keep the default ``None``.
        """
        return None


def endpoint_region(topology: TopologyGraph, endpoint_id: int) -> int:
    """Region (chip / stack) an endpoint belongs to."""
    return topology.endpoint(endpoint_id).region_id


def offchip_fraction(
    topology: TopologyGraph, requests: Sequence[TrafficRequest]
) -> float:
    """Fraction of requests whose source and destination lie in different regions.

    Used by tests and experiments to confirm the off-chip traffic proportions
    quoted in Section IV-C (20 % for 1C4M, 80 % for 4C4M, 90 % for 8C4M at a
    20 % memory-access ratio).
    """
    if not requests:
        return 0.0
    offchip = 0
    for request in requests:
        src_region = endpoint_region(topology, request.src_endpoint)
        dst_region = endpoint_region(topology, request.dst_endpoint)
        if src_region != dst_region:
            offchip += 1
    return offchip / len(requests)
