"""Construction of traffic patterns by name.

The experiment layer (CLI ``--pattern``, simulation tasks, sweeps) refers
to synthetic traffic patterns by a short name; this registry maps each name
to a factory that builds the corresponding :class:`~repro.traffic.base.
TrafficModel` for a topology.  Registering a new pattern is one decorator —

::

    @register_pattern("my-pattern", description="...")
    def _make_my_pattern(topology, *, injection_rate, memory_access_fraction, seed):
        return MyPatternTraffic(topology, injection_rate, seed=seed)

— after which ``--pattern my-pattern`` works end to end through the
parallel runner and the result cache (the pattern name is part of every
task's cache key).

Every factory accepts the same keyword set (``injection_rate``,
``memory_access_fraction``, ``seed``) so callers never special-case
individual patterns; factories for patterns without a memory-traffic
component simply ignore ``memory_access_fraction``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..topology.graph import TopologyGraph
from .base import TrafficModel
from .synthetic import (
    BitComplementTraffic,
    BitReversalTraffic,
    BurstyHotspotTraffic,
    HotspotTraffic,
    NeighbourTraffic,
    TransposeTraffic,
    default_hotspots,
)
from .uniform import UniformRandomTraffic

#: Factory signature: ``factory(topology, injection_rate=...,
#: memory_access_fraction=..., seed=...) -> TrafficModel``.
PatternFactory = Callable[..., TrafficModel]


class UnknownPatternError(KeyError):
    """Raised when a traffic pattern name is not registered."""


@dataclass(frozen=True)
class PatternSpec:
    """One registered traffic pattern."""

    name: str
    factory: PatternFactory
    description: str = ""
    #: Whether the pattern routes a share of its traffic to memory vaults
    #: (and therefore honours ``memory_access_fraction``).
    uses_memory_fraction: bool = False


_REGISTRY: Dict[str, PatternSpec] = {}


def register_pattern(
    name: str,
    description: str = "",
    uses_memory_fraction: bool = False,
) -> Callable[[PatternFactory], PatternFactory]:
    """Class/function decorator that registers a traffic-pattern factory."""

    def decorator(factory: PatternFactory) -> PatternFactory:
        if name in _REGISTRY:
            raise ValueError(f"traffic pattern {name!r} is already registered")
        _REGISTRY[name] = PatternSpec(
            name=name,
            factory=factory,
            description=description,
            uses_memory_fraction=uses_memory_fraction,
        )
        return factory

    return decorator


def pattern_spec(name: str) -> PatternSpec:
    """Look up one registered pattern."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownPatternError(
            f"unknown traffic pattern {name!r}; known patterns: {known}"
        ) from None


def available_patterns() -> List[str]:
    """All registered pattern names, sorted."""
    return sorted(_REGISTRY)


def create_pattern(
    name: str,
    topology: TopologyGraph,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    """Build the named traffic pattern for one topology."""
    spec = pattern_spec(name)
    return spec.factory(
        topology,
        injection_rate=injection_rate,
        memory_access_fraction=memory_access_fraction,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Built-in patterns.
# ----------------------------------------------------------------------


@register_pattern(
    "uniform",
    description="uniform random destinations with a memory-access share",
    uses_memory_fraction=True,
)
def _make_uniform(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return UniformRandomTraffic(
        topology,
        injection_rate=injection_rate,
        memory_access_fraction=memory_access_fraction,
        seed=seed,
    )


@register_pattern("transpose", description="core (i, j) sends to core (j, i)")
def _make_transpose(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return TransposeTraffic(topology, injection_rate, seed=seed)


@register_pattern(
    "bit-complement", description="core i sends to core ~i (index reversal)"
)
def _make_bit_complement(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return BitComplementTraffic(topology, injection_rate, seed=seed)


@register_pattern(
    "bit-reversal", description="core i sends to the bit-reversed core index"
)
def _make_bit_reversal(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return BitReversalTraffic(topology, injection_rate, seed=seed)


@register_pattern(
    "neighbour", description="core i sends to core i+1 (best-case locality)"
)
def _make_neighbour(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return NeighbourTraffic(topology, injection_rate, seed=seed)


@register_pattern(
    "hotspot", description="uniform traffic with a share aimed at central cores"
)
def _make_hotspot(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return HotspotTraffic(
        topology,
        injection_rate,
        hotspot_endpoints=default_hotspots(topology),
        seed=seed,
    )


@register_pattern(
    "bursty-hotspot",
    description="deterministic on/off burst windows aimed at central cores",
)
def _make_bursty_hotspot(
    topology: TopologyGraph,
    *,
    injection_rate: float,
    memory_access_fraction: float = 0.2,
    seed: Optional[int] = None,
) -> TrafficModel:
    return BurstyHotspotTraffic(
        topology,
        injection_rate,
        hotspot_endpoints=default_hotspots(topology),
        seed=seed,
    )
