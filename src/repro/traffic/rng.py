"""Deterministic random-number helpers for traffic generation.

Every traffic model takes an explicit seed so simulations are reproducible;
this module centralises the creation of the underlying generators and a few
distributions the models share.
"""

from __future__ import annotations

import hashlib
import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


def make_rng(seed: Optional[int]) -> random.Random:
    """A private ``random.Random`` instance for one traffic model."""
    return random.Random(seed if seed is not None else 0xC0FFEE)


def derive_seed(base_seed: int, *components: object) -> int:
    """Deterministically derive an independent child seed.

    Hashes ``base_seed`` together with the string form of every component
    (e.g. an architecture name, a load point, a replica index) so that every
    simulation task of a parallel experiment gets its own stable stream:
    the same ``(base_seed, components)`` always yields the same child seed,
    regardless of process, platform or execution order, while any change to
    a component decorrelates the stream.
    """
    text = "\x1f".join([str(int(base_seed))] + [str(c) for c in components])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def lane_seeds(base_seed: int, lanes: int) -> list:
    """Independent per-lane seeds for batched multi-seed co-simulation.

    Lane 0 keeps ``base_seed`` itself (so a one-lane batch is seed-identical
    to the solo run, mirroring :func:`repro.parallel.runner.replicated_tasks`)
    and every further lane derives its own stream from the base seed and its
    lane index via :func:`derive_seed`.
    """
    if lanes <= 0:
        raise ValueError("lanes must be positive")
    return [base_seed] + [
        derive_seed(base_seed, "lane", index) for index in range(1, lanes)
    ]


def bernoulli(rng: random.Random, probability: float) -> bool:
    """One biased coin flip."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {probability}")
    if probability == 0.0:
        return False
    if probability == 1.0:
        return True
    return rng.random() < probability

def choose_other(rng: random.Random, options: Sequence[T], excluded: T) -> T:
    """Uniformly choose an element different from ``excluded``."""
    if not options:
        raise ValueError("options must not be empty")
    candidates = [o for o in options if o != excluded]
    if not candidates:
        raise ValueError("no candidate other than the excluded element")
    return rng.choice(candidates)


def weighted_choice(rng: random.Random, options: Sequence[T], weights: Sequence[float]) -> T:
    """Choose one option with the given (non-negative) weights."""
    if len(options) != len(weights):
        raise ValueError("options and weights must have the same length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    pick = rng.random() * total
    cumulative = 0.0
    for option, weight in zip(options, weights):
        if weight < 0:
            raise ValueError("weights must be non-negative")
        cumulative += weight
        if pick <= cumulative:
            return option
    return options[-1]
