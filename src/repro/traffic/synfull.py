"""SynFull-style application traffic generation.

Maps an :class:`~repro.traffic.applications.ApplicationProfile` onto the
multichip system the way the paper does for Fig. 6: "multiple threads of the
same application running on the multichip system where each processing chip
executes a single thread, and the DRAM stacks are shared among threads".

The generator is a Markov-modulated process:

* a *phase* chain (coarse behaviour changes over the run),
* a *burst* chain per core (short periods of elevated injection, the
  hallmark of coherence storms in the SynFull models), and
* per-packet destination selection: memory accesses go to the shared DRAM
  stacks (with a home-stack bias per chip), coherence traffic goes mostly to
  cores of the same chip (same thread) with a per-application fraction
  crossing chips.

Memory reads produce reply packets (cache-line sized) from the vault back to
the requesting core, so memory-bound applications load the M-C links in both
directions, as in the original traces.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from ..topology.graph import TopologyGraph
from .applications import ApplicationProfile, get_profile
from .base import TrafficModel, TrafficRequest
from .rng import bernoulli, choose_other, make_rng


class SynfullApplicationTraffic(TrafficModel):
    """Markov-modulated application traffic for the multichip system."""

    def __init__(
        self,
        topology: TopologyGraph,
        profile: ApplicationProfile,
        rate_scale: float = 1.0,
        memory_replies: bool = True,
        home_stack_bias: float = 0.6,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if not 0.0 <= home_stack_bias <= 1.0:
            raise ValueError("home_stack_bias must be in [0, 1]")
        self._profile = profile
        self._rate_scale = rate_scale
        self._memory_replies = memory_replies
        self._home_stack_bias = home_stack_bias
        self._seed = seed
        self._rng = make_rng(seed)

        self._core_region: Dict[int, int] = {
            e.endpoint_id: e.region_id for e in topology.cores
        }
        self._cores_by_region: Dict[int, List[int]] = {}
        for endpoint in topology.cores:
            self._cores_by_region.setdefault(endpoint.region_id, []).append(
                endpoint.endpoint_id
            )
        self._vaults_by_stack: Dict[int, List[int]] = {}
        for endpoint in topology.memory_vaults:
            self._vaults_by_stack.setdefault(endpoint.region_id, []).append(
                endpoint.endpoint_id
            )
        self._stack_ids = sorted(self._vaults_by_stack)
        self._burst_remaining: Dict[int, int] = {}
        self._phase_index = 0
        self._phase_elapsed = 0

    @classmethod
    def from_name(
        cls,
        topology: TopologyGraph,
        application: str,
        **kwargs,
    ) -> "SynfullApplicationTraffic":
        """Build a generator from a built-in application name."""
        return cls(topology, get_profile(application), **kwargs)

    @property
    def profile(self) -> ApplicationProfile:
        """The application profile driving this generator."""
        return self._profile

    def reset(self) -> None:
        """Restore all Markov state and the RNG."""
        self._rng = make_rng(self._seed)
        self._burst_remaining.clear()
        self._phase_index = 0
        self._phase_elapsed = 0

    def phase_token(self) -> Optional[object]:
        """The current phase index (re-anchors the kernel's watchdog)."""
        return self._phase_index

    # ------------------------------------------------------------------
    # Phase / burst chains.
    # ------------------------------------------------------------------

    def _current_phase(self):
        phases = self._profile.effective_phases
        return phases[self._phase_index % len(phases)]

    def _advance_phase(self) -> None:
        phases = self._profile.effective_phases
        if len(phases) == 1:
            return
        phase = self._current_phase()
        # Phase length is proportional to its weight, normalised to a
        # nominal 1000-cycle epoch so short simulations still see phases.
        duration = max(1, int(1000 * phase.weight))
        self._phase_elapsed += 1
        if self._phase_elapsed >= duration:
            self._phase_elapsed = 0
            self._phase_index = (self._phase_index + 1) % len(phases)

    def _core_rate(self, core: int) -> float:
        phase = self._current_phase()
        rate = self._profile.base_injection_rate * phase.rate_scale * self._rate_scale
        remaining = self._burst_remaining.get(core, 0)
        if remaining > 0:
            self._burst_remaining[core] = remaining - 1
            return min(1.0, rate * self._profile.burst_scale)
        if bernoulli(self._rng, self._profile.burst_probability):
            self._burst_remaining[core] = self._profile.burst_duration_cycles
            return min(1.0, rate * self._profile.burst_scale)
        return min(1.0, rate)

    # ------------------------------------------------------------------
    # Destination selection.
    # ------------------------------------------------------------------

    def _pick_memory_vault(self, core: int) -> int:
        if not self._stack_ids:
            raise ValueError("application traffic requires memory stacks")
        region = self._core_region[core]
        # Home stack: chips are mapped round-robin onto stacks so each
        # thread has an affinity stack, with the remaining accesses spread
        # over all stacks (shared data).
        home_stack = self._stack_ids[region % len(self._stack_ids)]
        if bernoulli(self._rng, self._home_stack_bias):
            stack = home_stack
        else:
            stack = self._rng.choice(self._stack_ids)
        return self._rng.choice(self._vaults_by_stack[stack])

    def _pick_coherence_peer(self, core: int) -> int:
        region = self._core_region[core]
        same_chip = [c for c in self._cores_by_region[region] if c != core]
        cross = bernoulli(self._rng, self._profile.cross_thread_fraction)
        if cross or not same_chip:
            return choose_other(self._rng, self._cores, core)
        return self._rng.choice(same_chip)

    # ------------------------------------------------------------------
    # TrafficModel interface.
    # ------------------------------------------------------------------

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        self._advance_phase()
        phase = self._current_phase()
        memory_fraction = phase.memory_fraction
        for core in self._cores:
            rate = self._core_rate(core)
            if rate <= 0 or not bernoulli(self._rng, rate):
                continue
            if self._stack_ids and bernoulli(self._rng, memory_fraction):
                vault = self._pick_memory_vault(core)
                is_read = bernoulli(self._rng, self._profile.read_fraction)
                length = (
                    self._profile.request_length_flits
                    if is_read
                    else self._profile.data_length_flits
                )
                yield TrafficRequest(
                    src_endpoint=core,
                    dst_endpoint=vault,
                    length_flits=length,
                    is_memory_access=True,
                    traffic_class="memory_read" if is_read else "memory_write",
                )
            else:
                peer = self._pick_coherence_peer(core)
                long_message = bernoulli(self._rng, 0.3)
                yield TrafficRequest(
                    src_endpoint=core,
                    dst_endpoint=peer,
                    length_flits=self._profile.data_length_flits
                    if long_message
                    else self._profile.request_length_flits,
                    traffic_class="coherence",
                )

    def on_packet_delivered(self, packet, cycle: int) -> Iterable[TrafficRequest]:
        """Memory reads produce cache-line replies from the vault."""
        if not self._memory_replies:
            return ()
        if packet.traffic_class != "memory_read" or packet.is_reply:
            return ()
        return (
            TrafficRequest(
                src_endpoint=packet.dst_endpoint,
                dst_endpoint=packet.src_endpoint,
                length_flits=self._profile.data_length_flits,
                is_memory_access=True,
                is_reply=True,
                traffic_class="memory_reply",
            ),
        )
