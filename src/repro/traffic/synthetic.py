"""Additional synthetic traffic patterns.

The paper's synthetic evaluation uses uniform random traffic; these classic
NoC patterns (hotspot, transpose, bit-complement, bit-reversal, neighbour,
bursty hotspot) are provided so the framework can be exercised with
spatially skewed and temporally bursty workloads as well — they back the
``--pattern`` experiment axis, the extra ablation benchmarks and several
property tests.  All of them are constructible by name through
:mod:`repro.traffic.registry`.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..topology.graph import TopologyGraph
from .base import TrafficModel, TrafficRequest
from .rng import bernoulli, choose_other, make_rng


class HotspotTraffic(TrafficModel):
    """Uniform traffic with a fraction of packets aimed at hotspot endpoints."""

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        hotspot_endpoints: Sequence[int],
        hotspot_fraction: float = 0.3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        if not hotspot_endpoints:
            raise ValueError("hotspot_endpoints must not be empty")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        known = {e.endpoint_id for e in topology.endpoints}
        for endpoint in hotspot_endpoints:
            if endpoint not in known:
                raise ValueError(f"unknown hotspot endpoint {endpoint}")
        self._injection_rate = injection_rate
        self._hotspots = list(hotspot_endpoints)
        self._fraction = hotspot_fraction
        self._seed = seed
        self._rng = make_rng(seed)

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        probability = min(1.0, self._injection_rate)
        if probability <= 0:
            return
        for core in self._cores:
            if not bernoulli(self._rng, probability):
                continue
            if bernoulli(self._rng, self._fraction):
                candidates = [h for h in self._hotspots if h != core]
                if not candidates:
                    continue
                destination = self._rng.choice(candidates)
                yield TrafficRequest(core, destination, traffic_class="hotspot")
            else:
                destination = choose_other(self._rng, self._cores, core)
                yield TrafficRequest(core, destination)


class _PermutationTraffic(TrafficModel):
    """Base for deterministic-destination (permutation) patterns."""

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        self._injection_rate = injection_rate
        self._seed = seed
        self._rng = make_rng(seed)
        self._destinations = self._build_permutation()

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def _build_permutation(self) -> List[int]:
        raise NotImplementedError

    def destination_of(self, core_index: int) -> int:
        """Destination endpoint of the core at position ``core_index``."""
        return self._destinations[core_index]

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        probability = min(1.0, self._injection_rate)
        if probability <= 0:
            return
        for index, core in enumerate(self._cores):
            if not bernoulli(self._rng, probability):
                continue
            destination = self._destinations[index]
            if destination == core:
                continue
            yield TrafficRequest(core, destination)


class TransposeTraffic(_PermutationTraffic):
    """Core (i, j) of the logical core grid sends to core (j, i)."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        side = int(round(count ** 0.5))
        if side * side != count:
            # Non-square core counts fall back to an index-reversal pattern.
            return [self._cores[count - 1 - i] for i in range(count)]
        destinations = []
        for index in range(count):
            row, col = divmod(index, side)
            destinations.append(self._cores[col * side + row])
        return destinations


class BitComplementTraffic(_PermutationTraffic):
    """Core ``i`` sends to core ``~i`` (index reversal within the core list)."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        return [self._cores[count - 1 - i] for i in range(count)]


class BitReversalTraffic(_PermutationTraffic):
    """Core ``i`` sends to the core whose index is ``i`` bit-reversed.

    With ``2**k`` cores the destination index is the ``k``-bit reversal of
    the source index — the classic FFT-butterfly worst case for meshes.
    Non-power-of-two core counts fall back to an index-reversal pattern,
    matching :class:`BitComplementTraffic`'s fallback behaviour.
    """

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        bits = count.bit_length() - 1
        if count <= 1 or (1 << bits) != count:
            return [self._cores[count - 1 - i] for i in range(count)]
        destinations = []
        for index in range(count):
            reversed_index = 0
            for bit in range(bits):
                if index & (1 << bit):
                    reversed_index |= 1 << (bits - 1 - bit)
            destinations.append(self._cores[reversed_index])
        return destinations


class NeighbourTraffic(_PermutationTraffic):
    """Core ``i`` sends to core ``i + 1`` (wrapping), a best-case local pattern."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        return [self._cores[(i + 1) % count] for i in range(count)]


class BurstyHotspotTraffic(TrafficModel):
    """Hotspot traffic gated by deterministic on/off burst windows.

    Time is divided into fixed windows of ``burst_period_cycles``; the
    first ``burst_duty`` share of each window is a *burst*, during which
    every core injects at ``burst_scale`` times the base rate and a
    ``hotspot_fraction`` of packets target the hotspot endpoints.  Outside
    the burst the pattern degenerates to low-rate uniform background
    traffic.  The window index is exposed through :meth:`phase_token` so
    the simulation kernel re-anchors its stall watchdog at each window
    boundary instead of mistaking a quiet window after a heavy burst for a
    deadlock.
    """

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        hotspot_endpoints: Optional[Sequence[int]] = None,
        hotspot_fraction: float = 0.5,
        burst_period_cycles: int = 200,
        burst_duty: float = 0.25,
        burst_scale: float = 4.0,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        if burst_period_cycles <= 0:
            raise ValueError("burst_period_cycles must be positive")
        if not 0.0 < burst_duty <= 1.0:
            raise ValueError("burst_duty must be in (0, 1]")
        if burst_scale < 1.0:
            raise ValueError("burst_scale must be at least 1")
        if hotspot_endpoints is None:
            hotspot_endpoints = default_hotspots(topology)
        if not hotspot_endpoints:
            raise ValueError("hotspot_endpoints must not be empty")
        known = {e.endpoint_id for e in topology.endpoints}
        for endpoint in hotspot_endpoints:
            if endpoint not in known:
                raise ValueError(f"unknown hotspot endpoint {endpoint}")
        self._injection_rate = injection_rate
        self._hotspots = list(hotspot_endpoints)
        self._fraction = hotspot_fraction
        self._period = burst_period_cycles
        self._burst_cycles = max(1, int(round(burst_duty * burst_period_cycles)))
        self._burst_scale = burst_scale
        self._seed = seed
        self._rng = make_rng(seed)
        self._window = 0

    def reset(self) -> None:
        self._rng = make_rng(self._seed)
        self._window = 0

    def phase_token(self) -> Optional[object]:
        """The burst-window index of the last generated cycle."""
        return self._window

    def in_burst(self, cycle: int) -> bool:
        """Whether ``cycle`` falls inside a burst window."""
        return (cycle % self._period) < self._burst_cycles

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        self._window = cycle // self._period
        burst = self.in_burst(cycle)
        rate = self._injection_rate * (self._burst_scale if burst else 1.0)
        probability = min(1.0, rate)
        if probability <= 0:
            return
        for core in self._cores:
            if not bernoulli(self._rng, probability):
                continue
            if burst and bernoulli(self._rng, self._fraction):
                candidates = [h for h in self._hotspots if h != core]
                if not candidates:
                    continue
                destination = self._rng.choice(candidates)
                yield TrafficRequest(core, destination, traffic_class="hotspot")
            else:
                destination = choose_other(self._rng, self._cores, core)
                yield TrafficRequest(core, destination)


def default_hotspots(topology: TopologyGraph, count: int = 2) -> List[int]:
    """A deterministic default hotspot set: the central core endpoints.

    Used by the registry when a pattern is constructed by name and the
    caller supplies no explicit hotspot list.
    """
    cores = [e.endpoint_id for e in topology.cores]
    if not cores:
        raise ValueError("topology has no core endpoints")
    count = max(1, min(count, len(cores)))
    middle = len(cores) // 2
    start = max(0, middle - count // 2)
    return cores[start:start + count]
