"""Additional synthetic traffic patterns.

The paper's synthetic evaluation uses uniform random traffic; these classic
NoC patterns (hotspot, transpose, bit-complement, neighbour) are provided so
the framework can be exercised with spatially skewed workloads as well —
they back the extra ablation benchmarks and several property tests.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..topology.graph import TopologyGraph
from .base import TrafficModel, TrafficRequest
from .rng import bernoulli, choose_other, make_rng


class HotspotTraffic(TrafficModel):
    """Uniform traffic with a fraction of packets aimed at hotspot endpoints."""

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        hotspot_endpoints: Sequence[int],
        hotspot_fraction: float = 0.3,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        if not hotspot_endpoints:
            raise ValueError("hotspot_endpoints must not be empty")
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in [0, 1]")
        known = {e.endpoint_id for e in topology.endpoints}
        for endpoint in hotspot_endpoints:
            if endpoint not in known:
                raise ValueError(f"unknown hotspot endpoint {endpoint}")
        self._injection_rate = injection_rate
        self._hotspots = list(hotspot_endpoints)
        self._fraction = hotspot_fraction
        self._seed = seed
        self._rng = make_rng(seed)

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        probability = min(1.0, self._injection_rate)
        if probability <= 0:
            return
        for core in self._cores:
            if not bernoulli(self._rng, probability):
                continue
            if bernoulli(self._rng, self._fraction):
                candidates = [h for h in self._hotspots if h != core]
                if not candidates:
                    continue
                destination = self._rng.choice(candidates)
                yield TrafficRequest(core, destination, traffic_class="hotspot")
            else:
                destination = choose_other(self._rng, self._cores, core)
                yield TrafficRequest(core, destination)


class _PermutationTraffic(TrafficModel):
    """Base for deterministic-destination (permutation) patterns."""

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError("injection_rate must be non-negative")
        self._injection_rate = injection_rate
        self._seed = seed
        self._rng = make_rng(seed)
        self._destinations = self._build_permutation()

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def _build_permutation(self) -> List[int]:
        raise NotImplementedError

    def destination_of(self, core_index: int) -> int:
        """Destination endpoint of the core at position ``core_index``."""
        return self._destinations[core_index]

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        probability = min(1.0, self._injection_rate)
        if probability <= 0:
            return
        for index, core in enumerate(self._cores):
            if not bernoulli(self._rng, probability):
                continue
            destination = self._destinations[index]
            if destination == core:
                continue
            yield TrafficRequest(core, destination)


class TransposeTraffic(_PermutationTraffic):
    """Core (i, j) of the logical core grid sends to core (j, i)."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        side = int(round(count ** 0.5))
        if side * side != count:
            # Non-square core counts fall back to an index-reversal pattern.
            return [self._cores[count - 1 - i] for i in range(count)]
        destinations = []
        for index in range(count):
            row, col = divmod(index, side)
            destinations.append(self._cores[col * side + row])
        return destinations


class BitComplementTraffic(_PermutationTraffic):
    """Core ``i`` sends to core ``~i`` (index reversal within the core list)."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        return [self._cores[count - 1 - i] for i in range(count)]


class NeighbourTraffic(_PermutationTraffic):
    """Core ``i`` sends to core ``i + 1`` (wrapping), a best-case local pattern."""

    def _build_permutation(self) -> List[int]:
        count = len(self._cores)
        return [self._cores[(i + 1) % count] for i in range(count)]
