"""Uniform random traffic with a configurable memory-access proportion.

This is the synthetic workload of Sections IV-B and IV-C: "traffic
originating from each core has a certain preset probability of being a
memory access while the rest of the traffic is addressed to all other cores
in the entire system with equal probability".  The memory-access proportion
is 20 % by default (Fig. 2/3) and is swept from 20 % to 80 % for Fig. 5.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from ..topology.graph import TopologyGraph
from .base import TrafficModel, TrafficRequest
from .rng import choose_other, make_rng


class UniformRandomTraffic(TrafficModel):
    """Bernoulli injection per core per cycle, uniform destinations."""

    def __init__(
        self,
        topology: TopologyGraph,
        injection_rate: float,
        memory_access_fraction: float = 0.2,
        request_length_flits: Optional[int] = None,
        memory_replies: bool = False,
        reply_length_flits: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology)
        if injection_rate < 0:
            raise ValueError(f"injection_rate must be non-negative, got {injection_rate}")
        if not 0.0 <= memory_access_fraction <= 1.0:
            raise ValueError(
                "memory_access_fraction must be in [0, 1], got "
                f"{memory_access_fraction}"
            )
        if memory_access_fraction > 0 and not self.memory_vaults:
            raise ValueError(
                "memory_access_fraction > 0 requires memory vault endpoints"
            )
        self._injection_rate = injection_rate
        self._memory_fraction = memory_access_fraction
        self._request_length = request_length_flits
        self._memory_replies = memory_replies
        self._reply_length = reply_length_flits
        self._seed = seed
        self._rng = make_rng(seed)

    @property
    def injection_rate(self) -> float:
        """Offered load in packets per core per cycle."""
        return self._injection_rate

    @property
    def memory_access_fraction(self) -> float:
        """Probability that a generated packet targets a memory vault."""
        return self._memory_fraction

    def reset(self) -> None:
        """Restore the generator to its initial (seeded) state."""
        self._rng = make_rng(self._seed)

    def generate(self, cycle: int) -> Iterator[TrafficRequest]:
        """Bernoulli trial per core; memory or core destination per the mix.

        The per-core Bernoulli trial is the one piece of per-cycle work that
        scales with the system size even at zero accepted load, so the coin
        flips are inlined (one bound ``random()`` call against a hoisted
        threshold) instead of going through :func:`repro.traffic.rng.bernoulli`
        per core.  The draw sequence is bit-identical to the helper: a
        probability of exactly 0 or 1 consumes no draw, anything else
        consumes one ``random()`` per trial.
        """
        rate = self._injection_rate
        if rate <= 0:
            return
        # Offered loads above one packet per cycle are clamped to one
        # generation opportunity per cycle (the paper's load axis tops out
        # at 1 packet/core/cycle).
        probability = min(1.0, rate)
        random = self._rng.random
        always = probability >= 1.0
        memory_fraction = self._memory_fraction
        for core in self._cores:
            if not always and random() >= probability:
                continue
            if memory_fraction > 0 and (
                memory_fraction >= 1.0 or random() < memory_fraction
            ):
                destination = self._rng.choice(self._memory_vaults)
                yield TrafficRequest(
                    src_endpoint=core,
                    dst_endpoint=destination,
                    length_flits=self._request_length,
                    is_memory_access=True,
                )
            else:
                destination = choose_other(self._rng, self._cores, core)
                yield TrafficRequest(
                    src_endpoint=core,
                    dst_endpoint=destination,
                    length_flits=self._request_length,
                )

    def on_packet_delivered(self, packet, cycle: int) -> Iterable[TrafficRequest]:
        """Optionally answer memory requests with a reply packet."""
        if not self._memory_replies:
            return ()
        if not packet.is_memory_access or packet.is_reply:
            return ()
        return (
            TrafficRequest(
                src_endpoint=packet.dst_endpoint,
                dst_endpoint=packet.src_endpoint,
                length_flits=self._reply_length or self._request_length,
                is_memory_access=True,
                is_reply=True,
                traffic_class="memory_reply",
            ),
        )
