"""mm-wave wireless interconnect: physical layer and MAC protocols.

Models the 60 GHz zig-zag antennas, the OOK transceivers (including the
power-gated "sleepy" mode), the analytic link budget showing that the
in-package link closes at the target BER, the channel organisation, and the
two MAC protocols compared in the paper (baseline token passing and the
proposed control-packet MAC with partial-packet transmission).
"""

from .antenna import SPEED_OF_LIGHT_M_PER_S, ZigZagAntenna
from .channel import ChannelPlan, assign_channels
from .link_budget import LinkBudget
from .mac import (
    ControlPacketMac,
    MacProtocol,
    MacStatistics,
    TokenMac,
    TransmissionPlan,
)
from .transceiver import Transceiver, TransceiverSpec, TransceiverState

__all__ = [
    "ChannelPlan",
    "ControlPacketMac",
    "LinkBudget",
    "MacProtocol",
    "MacStatistics",
    "SPEED_OF_LIGHT_M_PER_S",
    "TokenMac",
    "Transceiver",
    "TransceiverSpec",
    "TransceiverState",
    "TransmissionPlan",
    "ZigZagAntenna",
    "assign_channels",
]
