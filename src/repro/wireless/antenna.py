"""On-chip mm-wave zig-zag antenna model.

The paper adopts metal zig-zag antennas operating in the 60 GHz band
(Section III-B): compact (the zig-zag folding shortens the physical arm
relative to a linear dipole), CMOS-compatible (top-layer metal) and
non-directional, so WIs at arbitrary relative orientations in different
chips can communicate.  Only macro-parameters of the antenna enter the
system-level simulation; this module captures them and provides the small
amount of geometry the link-budget check needs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..energy.technology import (
    WIRELESS_ANTENNA_BANDWIDTH_HZ,
    WIRELESS_CARRIER_FREQUENCY_HZ,
)

#: Speed of light [m/s].
SPEED_OF_LIGHT_M_PER_S = 299_792_458.0


@dataclass(frozen=True)
class ZigZagAntenna:
    """A 60 GHz on-chip zig-zag antenna.

    Parameters follow the demonstrated prototypes cited by the paper
    ([5][11]): quarter-wave arms folded in a zig-zag pattern, roughly
    isotropic in-package radiation, and a -3 dB bandwidth of 16 GHz.
    """

    carrier_frequency_hz: float = WIRELESS_CARRIER_FREQUENCY_HZ
    bandwidth_hz: float = WIRELESS_ANTENNA_BANDWIDTH_HZ
    gain_dbi: float = 1.0
    arm_segments: int = 6
    bend_angle_deg: float = 30.0

    def __post_init__(self) -> None:
        if self.carrier_frequency_hz <= 0:
            raise ValueError("carrier_frequency_hz must be positive")
        if self.bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")
        if self.arm_segments <= 0:
            raise ValueError("arm_segments must be positive")

    @property
    def wavelength_mm(self) -> float:
        """Free-space wavelength at the carrier [mm]."""
        return SPEED_OF_LIGHT_M_PER_S / self.carrier_frequency_hz * 1e3

    @property
    def axial_length_mm(self) -> float:
        """Physical (axial) length of one folded quarter-wave arm [mm].

        The zig-zag folding shortens the axial footprint of the quarter-wave
        arm by the cosine of the bend angle — the compactness argument the
        paper makes against a linear dipole.
        """
        quarter_wave = self.wavelength_mm / 4.0
        return quarter_wave * math.cos(math.radians(self.bend_angle_deg))

    @property
    def is_directional(self) -> bool:
        """Zig-zag on-chip antennas are treated as non-directional."""
        return False

    def gain_linear(self) -> float:
        """Antenna gain as a linear power ratio."""
        return 10 ** (self.gain_dbi / 10.0)

    def fractional_bandwidth(self) -> float:
        """Bandwidth relative to the carrier frequency."""
        return self.bandwidth_hz / self.carrier_frequency_hz

    def supports_data_rate(self, data_rate_gbps: float, spectral_efficiency: float = 1.0) -> bool:
        """Whether the antenna bandwidth supports a given OOK data rate.

        Non-coherent OOK needs roughly 1 Hz per bit/s (spectral efficiency
        ~1), so a 16 GHz antenna supports the 16 Gb/s transceiver.
        """
        if data_rate_gbps < 0:
            raise ValueError("data_rate_gbps must be non-negative")
        if spectral_efficiency <= 0:
            raise ValueError("spectral_efficiency must be positive")
        return data_rate_gbps * 1e9 <= self.bandwidth_hz * spectral_efficiency
