"""Wireless channel organisation.

A single 60 GHz carrier with the 16 GHz antenna bandwidth forms one shared
channel; systems that need more aggregate wireless bandwidth divide their
WIs over several orthogonal (frequency-division) channels, each arbitrated
by its own MAC instance.  This module holds the channel-assignment policy
and a small record describing each channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..energy.technology import (
    WIRELESS_ANTENNA_BANDWIDTH_HZ,
    WIRELESS_CARRIER_FREQUENCY_HZ,
    WIRELESS_DATA_RATE_GBPS,
)


@dataclass(frozen=True)
class ChannelPlan:
    """One frequency channel and the WIs assigned to it."""

    channel_id: int
    centre_frequency_hz: float
    bandwidth_hz: float
    data_rate_gbps: float
    wi_switch_ids: Tuple[int, ...]


def assign_channels(
    wi_switch_ids: Sequence[int],
    num_channels: int,
    carrier_hz: float = WIRELESS_CARRIER_FREQUENCY_HZ,
    bandwidth_hz: float = WIRELESS_ANTENNA_BANDWIDTH_HZ,
    data_rate_gbps: float = WIRELESS_DATA_RATE_GBPS,
) -> List[ChannelPlan]:
    """Divide the WIs over ``num_channels`` orthogonal channels.

    WIs are assigned round-robin in id order, which interleaves the WIs of
    different chips over different channels so that chip pairs communicating
    heavily do not all contend on one channel.  Channels that end up with a
    single WI (or none) are still returned — their MAC simply has nothing to
    arbitrate.

    Note that two WIs can only exchange flits when they share a channel, so
    the routing layer must be aware of the assignment when ``num_channels``
    exceeds 1.  The simulator sidesteps this by treating the channel
    assignment as a *time/frequency slicing of the shared medium*: every WI
    can reach every other WI, but at most ``num_channels`` transmissions are
    in the air simultaneously.  This models a multi-band transceiver front
    end and is the calibration point discussed in DESIGN.md section 4.
    """
    if num_channels <= 0:
        raise ValueError(f"num_channels must be positive, got {num_channels}")
    ordered = sorted(wi_switch_ids)
    buckets: Dict[int, List[int]] = {i: [] for i in range(num_channels)}
    for index, wi in enumerate(ordered):
        buckets[index % num_channels].append(wi)
    plans = []
    for channel_id in range(num_channels):
        centre = carrier_hz + channel_id * bandwidth_hz
        plans.append(
            ChannelPlan(
                channel_id=channel_id,
                centre_frequency_hz=centre,
                bandwidth_hz=bandwidth_hz,
                data_rate_gbps=data_rate_gbps,
                wi_switch_ids=tuple(buckets[channel_id]),
            )
        )
    return plans
