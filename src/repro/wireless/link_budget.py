"""Link-budget check for the in-package 60 GHz channel.

The system-level simulator takes the transceiver's published data rate and
energy as given; this module provides the supporting analysis showing that a
60 GHz OOK link between any two WIs in the package closes with margin at the
target BER, mirroring the feasibility argument the paper makes by citation
(wireless links of up to 10 m have been demonstrated [5], package distances
are a few centimetres).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .antenna import SPEED_OF_LIGHT_M_PER_S, ZigZagAntenna

#: Boltzmann constant [J/K].
BOLTZMANN_J_PER_K = 1.380649e-23


@dataclass(frozen=True)
class LinkBudget:
    """Analytic 60 GHz link budget between two WIs."""

    transmit_power_dbm: float = 5.0
    antenna: ZigZagAntenna = ZigZagAntenna()
    noise_figure_db: float = 5.5
    implementation_loss_db: float = 2.5
    dielectric_loss_db_per_cm: float = 0.5
    temperature_k: float = 300.0

    def path_loss_db(self, distance_mm: float) -> float:
        """Friis free-space path loss plus dielectric packaging loss [dB]."""
        if distance_mm <= 0:
            raise ValueError(f"distance_mm must be positive, got {distance_mm}")
        distance_m = distance_mm * 1e-3
        wavelength_m = SPEED_OF_LIGHT_M_PER_S / self.antenna.carrier_frequency_hz
        friis = 20 * math.log10(4 * math.pi * distance_m / wavelength_m)
        dielectric = self.dielectric_loss_db_per_cm * (distance_mm / 10.0)
        return friis + dielectric

    def received_power_dbm(self, distance_mm: float) -> float:
        """Received signal power at the far WI [dBm]."""
        return (
            self.transmit_power_dbm
            + 2 * self.antenna.gain_dbi
            - self.path_loss_db(distance_mm)
            - self.implementation_loss_db
        )

    def noise_power_dbm(self, bandwidth_hz: float) -> float:
        """Integrated thermal noise power over the receiver bandwidth [dBm]."""
        if bandwidth_hz <= 0:
            raise ValueError(f"bandwidth_hz must be positive, got {bandwidth_hz}")
        noise_w = BOLTZMANN_J_PER_K * self.temperature_k * bandwidth_hz
        return 10 * math.log10(noise_w * 1e3) + self.noise_figure_db

    def snr_db(self, distance_mm: float, data_rate_gbps: float) -> float:
        """Signal-to-noise ratio of the link [dB]."""
        bandwidth = data_rate_gbps * 1e9  # OOK: ~1 Hz per bit/s
        return self.received_power_dbm(distance_mm) - self.noise_power_dbm(bandwidth)

    def bit_error_rate(self, distance_mm: float, data_rate_gbps: float) -> float:
        """BER of non-coherent OOK at the link SNR.

        Uses the standard non-coherent OOK approximation
        ``BER = 0.5 * exp(-SNR/4)`` (SNR as a linear ratio).
        """
        snr_linear = 10 ** (self.snr_db(distance_mm, data_rate_gbps) / 10.0)
        return 0.5 * math.exp(-snr_linear / 4.0)

    def closes(
        self,
        distance_mm: float,
        data_rate_gbps: float,
        target_ber: float = 1e-15,
    ) -> bool:
        """Whether the link meets the target BER at the given distance/rate."""
        if target_ber <= 0:
            raise ValueError("target_ber must be positive")
        return self.bit_error_rate(distance_mm, data_rate_gbps) <= target_ber

    def max_distance_mm(
        self,
        data_rate_gbps: float,
        target_ber: float = 1e-15,
        limit_mm: float = 1000.0,
    ) -> float:
        """Largest distance at which the link still closes (bisection search)."""
        low, high = 0.1, limit_mm
        if not self.closes(low, data_rate_gbps, target_ber):
            return 0.0
        if self.closes(high, data_rate_gbps, target_ber):
            return high
        for _ in range(60):
            mid = (low + high) / 2
            if self.closes(mid, data_rate_gbps, target_ber):
                low = mid
            else:
                high = mid
        return low
