"""Medium access control protocols for the shared wireless channel."""

from .base import MacDataPlane, MacProtocol, MacStatistics
from .control_packet import ControlPacketMac, TransmissionPlan
from .fdma import FdmaMac
from .registry import (
    MacBuildContext,
    MacSpec,
    UnknownMacError,
    available_macs,
    create_mac,
    mac_spec,
    register_mac,
)
from .tdma import TdmaMac
from .token import TokenMac

__all__ = [
    "ControlPacketMac",
    "FdmaMac",
    "MacBuildContext",
    "MacDataPlane",
    "MacProtocol",
    "MacSpec",
    "MacStatistics",
    "TdmaMac",
    "TokenMac",
    "TransmissionPlan",
    "UnknownMacError",
    "available_macs",
    "create_mac",
    "mac_spec",
    "register_mac",
]
