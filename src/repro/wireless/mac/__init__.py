"""Medium access control protocols for the shared wireless channel."""

from .base import MacAdapter, MacProtocol, MacStatistics, PendingTransmission
from .control_packet import ControlPacketMac, TransmissionPlan
from .token import TokenMac

__all__ = [
    "ControlPacketMac",
    "MacAdapter",
    "MacProtocol",
    "MacStatistics",
    "PendingTransmission",
    "TokenMac",
    "TransmissionPlan",
]
