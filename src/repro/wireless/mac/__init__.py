"""Medium access control protocols for the shared wireless channel."""

from .base import (
    LegacyAdapterBridge,
    MacAdapter,
    MacDataPlane,
    MacProtocol,
    MacStatistics,
    PendingTransmission,
)
from .control_packet import ControlPacketMac, TransmissionPlan
from .fdma import FdmaMac
from .registry import (
    MacBuildContext,
    MacSpec,
    UnknownMacError,
    available_macs,
    create_mac,
    mac_spec,
    register_mac,
)
from .tdma import TdmaMac
from .token import TokenMac

__all__ = [
    "ControlPacketMac",
    "FdmaMac",
    "LegacyAdapterBridge",
    "MacAdapter",
    "MacBuildContext",
    "MacDataPlane",
    "MacProtocol",
    "MacSpec",
    "MacStatistics",
    "PendingTransmission",
    "TdmaMac",
    "TokenMac",
    "TransmissionPlan",
    "UnknownMacError",
    "available_macs",
    "create_mac",
    "mac_spec",
    "register_mac",
]
