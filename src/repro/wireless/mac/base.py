"""Medium access control (MAC) protocol interface.

Multiple WIs share each wireless channel; the MAC serialises their access so
communication stays contention-free (Section III-D).  The simulator asks the
MAC two questions every cycle: *may this WI put a flit for that destination
on the air right now?* (``may_send``) and *who is transmitting / listening?*
(for the sleepy-transceiver power model).  The MAC in turn observes the
traffic waiting at each WI through a small adapter interface so the protocol
logic stays independent of the simulator's internals.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set


@dataclass(frozen=True)
class PendingTransmission:
    """One VC's worth of traffic waiting at a WI for the wireless channel."""

    dst_switch: int
    packet_id: int
    buffered_flits: int
    packet_length_flits: int
    front_is_head: bool
    #: Flits of the packet that still have to cross this wireless hop
    #: (buffered ones plus those still streaming into the WI switch).  The
    #: transmitting WI knows this from the packet header, so the control
    #: packet can announce the full remainder rather than only the flits
    #: buffered at planning time.
    remaining_flits: int = 0


class MacAdapter(abc.ABC):
    """What a MAC protocol can see and do in the surrounding system."""

    @abc.abstractmethod
    def pending(self, wi_switch_id: int) -> List[PendingTransmission]:
        """Traffic currently waiting at a WI for the wireless channel."""

    @abc.abstractmethod
    def record_control_energy(self, energy_pj: float) -> None:
        """Charge the energy of a MAC control packet / token broadcast."""

    @abc.abstractmethod
    def acceptable_flits(
        self, dst_switch: int, packet_id: int, is_head: bool
    ) -> int:
        """How many flits of a packet the destination WI can buffer right now.

        The control packet of the previous transmission towards the same
        destination carries enough information for the transmitting WI to
        know the destination VC occupancy, so MAC protocols plan only bursts
        the receiver can actually accept.
        """


class MacStatistics:
    """Counters every MAC implementation maintains."""

    def __init__(self) -> None:
        self.grants = 0
        self.control_packets = 0
        self.token_passes = 0
        self.flits_transmitted = 0
        self.idle_grant_cycles = 0
        self.forced_releases = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports and tests."""
        return {
            "grants": self.grants,
            "control_packets": self.control_packets,
            "token_passes": self.token_passes,
            "flits_transmitted": self.flits_transmitted,
            "idle_grant_cycles": self.idle_grant_cycles,
            "forced_releases": self.forced_releases,
        }


class MacProtocol(abc.ABC):
    """Base class of the channel-access protocols.

    Parameters
    ----------
    channel_id:
        Index of the wireless channel this protocol instance arbitrates.
    wi_switch_ids:
        The WIs sharing the channel, in their fixed sequence order ("the WIs
        are numbered in a sequence", Section III-D).
    adapter:
        View into the simulator (pending traffic, energy accounting).
    """

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter: MacAdapter,
    ) -> None:
        if not wi_switch_ids:
            raise ValueError("a wireless channel needs at least one WI")
        self.channel_id = channel_id
        self.wi_switch_ids = list(wi_switch_ids)
        self.adapter = adapter
        self.stats = MacStatistics()

    # ------------------------------------------------------------------
    # Protocol interface used by the simulator.
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def update(self, cycle: int) -> None:
        """Advance protocol state at the beginning of a cycle."""

    @abc.abstractmethod
    def may_send(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Whether the WI may put this flit on the channel this cycle."""

    def on_flit_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notification that a flit was transmitted (default: count it)."""
        self.stats.flits_transmitted += 1

    @abc.abstractmethod
    def current_transmitter(self) -> Optional[int]:
        """WI currently holding the channel, if any."""

    def intended_receivers(self) -> Set[int]:
        """Destination WIs of the current transmission (for sleep control).

        The default says "everyone listens", which models a MAC without
        receiver power gating.
        """
        return set(self.wi_switch_ids)

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------

    def next_wi_index(self, index: int) -> int:
        """Index of the WI after ``index`` in the fixed sequence."""
        return (index + 1) % len(self.wi_switch_ids)

    def member_index(self, wi_switch_id: int) -> int:
        """Position of a WI in the channel's sequence."""
        try:
            return self.wi_switch_ids.index(wi_switch_id)
        except ValueError:
            raise ValueError(
                f"WI {wi_switch_id} is not a member of channel {self.channel_id}"
            ) from None
