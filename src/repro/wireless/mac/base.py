"""Medium access control (MAC) protocol interface.

Multiple WIs share each wireless channel; the MAC serialises their access so
communication stays contention-free (Section III-D).  The simulator asks the
MAC two questions every cycle: *may this WI put a flit for that destination
on the air right now?* (:meth:`MacProtocol.grants`) and *who is transmitting
/ listening?* (for the sleepy-transceiver power model).  The MAC in turn
observes the traffic waiting at each WI through a *data plane* interface so
the protocol logic stays independent of the simulator's internals.

The boundary is the **hot** handle-based interface, mirroring the fabric
layer: a scan (:meth:`MacDataPlane.scan_pending`) fills preallocated
parallel scratch arrays (``pend_dst`` / ``pend_pid`` / ``pend_buffered``
/ ``pend_length`` / ``pend_remaining`` / ``pend_head``) straight from the
packet pool and the per-WI occupied-VC ordinal sets, and returns the
entry count.  No dataclass, tuple or list is created per cycle; MACs
index the scratch arrays.  :class:`~repro.noc.fabric.WirelessFabric` is
the production implementation.  Likewise, the per-flit admission methods
are hot (:meth:`MacProtocol.grants` / :meth:`MacProtocol.notify_sent`,
plain-int arguments).

The historical object-era spellings — ``PendingTransmission``
dataclasses, the ``MacAdapter`` protocol and its bridge, the
``may_send`` / ``on_flit_sent`` wrappers — live in
:mod:`repro.testing.legacy` (deprecated; unit tests and external callers
only).  A legacy adapter handed to :class:`MacProtocol` is still bridged
automatically, so scripted test adapters keep working.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence, Set


class MacDataPlane(abc.ABC):
    """The handle-based hot interface a MAC protocol arbitrates over.

    Implementations own the reusable pending-scan scratch arrays; a call to
    :meth:`scan_pending` overwrites rows ``[0, count)`` and the previous
    scan's contents become invalid.  MACs must therefore consume one scan
    before requesting the next (every shipped protocol does — plans are
    built from a single scan).
    """

    #: Parallel scratch arrays of the most recent :meth:`scan_pending`.
    #: Row ``i`` describes one VC's pending traffic: destination switch,
    #: globally unique packet id, flits buffered at the WI, total packet
    #: length, flits still to cross the wireless hop, and whether the front
    #: flit is the packet's head (1/0).
    pend_dst: List[int]
    pend_pid: List[int]
    pend_buffered: List[int]
    pend_length: List[int]
    pend_remaining: List[int]
    pend_head: List[int]

    @abc.abstractmethod
    def scan_pending(self, wi_switch_id: int) -> int:
        """Fill the scratch arrays with one WI's pending traffic; return the count."""

    @abc.abstractmethod
    def acceptable_flits(self, dst_switch: int, packet_id: int, is_head: bool) -> int:
        """How many flits of a packet the destination WI can buffer right now.

        The control packet of the previous transmission towards the same
        destination carries enough information for the transmitting WI to
        know the destination VC occupancy, so MAC protocols plan only bursts
        the receiver can actually accept.
        """

    @abc.abstractmethod
    def record_control_energy(self, energy_pj: float, channel_id: int = -1) -> None:
        """Charge the energy of a MAC control packet / token broadcast.

        ``channel_id`` attributes the overhead to one wireless channel for
        the per-channel energy breakdown; ``-1`` leaves it unattributed
        (legacy callers).
        """


class MacStatistics:
    """Counters every MAC implementation maintains."""

    def __init__(self) -> None:
        self.grants = 0
        self.control_packets = 0
        self.token_passes = 0
        self.flits_transmitted = 0
        self.idle_grant_cycles = 0
        self.forced_releases = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for reports and tests."""
        return {
            "grants": self.grants,
            "control_packets": self.control_packets,
            "token_passes": self.token_passes,
            "flits_transmitted": self.flits_transmitted,
            "idle_grant_cycles": self.idle_grant_cycles,
            "forced_releases": self.forced_releases,
        }


class MacProtocol(abc.ABC):
    """Base class of the channel-access protocols.

    Parameters
    ----------
    channel_id:
        Index of the wireless channel this protocol instance arbitrates.
    wi_switch_ids:
        The WIs sharing the channel, in their fixed sequence order ("the WIs
        are numbered in a sequence", Section III-D).
    adapter:
        View into the simulator (pending traffic, energy accounting): a
        :class:`MacDataPlane` (production, hot) or a legacy
        :class:`repro.testing.legacy.MacAdapter` (tests; bridged
        automatically).
    """

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter,
    ) -> None:
        if not wi_switch_ids:
            raise ValueError("a wireless channel needs at least one WI")
        self.channel_id = channel_id
        self.wi_switch_ids = list(wi_switch_ids)
        self.adapter = adapter
        #: The hot data plane the protocol logic reads.
        if isinstance(adapter, MacDataPlane):
            self.plane: MacDataPlane = adapter
        else:
            from ...testing.legacy import LegacyAdapterBridge

            self.plane = LegacyAdapterBridge(adapter)
        self.stats = MacStatistics()

    # ------------------------------------------------------------------
    # Protocol interface used by the simulator (hot spellings).
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def update(self, cycle: int) -> None:
        """Advance protocol state at the beginning of a cycle."""

    @abc.abstractmethod
    def grants(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Whether the WI may put this flit on the channel this cycle."""

    def notify_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Notification that a flit was transmitted (default: count it)."""
        self.stats.flits_transmitted += 1

    @abc.abstractmethod
    def current_transmitter(self) -> Optional[int]:
        """WI currently holding the channel, if any."""

    def finalize_stats(self) -> None:
        """Settle any statistics still accumulating when the run ends.

        Called once by the wireless fabric's end-of-run ``finalize``.
        Protocols whose counters settle on internal boundaries (the TDMA
        slot rollover) close out the in-progress window here; the default
        is a no-op, keeping every pre-existing protocol bit-identical.
        """

    def is_intended_receiver(self, wi_switch_id: int) -> bool:
        """Whether a WI must listen to the current transmission (hot path).

        Allocation-free membership test the fabric's per-cycle transceiver
        update uses instead of materialising :meth:`intended_receivers`.
        The default says "everyone listens", which models a MAC without
        receiver power gating.
        """
        return True

    def intended_receivers(self) -> Set[int]:
        """Destination WIs of the current transmission (diagnostic view).

        Materialises :meth:`is_intended_receiver` over the channel members;
        kept for tests and reports — the fabric's per-cycle loop uses the
        hot membership test directly.
        """
        return {wi for wi in self.wi_switch_ids if self.is_intended_receiver(wi)}

    # ------------------------------------------------------------------
    # Shared helpers.
    # ------------------------------------------------------------------

    def next_wi_index(self, index: int) -> int:
        """Index of the WI after ``index`` in the fixed sequence."""
        return (index + 1) % len(self.wi_switch_ids)

    def member_index(self, wi_switch_id: int) -> int:
        """Position of a WI in the channel's sequence."""
        try:
            return self.wi_switch_ids.index(wi_switch_id)
        except ValueError:
            raise ValueError(
                f"WI {wi_switch_id} is not a member of channel {self.channel_id}"
            ) from None
