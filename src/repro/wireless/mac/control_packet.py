"""The proposed control-packet MAC with partial-packet transmission.

Section III-D: instead of circulating a token after every transmission, each
WI broadcasts a *control packet* at the beginning of its transmission slot.
The control packet carries up to ``max_tuples`` 3-tuples
``(DestWI, PktID, NumFlits)`` — one per output VC — describing exactly which
flits the WI is about to transmit.  Because the destination can map ``PktID``
onto a VC, the WI may transmit *partial* packets (only the flits it has
buffered right now) without breaking wormhole switching, which removes the
whole-packet buffering requirement of the token MAC.  All other WIs learn
the duration of the transmission from the control packet, so the next WI in
the fixed sequence starts its own control packet exactly when the current
transmission ends — no contention, no token.  Receivers that are not listed
as a destination power-gate themselves for the duration of the burst
("sleepy transceivers" [17]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

from ...energy.technology import WIRELESS_ENERGY_PJ_PER_BIT
from .base import MacAdapter, MacProtocol


@dataclass
class TransmissionPlan:
    """The burst a WI announced in its control packet."""

    wi_switch_id: int
    #: Remaining flits per (destination switch, packet id).
    remaining: Dict[Tuple[int, int], int]
    announced_flits: int
    started_cycle: int
    deadline_cycle: int

    @property
    def destinations(self) -> Set[int]:
        """Destination WIs addressed by this burst."""
        return {dst for (dst, _), count in self.remaining.items() if count > 0}

    @property
    def exhausted(self) -> bool:
        """Whether every announced flit has been transmitted."""
        return all(count <= 0 for count in self.remaining.values())


class ControlPacketMac(MacProtocol):
    """Control-packet based, partial-packet, sleepy-receiver MAC."""

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter: MacAdapter,
        control_packet_cycles: int = 3,
        control_packet_bits: int = 96,
        max_tuples: int = 8,
        cycles_per_flit: int = 1,
        hold_slack_cycles: int = 32,
    ) -> None:
        super().__init__(channel_id, wi_switch_ids, adapter)
        if control_packet_cycles <= 0:
            raise ValueError("control_packet_cycles must be positive")
        if max_tuples <= 0:
            raise ValueError("max_tuples must be positive")
        if cycles_per_flit <= 0:
            raise ValueError("cycles_per_flit must be positive")
        self._control_cycles = control_packet_cycles
        self._control_bits = control_packet_bits
        self._max_tuples = max_tuples
        self._cycles_per_flit = cycles_per_flit
        self._hold_slack = hold_slack_cycles
        self._holder_index = 0
        self._plan: Optional[TransmissionPlan] = None
        #: Cycles of control-packet broadcast still to elapse before data
        #: flits of the current burst may be transmitted.
        self._control_remaining = 0

    # ------------------------------------------------------------------
    # MacProtocol interface.
    # ------------------------------------------------------------------

    def current_transmitter(self) -> Optional[int]:
        """WI currently holding the channel (control or data phase)."""
        if self._plan is None:
            return None
        return self._plan.wi_switch_id

    def intended_receivers(self) -> Set[int]:
        """Destinations of the announced burst; everyone else may sleep."""
        if self._plan is None:
            return set()
        return self._plan.destinations

    @property
    def in_control_phase(self) -> bool:
        """Whether the channel is currently carrying a control packet."""
        return self._plan is not None and self._control_remaining > 0

    def update(self, cycle: int) -> None:
        """Advance the burst schedule at the beginning of a cycle."""
        if self._plan is not None:
            if self._control_remaining > 0:
                self._control_remaining -= 1
                return
            expired = cycle >= self._plan.deadline_cycle
            if self._plan.exhausted or expired:
                if expired and not self._plan.exhausted:
                    self.stats.forced_releases += 1
                self._plan = None
            else:
                return
        # The channel is free: let WIs announce in sequence.  At most one
        # full rotation is examined per cycle so an all-idle channel costs
        # O(#WIs) work but never loops forever.
        for _ in range(len(self.wi_switch_ids)):
            wi = self.wi_switch_ids[self._holder_index]
            plan = self._build_plan(wi, cycle)
            self._holder_index = self.next_wi_index(self._holder_index)
            if plan is not None:
                self._plan = plan
                self._control_remaining = self._control_cycles
                self.stats.control_packets += 1
                self.stats.grants += 1
                self.adapter.record_control_energy(
                    self._control_bits * WIRELESS_ENERGY_PJ_PER_BIT
                )
                return
        self.stats.idle_grant_cycles += 1

    def may_send(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Only the announcing WI, only announced flits, only after the control phase."""
        plan = self._plan
        if plan is None or plan.wi_switch_id != wi_switch_id:
            return False
        if self._control_remaining > 0:
            # Data flits may not overlap the control packet broadcast.
            return False
        return plan.remaining.get((dst_switch, packet_id), 0) > 0

    def on_flit_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Consume one announced flit."""
        super().on_flit_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
        plan = self._plan
        if plan is None or plan.wi_switch_id != wi_switch_id:
            return
        key = (dst_switch, packet_id)
        if key in plan.remaining:
            plan.remaining[key] -= 1

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _build_plan(self, wi_switch_id: int, cycle: int) -> Optional[TransmissionPlan]:
        pending = self.adapter.pending(wi_switch_id)
        if not pending:
            return None
        remaining: Dict[Tuple[int, int], int] = {}
        announced = 0
        for entry in pending:
            if len(remaining) >= self._max_tuples:
                break
            if entry.buffered_flits <= 0:
                continue
            acceptable = self.adapter.acceptable_flits(
                entry.dst_switch, entry.packet_id, entry.front_is_head
            )
            announced_flits = max(entry.buffered_flits, entry.remaining_flits)
            flits = min(announced_flits, acceptable)
            if flits <= 0:
                continue
            key = (entry.dst_switch, entry.packet_id)
            remaining[key] = remaining.get(key, 0) + flits
            announced += flits
        if not remaining:
            return None
        duration = self._control_cycles + announced * self._cycles_per_flit
        return TransmissionPlan(
            wi_switch_id=wi_switch_id,
            remaining=remaining,
            announced_flits=announced,
            started_cycle=cycle,
            deadline_cycle=cycle + duration + self._hold_slack,
        )
