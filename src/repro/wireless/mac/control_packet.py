"""The proposed control-packet MAC with partial-packet transmission.

Section III-D: instead of circulating a token after every transmission, each
WI broadcasts a *control packet* at the beginning of its transmission slot.
The control packet carries up to ``max_tuples`` 3-tuples
``(DestWI, PktID, NumFlits)`` — one per output VC — describing exactly which
flits the WI is about to transmit.  Because the destination can map ``PktID``
onto a VC, the WI may transmit *partial* packets (only the flits it has
buffered right now) without breaking wormhole switching, which removes the
whole-packet buffering requirement of the token MAC.  All other WIs learn
the duration of the transmission from the control packet, so the next WI in
the fixed sequence starts its own control packet exactly when the current
transmission ends — no contention, no token.  Receivers that are not listed
as a destination power-gate themselves for the duration of the burst
("sleepy transceivers" [17]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from ...energy.technology import WIRELESS_ENERGY_PJ_PER_BIT
from .base import MacProtocol


@dataclass
class TransmissionPlan:
    """The burst a WI announced in its control packet."""

    wi_switch_id: int
    #: Remaining flits per (destination switch, packet id).
    remaining: Dict[Tuple[int, int], int]
    announced_flits: int
    started_cycle: int
    deadline_cycle: int
    #: Destinations with announced flits outstanding.  Maintained
    #: incrementally as flits are consumed so the per-cycle sleepy-receiver
    #: check is a set lookup, never a rebuild.
    live_destinations: Set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.live_destinations = {
            dst for (dst, _), count in self.remaining.items() if count > 0
        }

    @property
    def destinations(self) -> Set[int]:
        """Destination WIs still addressed by this burst."""
        return {dst for (dst, _), count in self.remaining.items() if count > 0}

    @property
    def exhausted(self) -> bool:
        """Whether every announced flit has been transmitted."""
        return all(count <= 0 for count in self.remaining.values())

    def consume(self, dst_switch: int, packet_id: int) -> None:
        """Account one transmitted flit against the announcement."""
        key = (dst_switch, packet_id)
        count = self.remaining.get(key)
        if count is None:
            return
        self.remaining[key] = count - 1
        if count - 1 <= 0 and not any(
            c > 0 for (dst, _), c in self.remaining.items() if dst == dst_switch
        ):
            self.live_destinations.discard(dst_switch)


class ControlPacketMac(MacProtocol):
    """Control-packet based, partial-packet, sleepy-receiver MAC."""

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter,
        control_packet_cycles: int = 3,
        control_packet_bits: int = 96,
        max_tuples: int = 8,
        cycles_per_flit: int = 1,
        hold_slack_cycles: int = 32,
    ) -> None:
        super().__init__(channel_id, wi_switch_ids, adapter)
        if control_packet_cycles <= 0:
            raise ValueError("control_packet_cycles must be positive")
        if max_tuples <= 0:
            raise ValueError("max_tuples must be positive")
        if cycles_per_flit <= 0:
            raise ValueError("cycles_per_flit must be positive")
        self._control_cycles = control_packet_cycles
        self._control_bits = control_packet_bits
        self._max_tuples = max_tuples
        self._cycles_per_flit = cycles_per_flit
        self._hold_slack = hold_slack_cycles
        self._holder_index = 0
        self._plan: Optional[TransmissionPlan] = None
        #: Cycles of control-packet broadcast still to elapse before data
        #: flits of the current burst may be transmitted.
        self._control_remaining = 0

    # ------------------------------------------------------------------
    # MacProtocol interface.
    # ------------------------------------------------------------------

    def current_transmitter(self) -> Optional[int]:
        """WI currently holding the channel (control or data phase)."""
        if self._plan is None:
            return None
        return self._plan.wi_switch_id

    def is_intended_receiver(self, wi_switch_id: int) -> bool:
        """Destinations of the announced burst listen; everyone else may sleep."""
        plan = self._plan
        return plan is not None and wi_switch_id in plan.live_destinations

    @property
    def in_control_phase(self) -> bool:
        """Whether the channel is currently carrying a control packet."""
        return self._plan is not None and self._control_remaining > 0

    def update(self, cycle: int) -> None:
        """Advance the burst schedule at the beginning of a cycle."""
        if self._plan is not None:
            if self._control_remaining > 0:
                self._control_remaining -= 1
                return
            expired = cycle >= self._plan.deadline_cycle
            if self._plan.exhausted or expired:
                if expired and not self._plan.exhausted:
                    self.stats.forced_releases += 1
                self._plan = None
            else:
                return
        # The channel is free: let WIs announce in sequence.  At most one
        # full rotation is examined per cycle so an all-idle channel costs
        # O(#WIs) work but never loops forever.
        for _ in range(len(self.wi_switch_ids)):
            wi = self.wi_switch_ids[self._holder_index]
            plan = self._build_plan(wi, cycle)
            self._holder_index = self.next_wi_index(self._holder_index)
            if plan is not None:
                self._plan = plan
                self._control_remaining = self._control_cycles
                self.stats.control_packets += 1
                self.stats.grants += 1
                self.plane.record_control_energy(
                    self._control_bits * WIRELESS_ENERGY_PJ_PER_BIT, self.channel_id
                )
                return
        self.stats.idle_grant_cycles += 1

    def grants(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Only the announcing WI, only announced flits, only after the control phase."""
        plan = self._plan
        if plan is None or plan.wi_switch_id != wi_switch_id:
            return False
        if self._control_remaining > 0:
            # Data flits may not overlap the control packet broadcast.
            return False
        return plan.remaining.get((dst_switch, packet_id), 0) > 0

    def notify_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        """Consume one announced flit."""
        super().notify_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
        plan = self._plan
        if plan is None or plan.wi_switch_id != wi_switch_id:
            return
        plan.consume(dst_switch, packet_id)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _build_plan(self, wi_switch_id: int, cycle: int) -> Optional[TransmissionPlan]:
        """Announce one WI's burst from a single hot scan of its pending VCs.

        Entry order equals the historical object-path order (ascending VC
        ordinal), so tuple selection under ``max_tuples`` is unchanged.
        """
        plane = self.plane
        count = plane.scan_pending(wi_switch_id)
        if not count:
            return None
        pend_dst = plane.pend_dst
        pend_pid = plane.pend_pid
        pend_buffered = plane.pend_buffered
        pend_remaining = plane.pend_remaining
        pend_head = plane.pend_head
        remaining: Dict[Tuple[int, int], int] = {}
        announced = 0
        for row in range(count):
            if len(remaining) >= self._max_tuples:
                break
            buffered = pend_buffered[row]
            if buffered <= 0:
                continue
            acceptable = plane.acceptable_flits(
                pend_dst[row], pend_pid[row], bool(pend_head[row])
            )
            announced_flits = max(buffered, pend_remaining[row])
            flits = min(announced_flits, acceptable)
            if flits <= 0:
                continue
            key = (pend_dst[row], pend_pid[row])
            remaining[key] = remaining.get(key, 0) + flits
            announced += flits
        if not remaining:
            return None
        duration = self._control_cycles + announced * self._cycles_per_flit
        return TransmissionPlan(
            wi_switch_id=wi_switch_id,
            remaining=remaining,
            announced_flits=announced,
            started_cycle=cycle,
            deadline_cycle=cycle + duration + self._hold_slack,
        )
