"""FDMA-style multi-channel MAC.

Dedicates an equal share of the channel's capacity to every WI, the way a
frequency-division front end would split the 16 GHz antenna bandwidth into
per-WI sub-bands: each WI effectively owns a private ``1/n``-rate link and
never waits for arbitration.  The cycle-accurate model keeps the
shared-medium invariant (at most one flit in the air per channel per cycle)
by *interleaving the sub-bands at cycle granularity* — WI ``i`` owns every
cycle ``c`` with ``c % n == i`` — which yields the same per-WI sustained
rate and the same aggregate channel capacity as true frequency division,
with the contention-free, arbitration-free latency profile that
distinguishes FDMA from the token and slotted protocols.

Partial packets are allowed (receivers map the packet id onto the owning
VC, as with the control-packet MAC) and receivers stay awake: a sub-band
carries no announcement to power-gate on.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from .base import MacProtocol


class FdmaMac(MacProtocol):
    """Per-WI dedicated sub-bands, modelled as cycle-granular interleaving."""

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter,
    ) -> None:
        super().__init__(channel_id, wi_switch_ids, adapter)
        self._owner_index = 0
        #: Per-WI packet id of the flit most recently sent on that WI's
        #: sub-band; a new packet id on a sub-band = one grant.  Per WI
        #: because the sub-bands interleave at cycle granularity, so bursts
        #: of different WIs are concurrently in flight.
        self._last_packet: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # MacProtocol interface.
    # ------------------------------------------------------------------

    def current_transmitter(self) -> Optional[int]:
        """The WI whose sub-band slice is live this cycle."""
        return self.wi_switch_ids[self._owner_index]

    def update(self, cycle: int) -> None:
        """Rotate the live sub-band slice."""
        self._owner_index = cycle % len(self.wi_switch_ids)

    def grants(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """A WI transmits exactly on its own sub-band slice."""
        return wi_switch_id == self.wi_switch_ids[self._owner_index]

    def notify_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        super().notify_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
        if self._last_packet.get(wi_switch_id) != packet_id:
            self.stats.grants += 1
            self._last_packet[wi_switch_id] = packet_id
        if is_tail:
            self._last_packet.pop(wi_switch_id, None)
