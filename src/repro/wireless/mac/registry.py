"""MAC protocol registry: construct channel-arbitration protocols by name.

Mirrors the traffic and architecture registries (PR 2): a MAC protocol
plugs in with one decorator —

::

    @register_mac("my-mac", description="...", whole_packet_buffering=False)
    def _build_my_mac(context: MacBuildContext) -> MacProtocol:
        return MyMac(context.channel_id, context.wi_switch_ids, context.plane)

— and is then selectable everywhere a MAC name appears: the
``WirelessConfig.mac`` field, the experiment CLI's ``--mac`` flag, and the
``fig8_mac_study`` sweep.  ``whole_packet_buffering`` declares whether the
protocol only transmits whole packets (the token MAC's rule), which drives
the WI buffer sizing in :meth:`repro.noc.config.NetworkConfig.wi_buffer_depth`.

The factory receives one :class:`MacBuildContext` per wireless channel, so
multi-channel systems get independent protocol instances with their own
state and statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, TYPE_CHECKING

from .base import MacDataPlane, MacProtocol
from .control_packet import ControlPacketMac
from .fdma import FdmaMac
from .tdma import TdmaMac
from .token import TokenMac

if TYPE_CHECKING:  # pragma: no cover
    from ...noc.config import WirelessConfig


class UnknownMacError(KeyError):
    """Raised when a MAC protocol name is not registered."""


@dataclass(frozen=True)
class MacBuildContext:
    """Everything a MAC factory needs to build one channel's instance."""

    #: Index of the wireless channel the instance will arbitrate.
    channel_id: int
    #: The WIs sharing the channel, in fixed sequence order.
    wi_switch_ids: Sequence[int]
    #: The hot data plane the instance reads pending traffic from.
    plane: MacDataPlane
    #: The run's wireless configuration (protocol knobs).
    wireless: "WirelessConfig"
    #: Nominal packet length [flits] (for hold/slot sizing).
    packet_length_flits: int


#: Factory signature: one fully-wired protocol instance per call.
MacFactory = Callable[[MacBuildContext], MacProtocol]


@dataclass(frozen=True)
class MacSpec:
    """A registered MAC protocol: factory plus scheduling metadata."""

    name: str
    factory: MacFactory
    description: str
    #: Whether the protocol only transmits whole packets, requiring the WI
    #: input buffers to hold an entire packet (Section III-D's buffer
    #: argument against the token MAC).
    whole_packet_buffering: bool = False
    #: Whether the protocol announces per-burst destinations, enabling
    #: receiver power gating ("sleepy transceivers" [17]).  Drives the
    #: transceiver ``power_gating`` wiring in the wireless fabric.
    supports_sleepy_receivers: bool = False


_MACS: Dict[str, MacSpec] = {}


def register_mac(
    name: str,
    description: str = "",
    whole_packet_buffering: bool = False,
    supports_sleepy_receivers: bool = False,
) -> Callable[[MacFactory], MacFactory]:
    """Decorator that registers a MAC factory under a name."""

    def decorator(factory: MacFactory) -> MacFactory:
        if name in _MACS:
            raise ValueError(f"MAC protocol {name!r} is already registered")
        _MACS[name] = MacSpec(
            name=name,
            factory=factory,
            description=description,
            whole_packet_buffering=whole_packet_buffering,
            supports_sleepy_receivers=supports_sleepy_receivers,
        )
        return factory

    return decorator


def mac_spec(name: str) -> MacSpec:
    """Look up the spec registered under ``name``."""
    try:
        return _MACS[name]
    except KeyError:
        known = ", ".join(sorted(_MACS))
        raise UnknownMacError(
            f"unknown MAC protocol {name!r}; known protocols: {known}"
        ) from None


def create_mac(name: str, context: MacBuildContext) -> MacProtocol:
    """Build one channel's protocol instance by registered name."""
    return mac_spec(name).factory(context)


def available_macs() -> List[str]:
    """All registered MAC protocol names, sorted."""
    return sorted(_MACS)


# ----------------------------------------------------------------------
# Built-in protocols.
# ----------------------------------------------------------------------


@register_mac(
    "token",
    description="baseline token passing, whole-packet transmissions [7]",
    whole_packet_buffering=True,
)
def _build_token(context: MacBuildContext) -> MacProtocol:
    wireless = context.wireless
    return TokenMac(
        context.channel_id,
        list(context.wi_switch_ids),
        adapter=context.plane,
        token_pass_latency_cycles=wireless.token_pass_latency_cycles,
        max_hold_cycles=4 * context.packet_length_flits * wireless.cycles_per_flit + 64,
    )


@register_mac(
    "control_packet",
    description="the paper's control-packet MAC with partial packets (Section III-D)",
    supports_sleepy_receivers=True,
)
def _build_control_packet(context: MacBuildContext) -> MacProtocol:
    wireless = context.wireless
    return ControlPacketMac(
        context.channel_id,
        list(context.wi_switch_ids),
        adapter=context.plane,
        control_packet_cycles=wireless.control_packet_cycles,
        control_packet_bits=wireless.control_packet_bits,
        max_tuples=wireless.max_control_tuples,
        cycles_per_flit=wireless.cycles_per_flit,
    )


@register_mac(
    "tdma",
    description="static slotted schedule with a per-slot guard time",
)
def _build_tdma(context: MacBuildContext) -> MacProtocol:
    wireless = context.wireless
    slot_cycles = wireless.tdma_slot_cycles
    if slot_cycles is None:
        # One packet's serialisation time per slot, so a saturated owner can
        # stream a whole packet per rotation without slot fragmentation.
        slot_cycles = context.packet_length_flits * wireless.cycles_per_flit
    return TdmaMac(
        context.channel_id,
        list(context.wi_switch_ids),
        adapter=context.plane,
        slot_cycles=slot_cycles,
        guard_cycles=wireless.tdma_guard_cycles,
    )


@register_mac(
    "fdma",
    description="per-WI dedicated sub-bands (cycle-interleaved frequency division)",
)
def _build_fdma(context: MacBuildContext) -> MacProtocol:
    return FdmaMac(
        context.channel_id,
        list(context.wi_switch_ids),
        adapter=context.plane,
    )
