"""Static TDMA (slotted) MAC.

The simplest contention-free arbitration: time is divided into fixed-length
slots assigned to the channel's WIs in their fixed sequence order, and only
the slot owner may transmit.  A configurable guard time at the start of
every slot models the synchronisation margin between transmitters.  No
token circulates and no control packet is broadcast, so the protocol has
zero arbitration energy and zero per-transmission handshake latency — at
the price of wasting every slot whose owner has nothing to send (the
classic TDMA utilisation loss the token and control-packet protocols exist
to avoid).

Like the control-packet MAC, partial packets are allowed: receivers map the
packet id onto the owning VC, so a burst may pause at a slot boundary and
resume in the owner's next slot without breaking wormhole switching.
Receivers stay awake in every slot (static TDMA radios have no per-burst
destination announcement to gate on), so there is no sleepy-receiver
saving.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .base import MacProtocol


class TdmaMac(MacProtocol):
    """Fixed-schedule slotted arbitration: only the slot owner transmits."""

    def __init__(
        self,
        channel_id: int,
        wi_switch_ids: Sequence[int],
        adapter,
        slot_cycles: int = 64,
        guard_cycles: int = 1,
    ) -> None:
        super().__init__(channel_id, wi_switch_ids, adapter)
        if slot_cycles <= 0:
            raise ValueError("slot_cycles must be positive")
        if not 0 <= guard_cycles < slot_cycles:
            raise ValueError("guard_cycles must be in [0, slot_cycles)")
        self.slot_cycles = slot_cycles
        self.guard_cycles = guard_cycles
        self._owner_index = 0
        self._slot_index = 0
        self._in_guard = guard_cycles > 0
        #: Flits transmitted during the current slot (slot-utilisation stats).
        self._slot_flits = 0
        #: Cycle most recently seen by :meth:`update` (sizes the final,
        #: possibly partial, slot when the run ends mid-slot).
        self._last_cycle = -1

    # ------------------------------------------------------------------
    # MacProtocol interface.
    # ------------------------------------------------------------------

    def current_transmitter(self) -> Optional[int]:
        """The slot owner (even while idle — the slot is unconditionally its)."""
        return self.wi_switch_ids[self._owner_index]

    def update(self, cycle: int) -> None:
        """Advance the fixed slot schedule."""
        slot = cycle // self.slot_cycles
        if slot != self._slot_index:
            # Slot rollover: settle the previous slot's utilisation stats.
            if self._slot_flits > 0:
                self.stats.grants += 1
            else:
                self.stats.idle_grant_cycles += self.slot_cycles
            self._slot_flits = 0
            self._slot_index = slot
            self._owner_index = slot % len(self.wi_switch_ids)
        self._in_guard = (cycle % self.slot_cycles) < self.guard_cycles
        self._last_cycle = cycle

    def finalize_stats(self) -> None:
        """Settle the final (possibly partial) slot when the run ends."""
        if self._last_cycle < 0:
            return
        if self._slot_flits > 0:
            self.stats.grants += 1
        else:
            self.stats.idle_grant_cycles += (self._last_cycle % self.slot_cycles) + 1
        self._slot_flits = 0
        self._last_cycle = -1

    def grants(
        self, wi_switch_id: int, packet_id: int, dst_switch: int, is_head: bool
    ) -> bool:
        """Only the slot owner, and never inside the guard time."""
        if self._in_guard:
            return False
        return wi_switch_id == self.wi_switch_ids[self._owner_index]

    def notify_sent(
        self,
        wi_switch_id: int,
        packet_id: int,
        dst_switch: int,
        is_tail: bool,
        cycle: int,
    ) -> None:
        super().notify_sent(wi_switch_id, packet_id, dst_switch, is_tail, cycle)
        self._slot_flits += 1
